//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand 0.8` surface the workspace uses —
//! [`StdRng`] (here xoshiro256++ seeded via SplitMix64), the [`RngCore`] /
//! [`SeedableRng`] traits, and the [`Rng`] extension with `gen`, `gen_bool`
//! and `gen_range`. The generator is **not** bit-compatible with upstream
//! `rand`'s `StdRng`; every consumer in this workspace only relies on
//! determinism for a fixed seed, which this crate guarantees (the algorithm
//! is fixed and documented, with golden-value tests below).
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! assert!(a.gen_range(0u64..10) < 10);
//! let p: f64 = a.gen();
//! assert!((0.0..1.0).contains(&p));
//! ```

use std::fmt;
use std::ops::Range;

/// Error type for fallible generator operations (infallible here; present
/// for API compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator error")
    }
}

impl std::error::Error for Error {}

/// The core generator interface: raw uniform words and byte fills.
pub trait RngCore {
    /// Returns a uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns a uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`] (never fails here).
    ///
    /// # Errors
    ///
    /// Infallible in this implementation; the `Result` mirrors upstream
    /// `rand`'s signature.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// (so nearby seeds yield unrelated states).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the standard seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from a generator.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (exclusive upper bound).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[0, bound)` via Lemire's widening-multiply method with
/// rejection, so the distribution is exactly uniform.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // Compare against 53-bit fixed point so p == 1.0 is always true and
        // p == 0.0 always false.
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// Draws a value uniformly from `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Small, fast, passes BigCrush, and trivially seedable — everything a
    /// deterministic simulator needs. Not cryptographic, and not
    /// bit-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; reseed via
            // SplitMix64 in that (astronomically unlikely) case.
            if s == [0; 4] {
                let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in &mut s {
                    *word = splitmix64(&mut state);
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(2014);
        let mut b = StdRng::seed_from_u64(2014);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Golden values: lock the algorithm so a refactor cannot silently
    /// change every workload trace in the workspace.
    #[test]
    fn golden_sequence() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn gen_bool_rejects_out_of_range() {
        StdRng::seed_from_u64(0).gen_bool(1.5);
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let x = rng.gen_range(5u64..6);
        assert_eq!(x, 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        StdRng::seed_from_u64(0).gen_range(5u64..5);
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut buf2 = [0u8; 13];
        StdRng::seed_from_u64(9).fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_from_u64_differs_for_nearby_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! Real `serde_derive` leans on `syn`/`quote`; neither is available in this
//! offline workspace, so this macro parses the item's `TokenStream` by hand.
//! It supports exactly the shapes the workspace uses:
//!
//! * structs with named fields;
//! * newtype (single-field tuple) structs, serialized transparently;
//! * enums whose variants are unit, newtype, or struct-like (externally
//!   tagged, like real serde's default representation).
//!
//! The only field attribute implemented is `#[serde(default)]` (an absent
//! field deserializes to `Default::default()`). Generics, other
//! `#[serde(...)]` attributes, and tuple structs with more than one field
//! are rejected with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item the derive is attached to.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    NewtypeStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// A named field and whether it carries `#[serde(default)]` (absent fields
/// fall back to `Default::default()` instead of erroring).
struct Field {
    name: String,
    default: bool,
}

enum Variant {
    Unit(String),
    Newtype(String),
    Struct { name: String, fields: Vec<Field> },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "derive(Serialize/Deserialize): tuple struct `{name}` has {arity} fields; \
                         only single-field newtype structs are supported"
                    );
                }
                Item::NewtypeStruct { name }
            }
            other => panic!(
                "derive(Serialize/Deserialize): unexpected token after `struct {name}`: {other:?}"
            ),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!(
                "derive(Serialize/Deserialize): unexpected token after `enum {name}`: {other:?}"
            ),
        },
        other => {
            panic!("derive(Serialize/Deserialize): expected `struct` or `enum`, found `{other}`")
        }
    }
}

/// Skips any number of outer attributes (`#[...]`) and a visibility
/// qualifier (`pub`, `pub(crate)`, ...), advancing `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                *i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("derive(Serialize/Deserialize): expected identifier, found {other:?}"),
    }
}

/// Parses `field: Type, ...` field lists, returning the field names and
/// their `#[serde(default)]` markers. Types are skipped wholesale; commas
/// inside angle brackets (`Vec<(A, B)>`) do not split fields because
/// `<`/`>` depth is tracked.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let default = take_field_attrs(&tokens, &mut i);
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive(Serialize/Deserialize): expected `:` after field `{field}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name: field,
            default,
        });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Consumes the attributes preceding a field, returning true if one of
/// them is `#[serde(default)]`. Other `#[serde(...)]` contents are
/// rejected (this shim would silently mis-handle them); non-serde
/// attributes (doc comments etc.) are skipped.
fn take_field_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let Some(TokenTree::Group(attr)) = tokens.get(*i + 1) else {
            return default;
        };
        let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            let Some(TokenTree::Group(args)) = inner.get(1) else {
                panic!("derive(Serialize/Deserialize): malformed #[serde(...)] attribute");
            };
            let args = args.stream().to_string();
            if args.trim() == "default" {
                default = true;
            } else {
                panic!(
                    "derive(Serialize/Deserialize): unsupported serde attribute \
                     `#[serde({args})]`; only `#[serde(default)]` is implemented"
                );
            }
        }
        *i += 2; // '#' and the [...] group
    }
    default
}

/// Advances `i` past one type, stopping at a top-level `,` or end of input.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut arity = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        arity += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
            // Trailing comma.
            if i >= tokens.len() {
                break;
            }
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                if arity != 1 {
                    panic!(
                        "derive(Serialize/Deserialize): variant `{name}` has {arity} tuple fields; \
                         only newtype variants are supported"
                    );
                }
                variants.push(Variant::Newtype(name));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct {
                    name,
                    fields: parse_named_fields(g.stream()),
                });
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "__fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n"
                    ),
                    Variant::Newtype(v) => format!(
                        "{name}::{v}(__inner) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Serialize::to_value(__inner))]),\n"
                    ),
                    Variant::Struct { name: v, fields } => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {bindings} }} => ::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{v}\"), \
                                  ::serde::Value::Map(::std::vec![{pushes}]))]),\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Renders one struct-field initializer for a derived `Deserialize` impl,
/// routing `#[serde(default)]` fields through `get_field_or_default`.
fn field_init(source: &'static str) -> impl Fn(&Field) -> String {
    move |f: &Field| {
        let getter = if f.default {
            "get_field_or_default"
        } else {
            "get_field"
        };
        let name = &f.name;
        format!("{name}: ::serde::{getter}({source}, \"{name}\")?,\n")
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields.iter().map(field_init("__value")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         match __value {{\n\
                             ::serde::Value::Map(_) => ::core::result::Result::Ok({name} {{\n\
                                 {inits}\
                             }}),\n\
                             __other => ::core::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"expected a map for struct {name}, got {{}}\", \
                                                __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__value: &::serde::Value) -> \
                     ::core::result::Result<Self, ::serde::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"
                    )),
                    _ => None,
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Newtype(v) => Some(format!(
                        "\"{v}\" => ::core::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__inner)\
                                 .map_err(|e| e.at(\"{v}\"))?)),\n"
                    )),
                    Variant::Struct { name: v, fields } => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                let getter = if f.default {
                                    "get_field_or_default"
                                } else {
                                    "get_field"
                                };
                                let f = &f.name;
                                format!(
                                    "{f}: ::serde::{getter}(__inner, \"{f}\")\
                                         .map_err(|e| e.at(\"{v}\"))?,\n"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::core::result::Result::Ok({name}::{v} {{ {inits} }}),\n"
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::core::result::Result::Err(::serde::Error::new(\
                                     ::std::format!(\"unknown variant `{{}}` for enum {name}\", __other))),\n\
                             }},\n\
                             ::serde::Value::Map(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__pairs[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => ::core::result::Result::Err(::serde::Error::new(\
                                         ::std::format!(\"unknown variant `{{}}` for enum {name}\", __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::core::result::Result::Err(::serde::Error::new(\
                                 ::std::format!(\"expected a variant of enum {name}, got {{}}\", \
                                                __other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

//! JSON for the in-tree serde stand-in.
//!
//! Renders and parses the full JSON grammar over [`serde::Value`]. Floats
//! are printed with Rust's shortest round-trip formatting, so
//! `from_str(&to_string(&v))` reproduces `v` bit-for-bit for every value the
//! workspace serializes.
//!
//! # Examples
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Sample { id: u64, label: String }
//!
//! let s = Sample { id: 7, label: "pf".to_string() };
//! let json = serde_json::to_string(&s);
//! let back: Sample = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, s);
//! ```

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes a value to indented JSON (two spaces per level).
pub fn to_string_pretty<T: Serialize>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    T::from_value(&value)
}

/// Parses JSON text into an untyped [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let text = format!("{x:?}");
        out.push_str(&text);
    } else {
        // JSON has no Inf/NaN; null matches serde_json's lossy default.
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON document",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.map(),
            Some(b'[') => self.seq(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') | Some(b'f') => self.boolean(),
            Some(b'n') => {
                self.keyword("null")?;
                Ok(Value::Null)
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {} of JSON document",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{word}` at byte {} of JSON document",
                self.pos
            )))
        }
    }

    fn boolean(&mut self) -> Result<Value, Error> {
        if self.peek() == Some(b't') {
            self.keyword("true")?;
            Ok(Value::Bool(true))
        } else {
            self.keyword("false")?;
            Ok(Value::Bool(false))
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated JSON string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape {:?} in JSON string",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in JSON string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value_str(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":true}],"c":"x\ny"}"#;
        let v = parse_value_str(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value_str(r#"{"a":[1,2],"b":{"c":1.25}}"#).unwrap();
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789, f64::MAX] {
            let mut out = String::new();
            write_f64(&mut out, x);
            let Value::F64(back) = parse_value_str(&out).unwrap() else {
                panic!("expected float for {out}");
            };
            assert_eq!(back, x, "{out}");
        }
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("12 34").is_err());
        assert!(parse_value_str("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value_str(r#""Aé""#).unwrap();
        assert_eq!(v, Value::Str("Aé".to_string()));
    }
}

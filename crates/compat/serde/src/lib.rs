//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `serde` dependency is replaced by this small in-tree crate with a
//! compatible *surface*: `serde::Serialize` / `serde::Deserialize` traits and
//! `#[derive(Serialize, Deserialize)]` macros (provided by the sibling
//! `serde_derive` proc-macro crate).
//!
//! The design is a **value model** rather than the real serde's
//! visitor/streaming model: serialization converts a Rust value into a
//! self-describing [`Value`] tree, and the format crates (`serde_json`,
//! `toml`) render or parse that tree. This is a deliberate simplification —
//! the simulator (de)serializes small configuration documents (scenarios,
//! reports), never bulk data, so the intermediate tree costs nothing
//! measurable and keeps the whole stack ~1k lines and dependency-free.
//!
//! Supported shapes (everything the workspace derives):
//!
//! * structs with named fields → [`Value::Map`];
//! * newtype structs (`struct Nanos(u64)`) → the inner value, transparently;
//! * enums with unit variants → [`Value::Str`] of the variant name;
//! * enums with newtype or struct variants → externally tagged, as in real
//!   serde: `{"Variant": <inner>}`.
//!
//! # Examples
//!
//! ```
//! use serde::{Deserialize, Serialize, Value};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Point { x: u64, y: u64 }
//!
//! let v = Point { x: 1, y: 2 }.to_value();
//! assert!(matches!(v, Value::Map(_)));
//! assert_eq!(Point::from_value(&v).unwrap(), Point { x: 1, y: 2 });
//! ```

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing tree of (de)serialized data, the interchange point
/// between typed Rust values and the text formats.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null (`Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive integers parse as [`Value::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with insertion-ordered keys (field order is preserved so the
    /// text formats render documents in declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name of the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// A (de)serialization error: a human-readable message, optionally prefixed
/// with the path of the field that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Creates a "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        Error::new(format!("missing field `{name}`"))
    }

    /// Returns a copy of this error with `context` (a field or variant name)
    /// prepended to the message.
    pub fn at(self, context: &str) -> Self {
        Error::new(format!("{context}: {}", self.msg))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between the tree
    /// and the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error::new(format!("expected {expected}, got {}", got.kind()))
}

/// Extracts and deserializes field `name` from a [`Value::Map`].
///
/// Used by derived `Deserialize` impls. A missing field is an error unless
/// the target type accepts [`Value::Null`] (i.e. `Option<T>`).
///
/// # Errors
///
/// Returns an [`Error`] if the field is absent (and required) or fails to
/// deserialize.
pub fn get_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|e| e.at(name)),
        None => T::from_value(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

/// Extracts and deserializes field `name` from a [`Value::Map`], falling
/// back to `T::default()` when the field is absent.
///
/// Used by derived `Deserialize` impls for fields marked
/// `#[serde(default)]`. A *present* field that fails to deserialize is
/// still an error — only absence triggers the default.
///
/// # Errors
///
/// Returns an [`Error`] if the field is present but malformed.
pub fn get_field_or_default<T: Deserialize + Default>(
    value: &Value,
    name: &str,
) -> Result<T, Error> {
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|e| e.at(name)),
        None => Ok(T::default()),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(type_error("an unsigned integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for i64")))?,
                    Value::I64(n) => *n,
                    other => return Err(type_error("an integer", other)),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::new(format!("{raw} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(type_error("a number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("a bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("a string", other)),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

/// `&'static str` deserialization leaks the parsed string. The workspace
/// only hits this path for benchmark-profile names in tests; configuration
/// documents are parsed a handful of times per process, so the leak is
/// bounded and harmless.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(type_error("a string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items
                .iter()
                .enumerate()
                .map(|(i, v)| T::from_value(v).map_err(|e| e.at(&format!("[{i}]"))))
                .collect(),
            other => Err(type_error("a sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            v => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(u16::from_value(&Value::U64(9)).unwrap(), 9);
        assert_eq!(i64::from_value(&Value::I64(-3)).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let xs = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&xs.to_value()).unwrap(), xs);
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), none);
    }

    #[test]
    fn get_field_distinguishes_missing_from_optional() {
        let map = Value::Map(vec![("x".into(), Value::U64(1))]);
        assert_eq!(get_field::<u64>(&map, "x").unwrap(), 1);
        assert!(get_field::<u64>(&map, "y").is_err());
        assert_eq!(get_field::<Option<u64>>(&map, "y").unwrap(), None);
    }

    #[test]
    fn errors_carry_context() {
        let map = Value::Map(vec![("x".into(), Value::Str("no".into()))]);
        let err = get_field::<u64>(&map, "x").unwrap_err();
        assert!(err.to_string().contains("x:"), "{err}");
    }

    #[test]
    fn static_str_deserializes_by_leaking() {
        let v = Value::Str("barnes".into());
        let s: &'static str = <&'static str>::from_value(&v).unwrap();
        assert_eq!(s, "barnes");
    }
}

//! TOML for the in-tree serde stand-in.
//!
//! Implements the TOML subset the workspace's configuration documents need,
//! over [`serde::Value`]:
//!
//! * tables and dotted `[section.subsection]` headers;
//! * basic (`"..."`) and literal (`'...'`) strings;
//! * integers (with `_` separators), floats, `inf`/`nan`, booleans;
//! * inline arrays (single- or multi-line) and inline tables `{ k = v }`;
//! * `#` comments.
//!
//! Not supported (not produced by the writer, rejected by the parser):
//! dates, array-of-tables headers (`[[x]]`), and multi-line strings.
//!
//! # Examples
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Pf { coverage_kb: u64, ways: u32 }
//! #[derive(Debug, PartialEq, Serialize, Deserialize)]
//! struct Cfg { name: String, pf: Pf }
//!
//! let cfg = Cfg { name: "table1".into(), pf: Pf { coverage_kb: 512, ways: 8 } };
//! let text = toml::to_string(&cfg).unwrap();
//! assert!(text.contains("[pf]"));
//! let back: Cfg = toml::from_str(&text).unwrap();
//! assert_eq!(back, cfg);
//! ```

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to a TOML document.
///
/// # Errors
///
/// Returns an [`Error`] if the value's root is not a map (TOML documents are
/// tables) or if it contains `Inf`/`NaN`-free unsupported shapes.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    match value.to_value() {
        Value::Map(pairs) => {
            let mut out = String::new();
            write_table(&mut out, &pairs, &mut Vec::new());
            Ok(out)
        }
        other => Err(Error::new(format!(
            "a TOML document must be a table, got {}",
            other.kind()
        ))),
    }
}

/// Parses a TOML document into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed TOML or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_document(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Writes `pairs` as a TOML table: scalar/array keys first, then one
/// `[section]` per nested table, depth first. `path` is the section prefix.
fn write_table(out: &mut String, pairs: &[(String, Value)], path: &mut Vec<String>) {
    for (key, value) in pairs {
        match value {
            Value::Map(_) | Value::Null => {}
            other => {
                out.push_str(&bare_or_quoted(key));
                out.push_str(" = ");
                write_inline(out, other);
                out.push('\n');
            }
        }
    }
    for (key, value) in pairs {
        if let Value::Map(inner) = value {
            path.push(key.clone());
            if !out.is_empty() {
                out.push('\n');
            }
            out.push('[');
            out.push_str(
                &path
                    .iter()
                    .map(|p| bare_or_quoted(p))
                    .collect::<Vec<_>>()
                    .join("."),
            );
            out.push_str("]\n");
            write_table(out, inner, path);
            path.pop();
        }
    }
}

fn write_inline(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("{}"), // unreachable from write_table; defensive
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_float(out, *x),
        Value::Str(s) => write_basic_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push_str("{ ");
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&bare_or_quoted(key));
                out.push_str(" = ");
                write_inline(out, item);
            }
            out.push_str(" }");
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("nan");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "inf" } else { "-inf" });
    } else {
        // Rust's Debug formatting always includes a `.` or an exponent, both
        // of which make the token a float in TOML.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_basic_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn bare_or_quoted(key: &str) -> String {
    if is_bare_key(key) {
        key.to_string()
    } else {
        let mut out = String::new();
        write_basic_string(&mut out, key);
        out
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a whole document into a [`Value::Map`].
fn parse_document(text: &str) -> Result<Value, Error> {
    let mut root: Vec<(String, Value)> = Vec::new();
    let mut section: Vec<String> = Vec::new();

    let mut lines = text.lines().enumerate().peekable();
    while let Some((line_no, raw)) = lines.next() {
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('[') {
            if header.starts_with('[') {
                return Err(Error::new(format!(
                    "line {}: array-of-tables headers are not supported",
                    line_no + 1
                )));
            }
            let header = header.strip_suffix(']').ok_or_else(|| {
                Error::new(format!("line {}: unterminated table header", line_no + 1))
            })?;
            section = parse_key_path(header).map_err(|e| e.at(&format!("line {}", line_no + 1)))?;
            // Materialize the (possibly empty) table.
            ensure_table(&mut root, &section)
                .map_err(|e| e.at(&format!("line {}", line_no + 1)))?;
            continue;
        }

        // A key/value pair; join following lines while brackets are open
        // (multi-line arrays).
        let mut logical = line.to_string();
        while open_brackets(&logical) > 0 {
            match lines.next() {
                Some((_, next)) => {
                    logical.push(' ');
                    logical.push_str(strip_comment(next));
                }
                None => {
                    return Err(Error::new(format!(
                        "line {}: unterminated array or inline table",
                        line_no + 1
                    )))
                }
            }
        }

        let (key_part, value_part) = logical
            .split_once('=')
            .ok_or_else(|| Error::new(format!("line {}: expected `key = value`", line_no + 1)))?;
        let keys =
            parse_key_path(key_part.trim()).map_err(|e| e.at(&format!("line {}", line_no + 1)))?;
        let mut cursor = Cursor::new(value_part.trim());
        let value = cursor
            .value()
            .map_err(|e| e.at(&format!("line {}", line_no + 1)))?;
        cursor.skip_ws();
        if !cursor.at_end() {
            return Err(Error::new(format!(
                "line {}: trailing characters after value",
                line_no + 1
            )));
        }

        let mut path = section.clone();
        path.extend(keys);
        insert(&mut root, &path, value).map_err(|e| e.at(&format!("line {}", line_no + 1)))?;
    }

    Ok(Value::Map(root))
}

/// Strips a `#` comment, respecting quotes.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_basic = false;
    let mut in_literal = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_basic => i += 1,
            b'"' if !in_literal => in_basic = !in_basic,
            b'\'' if !in_basic => in_literal = !in_literal,
            b'#' if !in_basic && !in_literal => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Net count of unclosed `[`/`{` outside strings.
fn open_brackets(text: &str) -> i32 {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_basic => i += 1,
            b'"' if !in_literal => in_basic = !in_basic,
            b'\'' if !in_basic => in_literal = !in_literal,
            b'[' | b'{' if !in_basic && !in_literal => depth += 1,
            b']' | b'}' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth
}

/// Parses a dotted key path: `a.b."quoted key"`.
fn parse_key_path(text: &str) -> Result<Vec<String>, Error> {
    let mut keys = Vec::new();
    let mut cursor = Cursor::new(text);
    loop {
        cursor.skip_ws();
        let key = match cursor.peek() {
            Some('"') | Some('\'') => cursor.string()?,
            _ => {
                let word = cursor.take_while(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                if word.is_empty() {
                    return Err(Error::new(format!("invalid key in `{text}`")));
                }
                word
            }
        };
        keys.push(key);
        cursor.skip_ws();
        match cursor.peek() {
            Some('.') => {
                cursor.advance();
            }
            None => return Ok(keys),
            Some(c) => return Err(Error::new(format!("unexpected `{c}` in key `{text}`"))),
        }
    }
}

fn ensure_table<'t>(
    table: &'t mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'t mut Vec<(String, Value)>, Error> {
    let mut current = table;
    for key in path {
        let idx = match current.iter().position(|(k, _)| k == key) {
            Some(i) => i,
            None => {
                current.push((key.clone(), Value::Map(Vec::new())));
                current.len() - 1
            }
        };
        match &mut current[idx].1 {
            Value::Map(inner) => current = inner,
            other => {
                return Err(Error::new(format!(
                    "key `{key}` already holds a {}, cannot use it as a table",
                    other.kind()
                )))
            }
        }
    }
    Ok(current)
}

fn insert(table: &mut Vec<(String, Value)>, path: &[String], value: Value) -> Result<(), Error> {
    let (last, parents) = path.split_last().expect("key path is never empty");
    let target = ensure_table(table, parents)?;
    if target.iter().any(|(k, _)| k == last) {
        return Err(Error::new(format!("duplicate key `{last}`")));
    }
    target.push((last.clone(), value));
    Ok(())
}

/// A character cursor over one logical value.
struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    _text: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Cursor {
            chars: text.chars().collect(),
            pos: 0,
            _text: text,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn advance(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                out.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        out
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some('"') | Some('\'') => Ok(Value::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.inline_table(),
            Some('t') | Some('f') => {
                let word = self.take_while(|c| c.is_ascii_alphabetic());
                match word.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    other => Err(Error::new(format!("unknown keyword `{other}`"))),
                }
            }
            Some(c) if c == '-' || c == '+' || c.is_ascii_digit() || c == 'i' || c == 'n' => {
                self.number()
            }
            other => Err(Error::new(format!("unexpected {other:?} in value"))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        let quote = self.advance().expect("caller peeked a quote");
        let mut out = String::new();
        loop {
            match self.advance() {
                None => return Err(Error::new("unterminated string")),
                Some(c) if c == quote => return Ok(out),
                Some('\\') if quote == '"' => match self.advance() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') | Some('U') => {
                        let len = if self.chars[self.pos - 1] == 'u' {
                            4
                        } else {
                            8
                        };
                        let hex: String =
                            (0..len).map(|_| self.advance().unwrap_or('\0')).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| Error::new(format!("invalid unicode escape `{hex}`")))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode code point"))?,
                        );
                    }
                    other => return Err(Error::new(format!("unknown string escape {other:?}"))),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.advance(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(']') {
                self.advance();
                return Ok(Value::Seq(items));
            }
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.advance();
                }
                Some(']') => {
                    self.advance();
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error::new(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, Error> {
        self.advance(); // '{'
        let mut pairs: Vec<(String, Value)> = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.advance();
                return Ok(Value::Map(pairs));
            }
            let key = match self.peek() {
                Some('"') | Some('\'') => self.string()?,
                _ => {
                    let word =
                        self.take_while(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                    if word.is_empty() {
                        return Err(Error::new("invalid key in inline table"));
                    }
                    word
                }
            };
            self.skip_ws();
            if self.advance() != Some('=') {
                return Err(Error::new("expected `=` in inline table"));
            }
            let value = self.value()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(Error::new(format!("duplicate key `{key}` in inline table")));
            }
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.advance();
                }
                Some('}') => {
                    self.advance();
                    return Ok(Value::Map(pairs));
                }
                other => return Err(Error::new(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let raw = self.take_while(|c| {
            c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '+' || c == '-'
        });
        let text: String = raw.chars().filter(|&c| c != '_').collect();
        match text.trim_start_matches(['+', '-']) {
            "inf" => {
                return Ok(Value::F64(if text.starts_with('-') {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }))
            }
            "nan" => return Ok(Value::F64(f64::NAN)),
            _ => {}
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        } else {
            let unsigned = text.strip_prefix('+').unwrap_or(&text);
            unsigned
                .parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Value {
        parse_document(text).unwrap()
    }

    #[test]
    fn scalars_and_sections() {
        let v = doc("a = 1\nb = -2\nc = 1.5\nd = true\ne = \"hi\"\n\n[t]\nx = 2\n\n[t.u]\ny = 3\n");
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), Some(&Value::I64(-2)));
        assert_eq!(v.get("c"), Some(&Value::F64(1.5)));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Str("hi".into())));
        assert_eq!(v.get("t").unwrap().get("x"), Some(&Value::U64(2)));
        assert_eq!(
            v.get("t").unwrap().get("u").unwrap().get("y"),
            Some(&Value::U64(3))
        );
    }

    #[test]
    fn arrays_and_inline_tables() {
        let v = doc("xs = [1, 2, 3]\nys = [\"a\", \"b\"]\npolicy = { Fixed = 3 }\n");
        assert_eq!(
            v.get("xs"),
            Some(&Value::Seq(vec![
                Value::U64(1),
                Value::U64(2),
                Value::U64(3)
            ]))
        );
        assert_eq!(
            v.get("policy"),
            Some(&Value::Map(vec![("Fixed".into(), Value::U64(3))]))
        );
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let v = doc("# header\nxs = [\n  1, # one\n  2,\n]\n");
        assert_eq!(
            v.get("xs"),
            Some(&Value::Seq(vec![Value::U64(1), Value::U64(2)]))
        );
    }

    #[test]
    fn writer_roundtrips_nested_documents() {
        let original = Value::Map(vec![
            ("name".into(), Value::Str("fig3".into())),
            ("seed".into(), Value::U64(2014)),
            (
                "axes".into(),
                Value::Map(vec![
                    (
                        "coverages".into(),
                        Value::Seq(vec![Value::U64(524288), Value::U64(262144)]),
                    ),
                    (
                        "policies".into(),
                        Value::Seq(vec![
                            Value::Str("Baseline".into()),
                            Value::Str("Allarm".into()),
                        ]),
                    ),
                ]),
            ),
            (
                "machine".into(),
                Value::Map(vec![(
                    "l2".into(),
                    Value::Map(vec![
                        ("size_bytes".into(), Value::U64(262144)),
                        ("ratio".into(), Value::F64(0.25)),
                    ]),
                )]),
            ),
        ]);
        let mut out = String::new();
        if let Value::Map(pairs) = &original {
            write_table(&mut out, pairs, &mut Vec::new());
        }
        assert!(out.contains("[axes]"));
        assert!(out.contains("[machine.l2]"));
        assert_eq!(doc(&out), original);
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(parse_document("a = 1\na = 2\n").is_err());
    }

    #[test]
    fn strings_with_hash_and_quotes() {
        let v = doc("s = \"a # not a comment\" # real comment\n");
        assert_eq!(v.get("s"), Some(&Value::Str("a # not a comment".into())));
    }

    #[test]
    fn unsupported_constructs_error() {
        assert!(parse_document("[[points]]\nx = 1\n").is_err());
        assert!(parse_document("just a line\n").is_err());
    }

    #[test]
    fn root_must_be_a_table() {
        assert!(to_string(&42u64).is_err());
    }
}

//! Dynamic-energy and area models for the probe filter and on-chip network.
//!
//! The paper evaluates energy with McPAT at 32 nm (Section III-A3) and
//! reports *normalised* dynamic energy, plus an absolute area table for the
//! probe filter. McPAT itself is a large C++ framework; what the evaluation
//! actually needs from it is much smaller:
//!
//! * dynamic energy = activity counts x per-event energy, for two
//!   components: the probe-filter array (reads/writes/evictions) and the
//!   NoC (router traversals and link traversals per flit-hop);
//! * an area estimate for a probe filter of a given capacity.
//!
//! [`EnergyModel`] provides the per-event costs (defaults are representative
//! 32 nm values; since every figure is normalised against the baseline, only
//! the *relative* activity matters). [`area::probe_filter_area_mm2`]
//! reproduces the paper's area table.
//!
//! # Examples
//!
//! ```
//! use allarm_energy::EnergyModel;
//! use allarm_noc::NocStats;
//! use allarm_coherence::PfStats;
//!
//! let model = EnergyModel::mcpat_32nm();
//! let energy = model.dynamic_energy(&NocStats::new(), &PfStats::default());
//! assert_eq!(energy.noc_pj, 0.0);
//! assert_eq!(energy.probe_filter_pj, 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod model;

pub use area::probe_filter_area_mm2;
pub use model::{DynamicEnergy, EnergyModel};

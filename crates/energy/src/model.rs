//! Activity-based dynamic-energy model (McPAT stand-in).

use allarm_coherence::PfStats;
use allarm_noc::NocStats;
use serde::{Deserialize, Serialize};

/// Dynamic energy consumed by the components the reports break out, in
/// picojoules: the paper's two (Fig. 3f) plus the optional shared LLC
/// slices of the scaled machines.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DynamicEnergy {
    /// Energy spent in the on-chip network (routers + links).
    pub noc_pj: f64,
    /// Energy spent in the probe-filter arrays.
    pub probe_filter_pj: f64,
    /// Energy spent in the shared per-node LLC slices (zero when the
    /// machine has none, as on the paper's configuration).
    #[serde(default)]
    pub llc_pj: f64,
}

impl DynamicEnergy {
    /// Total dynamic energy across all components.
    pub fn total_pj(&self) -> f64 {
        self.noc_pj + self.probe_filter_pj + self.llc_pj
    }
}

/// Per-event energy costs.
///
/// The defaults ([`EnergyModel::mcpat_32nm`]) are representative per-event
/// energies for a 32 nm process: an SRAM directory-array access of a few
/// picojoules, and roughly a picojoule per flit per router/link traversal.
/// Because the paper reports energy normalised to the baseline, the results
/// are insensitive to the absolute values — they cancel in the ratio — but
/// realistic magnitudes keep the absolute reports plausible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per probe-filter array access (tag+data read or write), pJ.
    pub pf_access_pj: f64,
    /// Additional energy per probe-filter eviction (victim read-out plus
    /// replacement write), pJ.
    pub pf_eviction_pj: f64,
    /// Energy per level-1 node-presence-vector read of a hierarchical
    /// (multi-core-node) probe filter, pJ. The vector is one bit per node
    /// — far narrower than the full entry — so this is a fraction of
    /// [`EnergyModel::pf_access_pj`]. Flat filters never charge it.
    pub pf_node_vector_pj: f64,
    /// Energy per flit per router traversal, pJ.
    pub router_flit_pj: f64,
    /// Energy per flit per link traversal, pJ.
    pub link_flit_pj: f64,
    /// Energy per shared-LLC-slice array access (lookup, fill, eviction
    /// read-out or invalidation), pJ. A multi-megabyte SRAM slice costs
    /// several times a probe-filter entry access.
    #[serde(default)]
    pub llc_access_pj: f64,
}

impl EnergyModel {
    /// Representative 32 nm per-event energies (the process node the paper
    /// uses with McPAT).
    pub fn mcpat_32nm() -> Self {
        EnergyModel {
            pf_access_pj: 6.0,
            pf_eviction_pj: 12.0,
            pf_node_vector_pj: 1.5,
            router_flit_pj: 1.2,
            link_flit_pj: 0.8,
            llc_access_pj: 18.0,
        }
    }

    /// Computes the dynamic energy implied by a set of network and
    /// probe-filter activity counters.
    ///
    /// Each flit-hop costs one link traversal plus one router traversal
    /// (the downstream router); probe-filter energy is per-array-access plus
    /// an extra charge per eviction (the read-out of the victim's tag and
    /// data followed by the write of the replacement, as described in
    /// Section II-B of the paper). On hierarchical filters the level-1
    /// node-vector reads are charged on top; flat filters report zero such
    /// accesses, so the term vanishes on the paper's machine.
    pub fn dynamic_energy(&self, noc: &NocStats, pf: &PfStats) -> DynamicEnergy {
        self.dynamic_energy_with_llc(noc, pf, 0)
    }

    /// As [`EnergyModel::dynamic_energy`], additionally charging
    /// `llc_accesses` shared-LLC-slice array events (lookups that hit or
    /// missed, eviction read-outs and invalidations — each touches the
    /// array once). Machines without an LLC pass zero and report zero.
    pub fn dynamic_energy_with_llc(
        &self,
        noc: &NocStats,
        pf: &PfStats,
        llc_accesses: u64,
    ) -> DynamicEnergy {
        let flit_hops = noc.total_flit_hops() as f64;
        let noc_pj = flit_hops * (self.router_flit_pj + self.link_flit_pj);
        let pf_pj = pf.array_accesses.get() as f64 * self.pf_access_pj
            + pf.evictions.get() as f64 * self.pf_eviction_pj
            + pf.node_vector_accesses.get() as f64 * self.pf_node_vector_pj;
        DynamicEnergy {
            noc_pj,
            probe_filter_pj: pf_pj,
            llc_pj: llc_accesses as f64 * self.llc_access_pj,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::mcpat_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allarm_noc::MessageClass;

    #[test]
    fn zero_activity_means_zero_energy() {
        let model = EnergyModel::mcpat_32nm();
        let e = model.dynamic_energy(&NocStats::new(), &PfStats::default());
        assert_eq!(e.noc_pj, 0.0);
        assert_eq!(e.probe_filter_pj, 0.0);
        assert_eq!(e.total_pj(), 0.0);
    }

    #[test]
    fn noc_energy_scales_with_flit_hops() {
        let model = EnergyModel::mcpat_32nm();
        let mut noc = NocStats::new();
        noc.record(MessageClass::Data, 72, 3, 18); // 54 flit-hops
        let e = model.dynamic_energy(&noc, &PfStats::default());
        let expected = 54.0 * (model.router_flit_pj + model.link_flit_pj);
        assert!((e.noc_pj - expected).abs() < 1e-9);
    }

    #[test]
    fn pf_energy_charges_accesses_and_evictions() {
        let model = EnergyModel::mcpat_32nm();
        let mut pf = PfStats::default();
        pf.array_accesses.add(10);
        pf.evictions.add(2);
        let e = model.dynamic_energy(&NocStats::new(), &pf);
        let expected = 10.0 * model.pf_access_pj + 2.0 * model.pf_eviction_pj;
        assert!((e.probe_filter_pj - expected).abs() < 1e-9);
        assert!(e.total_pj() > 0.0);
    }

    #[test]
    fn hierarchical_node_vector_reads_are_charged_separately() {
        let model = EnergyModel::mcpat_32nm();
        let mut flat = PfStats::default();
        flat.array_accesses.add(10);
        let mut hier = flat;
        hier.node_vector_accesses.add(10);
        let e_flat = model.dynamic_energy(&NocStats::new(), &flat);
        let e_hier = model.dynamic_energy(&NocStats::new(), &hier);
        let delta = e_hier.probe_filter_pj - e_flat.probe_filter_pj;
        assert!((delta - 10.0 * model.pf_node_vector_pj).abs() < 1e-9);
        // The level-1 vector is narrower than the full entry.
        assert!(model.pf_node_vector_pj < model.pf_access_pj);
    }

    #[test]
    fn fewer_evictions_means_less_energy() {
        // The core claim of Fig. 3f: reducing evictions reduces PF energy.
        let model = EnergyModel::mcpat_32nm();
        let mut baseline = PfStats::default();
        baseline.array_accesses.add(1000);
        baseline.evictions.add(400);
        let mut allarm = PfStats::default();
        allarm.array_accesses.add(900);
        allarm.evictions.add(200);
        let e_base = model.dynamic_energy(&NocStats::new(), &baseline);
        let e_allarm = model.dynamic_energy(&NocStats::new(), &allarm);
        assert!(e_allarm.probe_filter_pj < e_base.probe_filter_pj);
    }

    #[test]
    fn llc_accesses_are_charged_per_event() {
        let model = EnergyModel::mcpat_32nm();
        let e = model.dynamic_energy_with_llc(&NocStats::new(), &PfStats::default(), 7);
        assert!((e.llc_pj - 7.0 * model.llc_access_pj).abs() < 1e-9);
        assert_eq!(e.total_pj(), e.llc_pj);
        // The two-argument form charges nothing — LLC-less machines
        // report exactly what they did before the slice existed.
        let none = model.dynamic_energy(&NocStats::new(), &PfStats::default());
        assert_eq!(none.llc_pj, 0.0);
    }

    #[test]
    fn default_is_32nm_model() {
        assert_eq!(EnergyModel::default(), EnergyModel::mcpat_32nm());
    }
}

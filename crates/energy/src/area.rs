//! Probe-filter area model.
//!
//! The paper's area table (Section III-A5) reports the silicon area of probe
//! filters from 512 kB down to 32 kB, estimated with McPAT:
//!
//! | PF configuration | 512 kB | 256 kB | 128 kB | 64 kB | 32 kB |
//! |---|---|---|---|---|---|
//! | Area (mm²) | 70.89 | 26.95 | 19.90 | 8.20 | 5.93 |
//!
//! This module reproduces that table exactly at the published points and
//! interpolates log-linearly between them so sweeps at other capacities get
//! sensible values.

/// The published (capacity in bytes, area in mm²) points from the paper.
pub const PAPER_AREA_POINTS: [(u64, f64); 5] = [
    (32 * 1024, 5.93),
    (64 * 1024, 8.20),
    (128 * 1024, 19.90),
    (256 * 1024, 26.95),
    (512 * 1024, 70.89),
];

/// Estimated probe-filter area in mm² for a filter tracking
/// `coverage_bytes` of cached data.
///
/// Published capacities return the paper's numbers exactly; other
/// capacities are interpolated (or extrapolated) log-linearly in capacity.
///
/// # Panics
///
/// Panics if `coverage_bytes` is zero.
///
/// # Examples
///
/// ```
/// use allarm_energy::probe_filter_area_mm2;
/// assert_eq!(probe_filter_area_mm2(512 * 1024), 70.89);
/// assert_eq!(probe_filter_area_mm2(32 * 1024), 5.93);
/// let mid = probe_filter_area_mm2(96 * 1024);
/// assert!(mid > 8.20 && mid < 19.90);
/// ```
pub fn probe_filter_area_mm2(coverage_bytes: u64) -> f64 {
    assert!(coverage_bytes > 0, "probe filter capacity must be non-zero");
    let points = &PAPER_AREA_POINTS;

    // Exact published point?
    if let Some((_, area)) = points.iter().find(|(cap, _)| *cap == coverage_bytes) {
        return *area;
    }

    let x = (coverage_bytes as f64).ln();
    // Below the smallest or above the largest point: extrapolate from the
    // nearest segment.
    let segment = if coverage_bytes <= points[0].0 {
        (points[0], points[1])
    } else if coverage_bytes >= points[points.len() - 1].0 {
        (points[points.len() - 2], points[points.len() - 1])
    } else {
        let upper = points
            .iter()
            .position(|(cap, _)| *cap > coverage_bytes)
            .expect("capacity is within the table range");
        (points[upper - 1], points[upper])
    };
    let ((c0, a0), (c1, a1)) = segment;
    let x0 = (c0 as f64).ln();
    let x1 = (c1 as f64).ln();
    let t = (x - x0) / (x1 - x0);
    a0 + t * (a1 - a0)
}

/// The area saved by shrinking the probe filter from `from_bytes` to
/// `to_bytes` (positive when shrinking), in mm². This is the SRAM the paper
/// notes can be returned to the last-level cache.
pub fn area_saving_mm2(from_bytes: u64, to_bytes: u64) -> f64 {
    probe_filter_area_mm2(from_bytes) - probe_filter_area_mm2(to_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_points_are_exact() {
        for (cap, area) in PAPER_AREA_POINTS {
            assert_eq!(probe_filter_area_mm2(cap), area);
        }
    }

    #[test]
    fn area_is_monotonic_in_capacity() {
        let caps = [
            16 * 1024,
            32 * 1024,
            48 * 1024,
            64 * 1024,
            96 * 1024,
            128 * 1024,
            192 * 1024,
            256 * 1024,
            384 * 1024,
            512 * 1024,
            1024 * 1024,
        ];
        let areas: Vec<f64> = caps.iter().map(|c| probe_filter_area_mm2(*c)).collect();
        for pair in areas.windows(2) {
            assert!(pair[1] > pair[0], "area must grow with capacity: {areas:?}");
        }
    }

    #[test]
    fn interpolation_stays_between_neighbours() {
        let mid = probe_filter_area_mm2(192 * 1024);
        assert!(mid > 19.90 && mid < 26.95);
    }

    #[test]
    fn extrapolation_beyond_table_is_finite_and_positive() {
        let big = probe_filter_area_mm2(2 * 1024 * 1024);
        assert!(big.is_finite() && big > 70.89);
        let small = probe_filter_area_mm2(8 * 1024);
        assert!(small.is_finite() && small > 0.0);
    }

    #[test]
    fn savings_match_table_differences() {
        let saving = area_saving_mm2(512 * 1024, 128 * 1024);
        assert!((saving - (70.89 - 19.90)).abs() < 1e-9);
        assert!(area_saving_mm2(128 * 1024, 512 * 1024) < 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        probe_filter_area_mm2(0);
    }
}

//! Strongly-typed identifiers for cores, nodes (affinity domains) and threads.
//!
//! The simulator distinguishes between the hardware core executing a memory
//! access ([`CoreId`]), the NUMA node / affinity domain that homes a physical
//! page and hosts a directory controller ([`NodeId`]), and the software thread
//! issuing accesses ([`ThreadId`]). In the paper's 16-core configuration each
//! core is its own affinity domain; scaled machines host several cores per
//! node, with the mapping owned by [`crate::topology::Topology`].

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u16);

        impl $name {
            /// Creates a new identifier from a raw index.
            ///
            /// # Examples
            ///
            /// ```
            /// # use allarm_types::ids::*;
            #[doc = concat!("let id = ", stringify!($name), "::new(3);")]
            /// assert_eq!(id.index(), 3);
            /// ```
            pub const fn new(index: u16) -> Self {
                Self(index)
            }

            /// Returns the raw index as a `usize`, convenient for indexing
            /// per-core or per-node vectors.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as stored.
            pub const fn raw(self) -> u16 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<u16> for $name {
            fn from(value: u16) -> Self {
                Self(value)
            }
        }

        impl From<$name> for u16 {
            fn from(value: $name) -> Self {
                value.0
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> Self {
                value.index()
            }
        }
    };
}

id_newtype!(
    /// Identifier of a hardware core (one per tile in the mesh).
    CoreId,
    "core"
);

id_newtype!(
    /// Identifier of a NUMA node / affinity domain.
    ///
    /// Each node hosts a memory controller, a slice of DRAM and a directory
    /// controller with its probe filter.
    NodeId,
    "node"
);

id_newtype!(
    /// Identifier of a software thread.
    ///
    /// Threads are scheduled onto cores by the workload; in the default
    /// 16-thread experiments thread `i` runs on core `i`.
    ThreadId,
    "thread"
);

impl CoreId {
    /// Returns an iterator over the first `n` core identifiers.
    ///
    /// # Examples
    ///
    /// ```
    /// use allarm_types::ids::CoreId;
    /// let cores: Vec<CoreId> = CoreId::first(4).collect();
    /// assert_eq!(cores.len(), 4);
    /// assert_eq!(cores[3], CoreId::new(3));
    /// ```
    pub fn first(n: usize) -> impl Iterator<Item = CoreId> {
        (0..n as u16).map(CoreId::new)
    }
}

impl NodeId {
    /// Returns an iterator over the first `n` node identifiers.
    pub fn first(n: usize) -> impl Iterator<Item = NodeId> {
        (0..n as u16).map(NodeId::new)
    }
}

impl ThreadId {
    /// Returns an iterator over the first `n` thread identifiers.
    pub fn first(n: usize) -> impl Iterator<Item = ThreadId> {
        (0..n as u16).map(ThreadId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn core_id_roundtrips_through_u16() {
        let id = CoreId::new(7);
        assert_eq!(u16::from(id), 7);
        assert_eq!(CoreId::from(7u16), id);
        assert_eq!(id.index(), 7usize);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(NodeId::new(0).to_string(), "node0");
        assert_eq!(ThreadId::new(15).to_string(), "thread15");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert!(NodeId::new(5) > NodeId::new(4));
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<CoreId> = CoreId::first(16).collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn first_yields_consecutive_ids() {
        let nodes: Vec<NodeId> = NodeId::first(3).collect();
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        let threads: Vec<ThreadId> = ThreadId::first(2).collect();
        assert_eq!(threads, vec![ThreadId::new(0), ThreadId::new(1)]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(CoreId::default(), CoreId::new(0));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}

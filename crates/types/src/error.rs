//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid machine or experiment configuration.
///
/// Returned by [`crate::config::MachineConfig::validate`] and by builders in
/// downstream crates that accept user-supplied configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: String,
    reason: String,
}

impl ConfigError {
    /// Creates a new configuration error for `field` with a human-readable
    /// `reason`.
    pub fn new(field: impl Into<String>, reason: impl Into<String>) -> Self {
        ConfigError {
            field: field.into(),
            reason: reason.into(),
        }
    }

    /// The configuration field that failed validation.
    pub fn field(&self) -> &str {
        &self.field
    }

    /// Why the field is invalid.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration for `{}`: {}",
            self.field, self.reason
        )
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_reason() {
        let err = ConfigError::new("l2.ways", "must be a power of two");
        let text = err.to_string();
        assert!(text.contains("l2.ways"));
        assert!(text.contains("power of two"));
    }

    #[test]
    fn accessors_return_parts() {
        let err = ConfigError::new("num_cores", "must be non-zero");
        assert_eq!(err.field(), "num_cores");
        assert_eq!(err.reason(), "must be non-zero");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}

//! Small statistics helpers shared by the cache, network, directory and
//! simulator crates.
//!
//! The heavyweight, component-specific statistics structs live with their
//! components; this module only provides the building blocks: a saturating
//! event [`Counter`], a running [`MeanAccumulator`], and [`ratio`] /
//! [`normalized`] helpers that deal with empty denominators consistently.

use std::fmt;
use std::ops::AddAssign;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use allarm_types::stats::Counter;
/// let mut evictions = Counter::new();
/// evictions.incr();
/// evictions.add(2);
/// assert_eq!(evictions.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the count as a floating point number (for ratios).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl AddAssign for Counter {
    fn add_assign(&mut self, rhs: Counter) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Counter> for u64 {
    fn from(value: Counter) -> Self {
        value.0
    }
}

impl From<u64> for Counter {
    fn from(value: u64) -> Self {
        Counter(value)
    }
}

/// A running arithmetic mean over `f64` samples.
///
/// # Examples
///
/// ```
/// use allarm_types::stats::MeanAccumulator;
/// let mut mean = MeanAccumulator::new();
/// mean.push(2.0);
/// mean.push(4.0);
/// assert_eq!(mean.mean(), Some(3.0));
/// assert_eq!(mean.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MeanAccumulator {
    sum: f64,
    count: u64,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        MeanAccumulator { sum: 0.0, count: 0 }
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: f64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Returns the mean, or `None` if no samples were added.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Number of samples pushed so far.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples pushed so far.
    pub const fn sum(&self) -> f64 {
        self.sum
    }
}

/// Divides `num` by `den`, returning 0.0 when the denominator is zero.
///
/// Used for hit rates and local/remote fractions where an empty denominator
/// simply means "no events", not an error.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Returns `value / baseline`, the normalisation the paper uses throughout
/// its figures ("normalised evictions", "normalised traffic", ...).
///
/// When the baseline is zero, returns 1.0 if the value is also zero (both
/// systems did nothing, so they are equal) and `f64::INFINITY` otherwise.
pub fn normalized(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        if value == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        value / baseline
    }
}

/// Geometric mean of a slice of positive values, the aggregation the paper
/// uses for the "geomean" bars.
///
/// Returns `None` for an empty slice or if any value is not strictly
/// positive.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments_and_adds() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        c += 5u64;
        let mut d = Counter::new();
        d.add(10);
        c += d;
        assert_eq!(c.get(), 20);
        assert_eq!(u64::from(c), 20);
        assert_eq!(c.to_string(), "20");
    }

    #[test]
    fn mean_accumulator_handles_empty_and_nonempty() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), None);
        m.push(1.0);
        m.push(2.0);
        m.push(3.0);
        assert_eq!(m.mean(), Some(2.0));
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 6.0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 10), 0.5);
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(0, 0), 0.0);
    }

    #[test]
    fn normalized_handles_zero_baseline() {
        assert_eq!(normalized(50.0, 100.0), 0.5);
        assert_eq!(normalized(0.0, 0.0), 1.0);
        assert!(normalized(1.0, 0.0).is_infinite());
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn geometric_mean_of_identical_values_is_that_value() {
        let g = geometric_mean(&[1.13, 1.13, 1.13]).unwrap();
        assert!((g - 1.13).abs() < 1e-12);
    }
}

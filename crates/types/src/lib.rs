//! Common vocabulary types for the ALLARM coherence-simulator workspace.
//!
//! This crate defines the identifiers, physical/virtual address newtypes,
//! simulated-time arithmetic, machine configuration and error types shared by
//! every other crate in the workspace. It contains no simulation logic of its
//! own.
//!
//! # Examples
//!
//! ```
//! use allarm_types::config::MachineConfig;
//!
//! // The configuration from Table I of the DATE 2014 paper.
//! let machine = MachineConfig::date2014();
//! assert_eq!(machine.num_cores, 16);
//! assert_eq!(machine.noc.mesh_x * machine.noc.mesh_y, 16);
//! machine.validate().expect("the paper configuration is valid");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod config;
pub mod error;
pub mod ids;
pub mod stats;
pub mod time;
pub mod topology;

pub use addr::{LineAddr, PageAddr, PhysAddr, VirtAddr};
pub use config::{
    CacheConfig, CoresPerNode, DramConfig, MachineConfig, MissWindowConfig, NocConfig,
    PfReplacement, ProbeFilterConfig, SharerTracking,
};
pub use error::ConfigError;
pub use ids::{CoreId, NodeId, ThreadId};
pub use time::Nanos;
pub use topology::Topology;

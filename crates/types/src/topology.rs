//! The core ↔ node topology of the machine.
//!
//! Historically the model hard-wired "one core per NoC node": core *i* was
//! node *i* at every layer. [`Topology`] makes the mapping explicit — a
//! machine is `num_nodes × cores_per_node` cores, with cores assigned to
//! nodes in contiguous blocks (cores `n*k .. (n+1)*k` live on node `n` for
//! `cores_per_node = k`). With `cores_per_node = 1` every mapping below
//! degenerates to the identity, so the paper's Table I machine behaves
//! exactly as before.
//!
//! Each node hosts one memory controller, one DRAM slice, one directory
//! (probe filter) and one mesh router, shared by all of the node's cores;
//! messages between a core and its own node's directory traverse zero mesh
//! links.

use crate::ids::{CoreId, NodeId};
use serde::{Deserialize, Serialize};

/// The static core-to-node assignment of a machine.
///
/// # Examples
///
/// ```
/// use allarm_types::topology::Topology;
/// use allarm_types::ids::{CoreId, NodeId};
///
/// // 16 nodes x 4 cores: a 64-core machine on a 4x4 mesh.
/// let topo = Topology::new(16, 4);
/// assert_eq!(topo.num_cores(), 64);
/// assert_eq!(topo.node_of_core(CoreId::new(5)), NodeId::new(1));
/// assert_eq!(topo.local_core_of(NodeId::new(3)), CoreId::new(12));
/// let cores: Vec<CoreId> = topo.cores_of_node(NodeId::new(1)).collect();
/// assert_eq!(cores, vec![CoreId::new(4), CoreId::new(5), CoreId::new(6), CoreId::new(7)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    num_nodes: u32,
    cores_per_node: u32,
}

impl Topology {
    /// Creates a topology of `num_nodes` affinity domains with
    /// `cores_per_node` cores each.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(num_nodes: u32, cores_per_node: u32) -> Self {
        assert!(num_nodes > 0, "a machine needs at least one node");
        assert!(cores_per_node > 0, "a node hosts at least one core");
        Topology {
            num_nodes,
            cores_per_node,
        }
    }

    /// The historical one-core-per-node topology (the paper's machine).
    pub fn flat(num_nodes: u32) -> Self {
        Topology::new(num_nodes, 1)
    }

    /// Number of NUMA nodes (affinity domains).
    pub fn num_nodes(self) -> u32 {
        self.num_nodes
    }

    /// Cores hosted by each node.
    pub fn cores_per_node(self) -> u32 {
        self.cores_per_node
    }

    /// Total number of cores.
    pub fn num_cores(self) -> u32 {
        self.num_nodes * self.cores_per_node
    }

    /// True if nodes host more than one core, i.e. sharer tracking and
    /// probe filtering are meaningfully two-level.
    pub fn is_hierarchical(self) -> bool {
        self.cores_per_node > 1
    }

    /// The affinity domain hosting `core`.
    ///
    /// # Panics
    ///
    /// Panics if the core is outside the machine.
    pub fn node_of_core(self, core: CoreId) -> NodeId {
        let node = core.index() as u32 / self.cores_per_node;
        assert!(
            node < self.num_nodes,
            "{core} outside the {}-core machine",
            self.num_cores()
        );
        NodeId::new(node as u16)
    }

    /// The cores hosted by `node`, in ascending index order.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the machine.
    pub fn cores_of_node(self, node: NodeId) -> impl Iterator<Item = CoreId> {
        assert!(
            (node.index() as u32) < self.num_nodes,
            "{node} outside the {}-node machine",
            self.num_nodes
        );
        let first = node.index() as u32 * self.cores_per_node;
        (first..first + self.cores_per_node).map(|i| CoreId::new(i as u16))
    }

    /// The node's *designated* core: the one core per affinity domain the
    /// ALLARM policy is enabled for (Section II-E of the paper — one core,
    /// or one shared last-level cache, per domain). By convention it is the
    /// node's lowest-numbered core; with one core per node it is simply
    /// *the* core.
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the machine.
    pub fn local_core_of(self, node: NodeId) -> CoreId {
        assert!(
            (node.index() as u32) < self.num_nodes,
            "{node} outside the {}-node machine",
            self.num_nodes
        );
        CoreId::new((node.index() as u32 * self.cores_per_node) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_topology_is_the_identity() {
        let topo = Topology::flat(16);
        assert_eq!(topo.num_cores(), 16);
        assert!(!topo.is_hierarchical());
        for i in 0..16u16 {
            assert_eq!(topo.node_of_core(CoreId::new(i)), NodeId::new(i));
            assert_eq!(topo.local_core_of(NodeId::new(i)), CoreId::new(i));
            let cores: Vec<CoreId> = topo.cores_of_node(NodeId::new(i)).collect();
            assert_eq!(cores, vec![CoreId::new(i)]);
        }
    }

    #[test]
    fn blocked_assignment_partitions_cores() {
        let topo = Topology::new(4, 4);
        assert!(topo.is_hierarchical());
        let mut seen = Vec::new();
        for n in 0..4u16 {
            for core in topo.cores_of_node(NodeId::new(n)) {
                assert_eq!(topo.node_of_core(core), NodeId::new(n));
                seen.push(core);
            }
        }
        let expected: Vec<CoreId> = (0..16u16).map(CoreId::new).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn designated_core_is_the_first_of_the_block() {
        let topo = Topology::new(8, 2);
        assert_eq!(topo.local_core_of(NodeId::new(0)), CoreId::new(0));
        assert_eq!(topo.local_core_of(NodeId::new(5)), CoreId::new(10));
        // The designated core maps back to its node.
        for n in 0..8u16 {
            let node = NodeId::new(n);
            assert_eq!(topo.node_of_core(topo.local_core_of(node)), node);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_core_is_rejected() {
        Topology::new(4, 2).node_of_core(CoreId::new(8));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_per_node_is_rejected() {
        Topology::new(4, 0);
    }
}

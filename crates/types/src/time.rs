//! Simulated-time arithmetic.
//!
//! All latencies in the simulator are expressed in integer nanoseconds, the
//! unit used by Table I of the paper (1 ns cache access, 60 ns DRAM, 10 ns
//! link). [`Nanos`] is a transparent wrapper that supports the arithmetic the
//! simulator needs while preventing accidental mixing with other integer
//! quantities such as byte counts.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or timestamp in simulated nanoseconds.
///
/// # Examples
///
/// ```
/// use allarm_types::time::Nanos;
///
/// let dram = Nanos::new(60);
/// let probe = Nanos::new(12);
/// // The critical path of two overlapped operations:
/// assert_eq!(dram.max(probe), dram);
/// assert_eq!(dram + probe, Nanos::new(72));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from a raw nanosecond count.
    pub const fn new(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the value as a floating-point number of nanoseconds.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Returns the larger of the two durations (the critical path of two
    /// overlapped operations).
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }

    /// Returns the smaller of the two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, other: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(other.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

impl From<u64> for Nanos {
    fn from(value: u64) -> Self {
        Nanos(value)
    }
}

impl From<Nanos> for u64 {
    fn from(value: Nanos) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = Nanos::new(10);
        let b = Nanos::new(3);
        assert_eq!(a + b, Nanos::new(13));
        assert_eq!(a - b, Nanos::new(7));
        assert_eq!(a * 4, Nanos::new(40));
        assert_eq!(a / 2, Nanos::new(5));
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = Nanos::ZERO;
        t += Nanos::new(5);
        t += Nanos::new(7);
        assert_eq!(t, Nanos::new(12));
        t -= Nanos::new(2);
        assert_eq!(t, Nanos::new(10));
    }

    #[test]
    fn max_min_saturating() {
        assert_eq!(Nanos::new(60).max(Nanos::new(12)), Nanos::new(60));
        assert_eq!(Nanos::new(60).min(Nanos::new(12)), Nanos::new(12));
        assert_eq!(Nanos::new(5).saturating_sub(Nanos::new(9)), Nanos::ZERO);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Nanos = (1..=4).map(Nanos::new).sum();
        assert_eq!(total, Nanos::new(10));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Nanos::new(60).to_string(), "60 ns");
    }

    #[test]
    fn ordering() {
        assert!(Nanos::new(1) < Nanos::new(2));
        assert_eq!(Nanos::default(), Nanos::ZERO);
    }
}

//! Machine configuration: the typed equivalent of Table I in the paper.
//!
//! A [`MachineConfig`] describes the simulated hardware: number of cores,
//! how many cores share each NUMA node, cache geometry, probe-filter
//! geometry, DRAM, and the on-chip network. The [`MachineConfig::date2014`]
//! constructor reproduces Table I exactly (one core per node); the
//! [`MachineConfig::scale64`] constructor is the scaled 16-node × 4-core
//! machine. The individual fields are public so experiments can sweep them
//! (e.g. the probe-filter-size sweeps of Fig. 3h and Fig. 4).

use crate::addr::LINE_BYTES;
use crate::error::ConfigError;
use crate::time::Nanos;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Geometry and latency of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Access latency.
    pub access_latency: Nanos,
}

impl CacheConfig {
    /// Creates a cache configuration with the workspace-wide 64-byte line.
    pub fn new(size_bytes: u64, ways: u32, access_latency_ns: u64) -> Self {
        CacheConfig {
            size_bytes,
            ways,
            line_bytes: LINE_BYTES,
            access_latency: Nanos::new(access_latency_ns),
        }
    }

    /// Number of cache lines the cache can hold.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets (`lines / ways`).
    pub fn num_sets(&self) -> u64 {
        self.num_lines() / u64::from(self.ways)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the capacity is not an exact multiple of
    /// `ways * line_bytes`, or if any field is zero.
    pub fn validate(&self, name: &str) -> Result<(), ConfigError> {
        if self.size_bytes == 0 {
            return Err(ConfigError::new(
                format!("{name}.size_bytes"),
                "must be non-zero",
            ));
        }
        if self.ways == 0 {
            return Err(ConfigError::new(format!("{name}.ways"), "must be non-zero"));
        }
        if self.line_bytes == 0 {
            return Err(ConfigError::new(
                format!("{name}.line_bytes"),
                "must be non-zero",
            ));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                format!("{name}.line_bytes"),
                "must be a power of two (set indexing uses address bit fields)",
            ));
        }
        if u64::from(self.ways) > self.num_lines() {
            return Err(ConfigError::new(
                format!("{name}.ways"),
                "associativity exceeds the number of lines (zero sets)",
            ));
        }
        if !self
            .size_bytes
            .is_multiple_of(u64::from(self.ways) * self.line_bytes)
        {
            return Err(ConfigError::new(
                format!("{name}.size_bytes"),
                "capacity must be a multiple of ways * line_bytes",
            ));
        }
        Ok(())
    }
}

/// Victim-selection policy for the probe-filter array.
///
/// Directory caches typically avoid the metadata cost of true LRU; the
/// default here is a deterministic pseudo-random selection (as in several
/// deployed sparse-directory designs), with LRU available for ablation
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PfReplacement {
    /// Deterministic pseudo-random victim selection (default).
    #[default]
    Random,
    /// Least-recently-used by directory-request recency.
    Lru,
}

/// How the sparse directory represents the set of caches that may hold a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SharerTracking {
    /// Track the precise set of sharers in a bit vector per entry. Probe and
    /// invalidation traffic is sent only to actual sharers.
    #[default]
    SharerVector,
    /// Hammer-style: track only the owner; probes and eviction invalidations
    /// are broadcast to every core. This matches the unmodified AMD Hammer
    /// protocol the paper builds on and is available as an ablation.
    HammerBroadcast,
}

/// Geometry of the sparse directory (probe filter) attached to each node's
/// memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeFilterConfig {
    /// Amount of cached data (in bytes) the probe filter can track. Table I
    /// uses 512 kB, i.e. 2x the capacity of one L2.
    pub coverage_bytes: u64,
    /// Associativity of the probe-filter array.
    pub ways: u32,
    /// Access latency of the probe-filter SRAM.
    pub access_latency: Nanos,
    /// Sharer-tracking strategy.
    pub sharer_tracking: SharerTracking,
    /// Victim-selection policy.
    pub replacement: PfReplacement,
}

impl ProbeFilterConfig {
    /// Creates a probe-filter configuration tracking `coverage_bytes` of
    /// cached data with the given associativity and a 1 ns access latency.
    pub fn new(coverage_bytes: u64, ways: u32) -> Self {
        ProbeFilterConfig {
            coverage_bytes,
            ways,
            access_latency: Nanos::new(1),
            sharer_tracking: SharerTracking::default(),
            replacement: PfReplacement::default(),
        }
    }

    /// Number of directory entries (one per tracked cache line).
    pub fn num_entries(&self) -> u64 {
        self.coverage_bytes / LINE_BYTES
    }

    /// Number of sets in the probe-filter array.
    pub fn num_sets(&self) -> u64 {
        self.num_entries() / u64::from(self.ways)
    }

    /// Returns a copy of this configuration with a different coverage, used
    /// by the probe-filter-size sweeps.
    pub fn with_coverage(mut self, coverage_bytes: u64) -> Self {
        self.coverage_bytes = coverage_bytes;
        self
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the coverage is zero or not a multiple of
    /// `ways * LINE_BYTES`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.coverage_bytes == 0 {
            return Err(ConfigError::new(
                "probe_filter.coverage_bytes",
                "must be non-zero",
            ));
        }
        if self.ways == 0 {
            return Err(ConfigError::new("probe_filter.ways", "must be non-zero"));
        }
        if u64::from(self.ways) > self.num_entries() {
            return Err(ConfigError::new(
                "probe_filter.ways",
                "associativity exceeds the number of entries (zero sets)",
            ));
        }
        if !self
            .coverage_bytes
            .is_multiple_of(u64::from(self.ways) * LINE_BYTES)
        {
            return Err(ConfigError::new(
                "probe_filter.coverage_bytes",
                "coverage must be a multiple of ways * 64 bytes",
            ));
        }
        Ok(())
    }
}

/// DRAM capacity and latency for one node's memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Capacity of each node's DRAM slice in bytes (128 MB per node in the
    /// paper's 2 GB / 16 node configuration).
    pub node_capacity_bytes: u64,
    /// DRAM access latency (60 ns in Table I).
    pub access_latency: Nanos,
}

impl DramConfig {
    /// Creates a DRAM configuration.
    pub fn new(node_capacity_bytes: u64, access_latency_ns: u64) -> Self {
        DramConfig {
            node_capacity_bytes,
            access_latency: Nanos::new(access_latency_ns),
        }
    }

    /// Number of 4 KiB pages each node's DRAM slice can hold.
    pub fn pages_per_node(&self) -> u64 {
        self.node_capacity_bytes / crate::addr::PAGE_BYTES
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the capacity is smaller than one page.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.node_capacity_bytes < crate::addr::PAGE_BYTES {
            return Err(ConfigError::new(
                "dram.node_capacity_bytes",
                "must hold at least one page",
            ));
        }
        Ok(())
    }
}

/// The interconnect topology family a [`NocConfig`] selects.
///
/// Scenario documents written before fabrics existed do not carry the
/// field; the serde default is the historical 2-D mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FabricKind {
    /// 2-D mesh, dimension-ordered (X-then-Y) routing (default).
    #[default]
    Mesh,
    /// 2-D torus: the mesh with wrap-around links, so each axis distance is
    /// `min(d, n - d)`.
    Torus,
    /// Concentrated mesh: `concentration` nodes share each router of a
    /// smaller mesh; same-router traffic takes zero hops.
    CMesh,
}

/// Number of nodes sharing one router of a concentrated mesh.
///
/// A newtype so documents that predate fabrics — which do not carry the
/// field — deserialize to one node per router ([`Concentration::default`]
/// is 1, not 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Concentration(pub u32);

impl Concentration {
    /// The raw count.
    pub fn get(self) -> u32 {
        self.0
    }
}

impl Default for Concentration {
    fn default() -> Self {
        Concentration(1)
    }
}

/// On-chip network parameters (Table I, "Network").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Router grid width (number of columns).
    pub mesh_x: u32,
    /// Router grid height (number of rows).
    pub mesh_y: u32,
    /// Flit size in bytes.
    pub flit_bytes: u64,
    /// Size of a control message (requests, probes, invalidations, acks).
    pub control_msg_bytes: u64,
    /// Size of a data message (a cache line plus header).
    pub data_msg_bytes: u64,
    /// Link bandwidth in bytes per nanosecond (8 GB/s = 8 B/ns).
    pub link_bandwidth_bytes_per_ns: u64,
    /// Per-hop link latency.
    pub link_latency: Nanos,
    /// Topology family the `mesh_x` × `mesh_y` router grid is wired as.
    #[serde(default)]
    pub fabric: FabricKind,
    /// Nodes per router (> 1 only with [`FabricKind::CMesh`]).
    #[serde(default)]
    pub concentration: Concentration,
}

impl NocConfig {
    /// Creates a mesh configuration with the paper's message sizes.
    pub fn mesh(x: u32, y: u32) -> Self {
        NocConfig {
            mesh_x: x,
            mesh_y: y,
            flit_bytes: 4,
            control_msg_bytes: 8,
            data_msg_bytes: 72,
            link_bandwidth_bytes_per_ns: 8,
            link_latency: Nanos::new(10),
            fabric: FabricKind::Mesh,
            concentration: Concentration::default(),
        }
    }

    /// Creates a torus configuration with the paper's message sizes.
    pub fn torus(x: u32, y: u32) -> Self {
        NocConfig {
            fabric: FabricKind::Torus,
            ..NocConfig::mesh(x, y)
        }
    }

    /// Creates a concentrated-mesh configuration: an `x` × `y` router grid
    /// with `concentration` nodes per router, paper message sizes.
    pub fn cmesh(x: u32, y: u32, concentration: u32) -> Self {
        NocConfig {
            fabric: FabricKind::CMesh,
            concentration: Concentration(concentration),
            ..NocConfig::mesh(x, y)
        }
    }

    /// Total number of nodes the fabric connects
    /// (`mesh_x * mesh_y * concentration`).
    pub fn num_nodes(&self) -> u32 {
        self.mesh_x * self.mesh_y * self.concentration.get()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any dimension, message size or bandwidth
    /// is zero, or if a concentration above one is combined with a
    /// non-concentrated fabric.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mesh_x == 0 || self.mesh_y == 0 {
            return Err(ConfigError::new(
                "noc.mesh",
                "mesh dimensions must be non-zero",
            ));
        }
        if self.concentration.get() == 0 {
            return Err(ConfigError::new("noc.concentration", "must be non-zero"));
        }
        if self.concentration.get() > 1 && self.fabric != FabricKind::CMesh {
            return Err(ConfigError::new(
                "noc.concentration",
                format!(
                    "concentration {} requires the CMesh fabric, not {:?}",
                    self.concentration.get(),
                    self.fabric
                ),
            ));
        }
        if self.flit_bytes == 0 {
            return Err(ConfigError::new("noc.flit_bytes", "must be non-zero"));
        }
        if self.control_msg_bytes == 0 || self.data_msg_bytes == 0 {
            return Err(ConfigError::new(
                "noc.msg_bytes",
                "message sizes must be non-zero",
            ));
        }
        if self.link_bandwidth_bytes_per_ns == 0 {
            return Err(ConfigError::new("noc.link_bandwidth", "must be non-zero"));
        }
        Ok(())
    }
}

/// Number of cores sharing one NUMA node (affinity domain).
///
/// A newtype so scenario documents written before the multi-core-node
/// refactor — which do not carry the field — deserialize to the historical
/// one-core-per-node machine ([`CoresPerNode::default`] is 1, not 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoresPerNode(pub u32);

impl CoresPerNode {
    /// The raw count.
    pub fn get(self) -> u32 {
        self.0
    }
}

impl Default for CoresPerNode {
    fn default() -> Self {
        CoresPerNode(1)
    }
}

/// The per-core miss-batching window of the sharded kernel: a model of the
/// core's MSHRs (miss-status holding registers).
///
/// A core that blocks on a coherence miss may keep issuing further
/// independent requests — to distinct lines, stopping at any access that
/// depends on an outstanding one — as long as the window holds fewer than
/// `depth` misses and the next request's arrival time stays within
/// `horizon` of the round's base time. One epoch-barrier round then
/// carries several misses per core instead of exactly one. `depth = 1`
/// reproduces the historical one-miss-per-round kernel bit for bit.
///
/// Scenario documents written before this knob existed deserialize to the
/// default (the field is `#[serde(default)]` on [`MachineConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MissWindowConfig {
    /// Maximum outstanding misses per core (the MSHR count). Must be at
    /// least 1; the first miss of a window always issues regardless of the
    /// horizon, so forward progress never depends on this knob.
    pub depth: u32,
    /// How far past the round's base time (the minimum clock over all
    /// unfinished cores) a request's arrival may fall while the window is
    /// non-empty. Larger horizons batch more aggressively; the reply
    /// commit order is keyed, so results do not depend on this value's
    /// interaction with thread count.
    pub horizon: Nanos,
}

impl MissWindowConfig {
    /// The window every stock machine uses: eight MSHRs, a 250 ns horizon.
    pub fn default_window() -> Self {
        MissWindowConfig {
            depth: 8,
            horizon: Nanos::new(250),
        }
    }

    /// A single-entry window: the exact historical one-miss-per-round
    /// behaviour, useful as an ablation baseline.
    pub fn serial() -> Self {
        MissWindowConfig {
            depth: 1,
            horizon: Nanos::ZERO,
        }
    }

    /// Validates the window.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `depth` is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.depth == 0 {
            return Err(ConfigError::new(
                "miss_window.depth",
                "a core needs at least one miss-status register",
            ));
        }
        Ok(())
    }
}

impl Default for MissWindowConfig {
    fn default() -> Self {
        MissWindowConfig::default_window()
    }
}

/// The optional shared per-node LLC slice (NUCA): one set-associative array
/// per node, shared by the node's cores, sitting on the miss path between a
/// core's private L2 and the home directory.
///
/// The slice is inclusive of nothing — it caches clean `Shared` fills only,
/// so a slice hit can never hand out writable or stale-dirty data. Scenario
/// documents written before the LLC existed do not carry the stanza; the
/// serde default is `enabled = false`, which is byte-identical to the
/// pre-LLC simulator. A document that enables the LLC must spell out all
/// four fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Whether each node has a shared LLC slice at all.
    pub enabled: bool,
    /// Capacity of one node's slice in bytes.
    pub size_bytes: u64,
    /// Associativity of the slice.
    pub ways: u32,
    /// Access latency of the slice SRAM, charged on every lookup a core's
    /// read miss makes before (on a slice miss) continuing to the
    /// directory.
    pub access_latency: Nanos,
}

impl LlcConfig {
    /// The disabled configuration (carries a valid default geometry so
    /// `enabled = true` flipped on programmatically still validates).
    pub fn disabled() -> Self {
        LlcConfig {
            enabled: false,
            size_bytes: 2 * 1024 * 1024,
            ways: 16,
            access_latency: Nanos::new(6),
        }
    }

    /// An enabled slice of `size_bytes` with the given associativity and a
    /// 6 ns access latency.
    pub fn shared_slice(size_bytes: u64, ways: u32) -> Self {
        LlcConfig {
            enabled: true,
            size_bytes,
            ways,
            access_latency: Nanos::new(6),
        }
    }

    /// The slice geometry as a plain cache configuration (64-byte lines).
    pub fn cache_config(&self) -> CacheConfig {
        CacheConfig {
            size_bytes: self.size_bytes,
            ways: self.ways,
            line_bytes: LINE_BYTES,
            access_latency: self.access_latency,
        }
    }

    /// Validates the geometry. A disabled slice is always valid.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the slice is enabled with a degenerate
    /// geometry.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.enabled {
            return Ok(());
        }
        self.cache_config().validate("llc")
    }
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig::disabled()
    }
}

/// Full machine description: Table I of the paper as a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores. Must be an exact multiple of `cores_per_node`.
    pub num_cores: u32,
    /// Cores per NUMA node / affinity domain. The paper's Table I machine
    /// has one core per node; scaled configurations host several cores on
    /// each node, sharing its router, directory and DRAM channel.
    #[serde(default)]
    pub cores_per_node: CoresPerNode,
    /// Core frequency in GHz (only used for reporting; the model works in
    /// nanoseconds).
    pub frequency_ghz: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private, exclusive L2 cache.
    pub l2: CacheConfig,
    /// Per-node sparse directory (probe filter).
    pub probe_filter: ProbeFilterConfig,
    /// Per-node DRAM slice.
    pub dram: DramConfig,
    /// On-chip network.
    pub noc: NocConfig,
    /// Per-core miss-batching window (MSHR model) of the sharded kernel.
    /// Defaults for documents that predate the knob.
    #[serde(default)]
    pub miss_window: MissWindowConfig,
    /// Optional shared per-node LLC slice. Defaults to disabled for
    /// documents that predate the level.
    #[serde(default)]
    pub llc: LlcConfig,
}

impl MachineConfig {
    /// The configuration of Table I in the DATE 2014 paper: 16 cores at
    /// 2 GHz, 32 kB 4-way L1I/L1D, 256 kB 4-way exclusive L2, a probe filter
    /// tracking 512 kB of cached data, 128 MB DRAM per node at 60 ns, and a
    /// 4x4 mesh with 10 ns links.
    ///
    /// # Examples
    ///
    /// ```
    /// use allarm_types::config::MachineConfig;
    /// let m = MachineConfig::date2014();
    /// assert_eq!(m.l2.size_bytes, 256 * 1024);
    /// assert_eq!(m.probe_filter.coverage_bytes, 512 * 1024);
    /// assert_eq!(m.dram.access_latency.as_u64(), 60);
    /// ```
    pub fn date2014() -> Self {
        MachineConfig {
            num_cores: 16,
            cores_per_node: CoresPerNode::default(),
            frequency_ghz: 2,
            l1i: CacheConfig::new(32 * 1024, 4, 1),
            l1d: CacheConfig::new(32 * 1024, 4, 1),
            l2: CacheConfig::new(256 * 1024, 4, 1),
            probe_filter: ProbeFilterConfig::new(512 * 1024, 8),
            dram: DramConfig::new(128 * 1024 * 1024, 60),
            noc: NocConfig::mesh(4, 4),
            miss_window: MissWindowConfig::default(),
            llc: LlcConfig::default(),
        }
    }

    /// The scaled machine the >16-core experiments use: 64 cores on the
    /// Table I substrate, four cores per NUMA node, so the mesh stays 4x4
    /// (one router, directory and DRAM channel per node, shared by the
    /// node's four cores). The probe filter keeps the paper's 2x coverage
    /// ratio against the node's now-4x aggregate L2 capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// use allarm_types::config::MachineConfig;
    /// let m = MachineConfig::scale64();
    /// assert_eq!(m.num_cores, 64);
    /// assert_eq!(m.num_nodes(), 16);
    /// m.validate().unwrap();
    /// ```
    pub fn scale64() -> Self {
        MachineConfig {
            num_cores: 64,
            cores_per_node: CoresPerNode(4),
            probe_filter: ProbeFilterConfig::new(2 * 1024 * 1024, 8),
            ..MachineConfig::date2014()
        }
    }

    /// The 256-core reference machine: 64 NUMA nodes of 4 cores on an 8×8
    /// router grid, the Table I cache substrate, and the same 2× per-node
    /// probe-filter coverage ratio as [`MachineConfig::scale64`] (nodes
    /// still aggregate 4 × 256 kB of L2). The shared LLC slice stays
    /// disabled here — scenarios opt in per document with
    /// [`MachineConfig::with_llc`].
    ///
    /// # Examples
    ///
    /// ```
    /// use allarm_types::config::MachineConfig;
    /// let m = MachineConfig::scale256();
    /// assert_eq!(m.num_cores, 256);
    /// assert_eq!(m.num_nodes(), 64);
    /// m.validate().unwrap();
    /// ```
    pub fn scale256() -> Self {
        MachineConfig {
            num_cores: 256,
            cores_per_node: CoresPerNode(4),
            probe_filter: ProbeFilterConfig::new(2 * 1024 * 1024, 8),
            noc: NocConfig::mesh(8, 8),
            ..MachineConfig::date2014()
        }
    }

    /// Returns a copy with a different shared-LLC configuration.
    pub fn with_llc(mut self, llc: LlcConfig) -> Self {
        self.llc = llc;
        self
    }

    /// Returns a copy with a different network configuration. The fabric
    /// must still provide one router slot per NUMA node
    /// ([`MachineConfig::validate`] checks).
    pub fn with_noc(mut self, noc: NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// A scaled-down configuration useful for fast unit and integration
    /// tests: 4 cores in a 2x2 mesh with small caches.
    pub fn small_test() -> Self {
        MachineConfig {
            num_cores: 4,
            cores_per_node: CoresPerNode::default(),
            frequency_ghz: 2,
            l1i: CacheConfig::new(4 * 1024, 2, 1),
            l1d: CacheConfig::new(4 * 1024, 2, 1),
            l2: CacheConfig::new(16 * 1024, 4, 1),
            probe_filter: ProbeFilterConfig::new(32 * 1024, 4),
            dram: DramConfig::new(4 * 1024 * 1024, 60),
            noc: NocConfig::mesh(2, 2),
            miss_window: MissWindowConfig::default(),
            llc: LlcConfig::default(),
        }
    }

    /// Returns a copy of this configuration with a different probe-filter
    /// coverage, used by the probe-filter-size sweeps of Fig. 3h and Fig. 4.
    pub fn with_probe_filter_coverage(mut self, coverage_bytes: u64) -> Self {
        self.probe_filter = self.probe_filter.with_coverage(coverage_bytes);
        self
    }

    /// Number of NUMA nodes (`num_cores / cores_per_node`).
    pub fn num_nodes(&self) -> u32 {
        self.num_cores / self.cores_per_node.get().max(1)
    }

    /// The core ↔ node topology of this machine.
    ///
    /// # Panics
    ///
    /// Panics on a zero-core or zero-cores-per-node configuration; validate
    /// explicitly with [`MachineConfig::validate`] to get an error instead.
    pub fn topology(&self) -> Topology {
        Topology::new(self.num_nodes(), self.cores_per_node.get())
    }

    /// Validates every component of the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found, or an error if the mesh does
    /// not have exactly one router per NUMA node.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::new("num_cores", "must be non-zero"));
        }
        if self.cores_per_node.get() == 0 {
            return Err(ConfigError::new("cores_per_node", "must be non-zero"));
        }
        if !self.num_cores.is_multiple_of(self.cores_per_node.get()) {
            return Err(ConfigError::new(
                "cores_per_node",
                format!(
                    "{} cores do not divide into nodes of {}",
                    self.num_cores,
                    self.cores_per_node.get()
                ),
            ));
        }
        self.l1i.validate("l1i")?;
        self.l1d.validate("l1d")?;
        self.l2.validate("l2")?;
        self.probe_filter.validate()?;
        self.dram.validate()?;
        self.noc.validate()?;
        self.miss_window.validate()?;
        self.llc.validate()?;
        if self.noc.num_nodes() != self.num_nodes() {
            return Err(ConfigError::new(
                "noc.mesh",
                format!(
                    "fabric connects {} nodes but the machine has {} \
                     ({} cores / {} per node)",
                    self.noc.num_nodes(),
                    self.num_nodes(),
                    self.num_cores,
                    self.cores_per_node.get()
                ),
            ));
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::date2014()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date2014_matches_table1() {
        let m = MachineConfig::date2014();
        assert_eq!(m.num_cores, 16);
        assert_eq!(m.frequency_ghz, 2);
        assert_eq!(m.l1i.size_bytes, 32 * 1024);
        assert_eq!(m.l1d.ways, 4);
        assert_eq!(m.l2.size_bytes, 256 * 1024);
        assert_eq!(m.probe_filter.coverage_bytes, 512 * 1024);
        assert_eq!(m.dram.node_capacity_bytes, 128 * 1024 * 1024);
        assert_eq!(m.dram.access_latency, Nanos::new(60));
        assert_eq!(m.noc.mesh_x, 4);
        assert_eq!(m.noc.mesh_y, 4);
        assert_eq!(m.noc.flit_bytes, 4);
        assert_eq!(m.noc.control_msg_bytes, 8);
        assert_eq!(m.noc.data_msg_bytes, 72);
        assert_eq!(m.noc.link_latency, Nanos::new(10));
        assert_eq!(m.noc.link_bandwidth_bytes_per_ns, 8);
        m.validate().unwrap();
    }

    #[test]
    fn probe_filter_has_2x_l2_coverage() {
        let m = MachineConfig::date2014();
        assert_eq!(m.probe_filter.coverage_bytes, 2 * m.l2.size_bytes);
        assert_eq!(m.probe_filter.num_entries(), 8192);
    }

    #[test]
    fn cache_geometry_helpers() {
        let c = CacheConfig::new(256 * 1024, 4, 1);
        assert_eq!(c.num_lines(), 4096);
        assert_eq!(c.num_sets(), 1024);
    }

    #[test]
    fn small_test_config_is_valid() {
        MachineConfig::small_test().validate().unwrap();
    }

    #[test]
    fn scale64_is_16_nodes_of_4_cores() {
        let m = MachineConfig::scale64();
        m.validate().unwrap();
        assert_eq!(m.num_cores, 64);
        assert_eq!(m.cores_per_node.get(), 4);
        assert_eq!(m.num_nodes(), 16);
        assert_eq!(m.noc.num_nodes(), 16);
        // 2x coverage of the node's aggregate (4 x 256 kB) L2 capacity.
        assert_eq!(m.probe_filter.coverage_bytes, 2 * 4 * m.l2.size_bytes);
        let topo = m.topology();
        assert_eq!(topo.cores_per_node(), 4);
        assert_eq!(topo.num_cores(), 64);
    }

    #[test]
    fn cores_per_node_must_divide_num_cores() {
        let mut m = MachineConfig::date2014();
        m.cores_per_node = CoresPerNode(3);
        let err = m.validate().unwrap_err();
        assert_eq!(err.field(), "cores_per_node");
        m.cores_per_node = CoresPerNode(0);
        assert_eq!(m.validate().unwrap_err().field(), "cores_per_node");
    }

    #[test]
    fn multicore_nodes_shrink_the_mesh_requirement() {
        // 16 cores at 4 per node need a 4-router mesh, not 16.
        let mut m = MachineConfig::date2014();
        m.cores_per_node = CoresPerNode(4);
        assert_eq!(m.validate().unwrap_err().field(), "noc.mesh");
        m.noc = NocConfig::mesh(2, 2);
        m.validate().unwrap();
        assert_eq!(m.num_nodes(), 4);
    }

    #[test]
    fn cores_per_node_defaults_to_one() {
        assert_eq!(CoresPerNode::default().get(), 1);
        assert_eq!(MachineConfig::date2014().cores_per_node, CoresPerNode(1));
        assert_eq!(MachineConfig::date2014().num_nodes(), 16);
    }

    #[test]
    fn miss_window_defaults_and_validates() {
        let m = MachineConfig::date2014();
        assert_eq!(m.miss_window, MissWindowConfig::default_window());
        assert_eq!(m.miss_window.depth, 8);
        assert_eq!(m.miss_window.horizon, Nanos::new(250));
        assert_eq!(MissWindowConfig::serial().depth, 1);

        let mut m = m;
        m.miss_window.depth = 0;
        assert_eq!(m.validate().unwrap_err().field(), "miss_window.depth");
    }

    #[test]
    fn invalid_cache_geometry_is_rejected() {
        let mut c = CacheConfig::new(1000, 3, 1);
        assert!(c.validate("l2").is_err());
        c.size_bytes = 0;
        assert!(c.validate("l2").is_err());
        let c = CacheConfig {
            ways: 0,
            ..CacheConfig::new(1024, 4, 1)
        };
        assert!(c.validate("l2").is_err());
    }

    #[test]
    fn zero_set_geometry_is_rejected() {
        // 128 bytes = 2 lines, but 4 ways: num_sets would be 0 and every
        // set-index computation would divide by zero.
        let c = CacheConfig::new(128, 4, 1);
        assert_eq!(c.num_sets(), 0);
        let err = c.validate("l1d").unwrap_err();
        assert_eq!(err.field(), "l1d.ways");

        // Same degenerate shape for the probe filter: 2 entries, 4 ways.
        let pf = ProbeFilterConfig::new(2 * 64, 4);
        assert_eq!(pf.num_sets(), 0);
        let err = pf.validate().unwrap_err();
        assert_eq!(err.field(), "probe_filter.ways");
    }

    #[test]
    fn non_power_of_two_line_bytes_is_rejected() {
        let c = CacheConfig {
            line_bytes: 96,
            ..CacheConfig::new(96 * 4 * 4, 4, 1)
        };
        let err = c.validate("l2").unwrap_err();
        assert_eq!(err.field(), "l2.line_bytes");
        assert!(err.reason().contains("power of two"));
    }

    #[test]
    fn mismatched_mesh_is_rejected() {
        let mut m = MachineConfig::date2014();
        m.num_cores = 15;
        let err = m.validate().unwrap_err();
        assert_eq!(err.field(), "noc.mesh");
    }

    #[test]
    fn with_probe_filter_coverage_changes_only_coverage() {
        let m = MachineConfig::date2014().with_probe_filter_coverage(128 * 1024);
        assert_eq!(m.probe_filter.coverage_bytes, 128 * 1024);
        assert_eq!(m.probe_filter.ways, 8);
        assert_eq!(m.l2.size_bytes, 256 * 1024);
    }

    #[test]
    fn zero_dram_rejected() {
        let d = DramConfig::new(0, 60);
        assert!(d.validate().is_err());
        assert_eq!(
            DramConfig::new(128 * 1024 * 1024, 60).pages_per_node(),
            32768
        );
    }

    #[test]
    fn noc_validation_catches_zero_fields() {
        let mut n = NocConfig::mesh(4, 4);
        n.flit_bytes = 0;
        assert!(n.validate().is_err());
        let mut n = NocConfig::mesh(0, 4);
        assert!(n.validate().is_err());
        n = NocConfig::mesh(4, 4);
        n.link_bandwidth_bytes_per_ns = 0;
        assert!(n.validate().is_err());
    }

    #[test]
    fn zero_mesh_dimension_is_a_typed_error_not_a_panic() {
        let err = NocConfig::mesh(0, 4).validate().unwrap_err();
        assert_eq!(err.field(), "noc.mesh");
        assert!(err.reason().contains("non-zero"));
        let err = NocConfig::torus(4, 0).validate().unwrap_err();
        assert_eq!(err.field(), "noc.mesh");
        // The same zero dimension is caught at the machine level, so a
        // scenario document loading a degenerate fabric gets the typed
        // error instead of a panic.
        let mut m = MachineConfig::date2014();
        m.noc.mesh_x = 0;
        assert_eq!(m.validate().unwrap_err().field(), "noc.mesh");
    }

    #[test]
    fn fabric_defaults_and_constructors() {
        let n = NocConfig::mesh(4, 4);
        assert_eq!(n.fabric, FabricKind::Mesh);
        assert_eq!(n.concentration.get(), 1);
        assert_eq!(n.num_nodes(), 16);

        let t = NocConfig::torus(8, 8);
        assert_eq!(t.fabric, FabricKind::Torus);
        assert_eq!(t.num_nodes(), 64);
        t.validate().unwrap();

        let c = NocConfig::cmesh(4, 4, 4);
        assert_eq!(c.fabric, FabricKind::CMesh);
        assert_eq!(c.num_nodes(), 64);
        c.validate().unwrap();
    }

    #[test]
    fn concentration_requires_cmesh() {
        let mut n = NocConfig::mesh(4, 4);
        n.concentration = Concentration(4);
        let err = n.validate().unwrap_err();
        assert_eq!(err.field(), "noc.concentration");
        n.fabric = FabricKind::CMesh;
        n.validate().unwrap();
        n.concentration = Concentration(0);
        assert!(n.validate().is_err());
    }

    #[test]
    fn scale256_is_64_nodes_of_4_cores_on_an_8x8_grid() {
        let m = MachineConfig::scale256();
        m.validate().unwrap();
        assert_eq!(m.num_cores, 256);
        assert_eq!(m.cores_per_node.get(), 4);
        assert_eq!(m.num_nodes(), 64);
        assert_eq!((m.noc.mesh_x, m.noc.mesh_y), (8, 8));
        // Same 2x coverage of the node's aggregate L2 as scale64.
        assert_eq!(m.probe_filter.coverage_bytes, 2 * 4 * m.l2.size_bytes);
        assert!(!m.llc.enabled);
        // Non-mesh fabrics slot in per document.
        let t = m.with_noc(NocConfig::torus(8, 8));
        t.validate().unwrap();
        let c = m.with_noc(NocConfig::cmesh(4, 4, 4));
        c.validate().unwrap();
    }

    #[test]
    fn llc_defaults_disabled_and_validates_when_enabled() {
        let m = MachineConfig::date2014();
        assert!(!m.llc.enabled);
        m.llc.validate().unwrap();

        let m = m.with_llc(LlcConfig::shared_slice(1024 * 1024, 16));
        assert!(m.llc.enabled);
        m.validate().unwrap();
        assert_eq!(m.llc.cache_config().num_sets(), 1024);

        // A degenerate enabled geometry is rejected; the same geometry
        // disabled is ignored.
        let mut bad = LlcConfig::shared_slice(0, 16);
        assert_eq!(bad.validate().unwrap_err().field(), "llc.size_bytes");
        bad.enabled = false;
        bad.validate().unwrap();
    }

    #[test]
    fn default_is_date2014() {
        assert_eq!(MachineConfig::default(), MachineConfig::date2014());
    }

    #[test]
    fn sharer_tracking_default_is_vector() {
        assert_eq!(SharerTracking::default(), SharerTracking::SharerVector);
    }

    #[test]
    fn config_serializes_roundtrip() {
        let m = MachineConfig::date2014();
        let json = serde_json_like(&m);
        assert!(json.contains("probe_filter"));
    }

    /// Poor-man's serialization smoke test without depending on serde_json:
    /// uses the `Debug` representation, which is enough to confirm the derive
    /// compiles and fields are present.
    fn serde_json_like(m: &MachineConfig) -> String {
        format!("{m:?}")
    }
}

//! Address newtypes: virtual addresses, physical addresses, cache-line and
//! page granularities.
//!
//! The simulator is trace driven: workloads emit virtual addresses, the NUMA
//! allocator translates them to physical addresses at page granularity, and
//! the cache and directory models operate on physical cache-line addresses.
//! Keeping the four granularities as distinct types prevents an entire class
//! of "passed a byte address where a line address was expected" bugs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a cache line in bytes (64 B, Table I of the paper).
pub const LINE_BYTES: u64 = 64;

/// Size of a virtual-memory page in bytes (4 KiB, the x86 small page used by
/// the Linux first-touch allocator in the paper's setup).
pub const PAGE_BYTES: u64 = 4096;

/// Number of cache lines per page.
pub const LINES_PER_PAGE: u64 = PAGE_BYTES / LINE_BYTES;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an address from a raw value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(value: u64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for u64 {
            fn from(value: $name) -> Self {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype!(
    /// A byte-granularity virtual address issued by a workload thread.
    VirtAddr
);

addr_newtype!(
    /// A byte-granularity physical address produced by the NUMA allocator.
    PhysAddr
);

addr_newtype!(
    /// A physical cache-line address (the physical address divided by
    /// [`LINE_BYTES`]). This is the unit tracked by caches and probe filters.
    LineAddr
);

addr_newtype!(
    /// A page number (virtual or physical depending on context; the value is
    /// the byte address divided by [`PAGE_BYTES`]).
    PageAddr
);

impl VirtAddr {
    /// Returns the virtual page containing this address.
    ///
    /// # Examples
    ///
    /// ```
    /// use allarm_types::addr::{VirtAddr, PageAddr};
    /// assert_eq!(VirtAddr::new(4096 * 3 + 5).page(), PageAddr::new(3));
    /// ```
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Returns the byte offset of this address within its page.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }
}

impl PhysAddr {
    /// Returns the physical cache line containing this address.
    ///
    /// # Examples
    ///
    /// ```
    /// use allarm_types::addr::{PhysAddr, LineAddr};
    /// assert_eq!(PhysAddr::new(64 * 10 + 3).line(), LineAddr::new(10));
    /// ```
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Returns the physical page containing this address.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }

    /// Returns the byte offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }
}

impl LineAddr {
    /// Returns the physical page containing this cache line.
    pub const fn page(self) -> PageAddr {
        PageAddr(self.0 / LINES_PER_PAGE)
    }

    /// Returns the byte address of the first byte of this line.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 * LINE_BYTES)
    }

    /// Returns the index of this line within its page (0..[`LINES_PER_PAGE`]).
    pub const fn index_in_page(self) -> u64 {
        self.0 % LINES_PER_PAGE
    }
}

impl PageAddr {
    /// Returns the byte address of the first byte of this page.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_BYTES)
    }

    /// Returns the first cache line of this page.
    pub const fn first_line(self) -> LineAddr {
        LineAddr(self.0 * LINES_PER_PAGE)
    }

    /// Returns the `i`-th cache line of this page.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LINES_PER_PAGE`.
    pub fn line(self, i: u64) -> LineAddr {
        assert!(
            i < LINES_PER_PAGE,
            "line index {i} out of range for a {PAGE_BYTES}-byte page"
        );
        LineAddr(self.0 * LINES_PER_PAGE + i)
    }

    /// Iterates over every cache line of this page.
    pub fn lines(self) -> impl Iterator<Item = LineAddr> {
        let first = self.0 * LINES_PER_PAGE;
        (first..first + LINES_PER_PAGE).map(LineAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(LINES_PER_PAGE * LINE_BYTES, PAGE_BYTES);
    }

    #[test]
    fn virt_addr_page_and_offset() {
        let va = VirtAddr::new(3 * PAGE_BYTES + 100);
        assert_eq!(va.page(), PageAddr::new(3));
        assert_eq!(va.page_offset(), 100);
    }

    #[test]
    fn phys_addr_line_page_offsets() {
        let pa = PhysAddr::new(2 * PAGE_BYTES + 5 * LINE_BYTES + 7);
        assert_eq!(pa.page(), PageAddr::new(2));
        assert_eq!(pa.line(), LineAddr::new(2 * LINES_PER_PAGE + 5));
        assert_eq!(pa.line_offset(), 7);
    }

    #[test]
    fn line_addr_roundtrips() {
        let line = LineAddr::new(1234);
        assert_eq!(line.base_addr().line(), line);
        assert_eq!(line.page(), PageAddr::new(1234 / LINES_PER_PAGE));
        assert_eq!(line.index_in_page(), 1234 % LINES_PER_PAGE);
    }

    #[test]
    fn page_lines_cover_whole_page() {
        let page = PageAddr::new(9);
        let lines: Vec<LineAddr> = page.lines().collect();
        assert_eq!(lines.len(), LINES_PER_PAGE as usize);
        assert_eq!(lines[0], page.first_line());
        assert_eq!(lines[0].page(), page);
        assert_eq!(lines.last().copied().map(|l| l.page()), Some(page));
        assert_eq!(page.line(5), lines[5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_line_out_of_range_panics() {
        let _ = PageAddr::new(0).line(LINES_PER_PAGE);
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
        assert_eq!(format!("{:X}", PhysAddr::new(255)), "FF");
        assert_eq!(PhysAddr::new(255).to_string(), "0xff");
    }

    #[test]
    fn raw_conversions() {
        assert_eq!(u64::from(LineAddr::new(42)), 42);
        assert_eq!(LineAddr::from(42u64), LineAddr::new(42));
        assert_eq!(LineAddr::new(42).raw(), 42);
    }
}

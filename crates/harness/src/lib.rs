//! A minimal grouped benchmark harness.
//!
//! The workspace builds offline, so criterion is unavailable; this crate
//! provides the small subset the ALLARM benches need, in the grouped style
//! of iai/criterion harnesses: named groups of named benchmarks, warm-up,
//! adaptive iteration counts, and median-of-samples reporting. Bench targets
//! opt out of libtest with `harness = false` and call [`benchmark_main!`].
//!
//! # Examples
//!
//! ```
//! use allarm_harness::{black_box, Group};
//!
//! fn fib(n: u64) -> u64 { (1..=n).product() }
//!
//! let mut group = Group::new("math").sample_count(5).min_duration_ms(1);
//! group.bench("fib20", || { black_box(fib(black_box(20))); });
//! group.finish();
//! ```

use std::hint;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A named collection of benchmarks, printed as one block.
#[derive(Debug)]
pub struct Group {
    name: String,
    filter: Option<String>,
    sample_count: usize,
    min_duration: Duration,
    min_iters: u64,
    printed_header: bool,
}

impl Group {
    /// Creates a group, reading the benchmark filter from the command line
    /// (the first non-flag argument, as `cargo bench -- <filter>` passes it).
    pub fn new(name: impl Into<String>) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Group {
            name: name.into(),
            filter,
            sample_count: 10,
            min_duration: Duration::from_millis(20),
            min_iters: 1,
            printed_header: false,
        }
    }

    /// Overrides the number of timed samples per benchmark (default 10).
    pub fn sample_count(mut self, samples: usize) -> Self {
        self.sample_count = samples.max(1);
        self
    }

    /// Overrides the minimum wall-clock time per sample (default 20 ms); the
    /// iteration count adapts until one sample takes at least this long.
    pub fn min_duration_ms(mut self, ms: u64) -> Self {
        self.min_duration = Duration::from_millis(ms);
        self
    }

    /// Sets a floor on iterations per timed sample (default 1). The
    /// adaptive warm-up stops growing the count as soon as one sample
    /// clears [`Group::min_duration_ms`], so a benchmark whose single
    /// iteration already takes that long is sampled at `iters = 1` and
    /// every scheduling hiccup lands in exactly one sample. A floor of a
    /// few iterations averages that noise away for such benchmarks.
    pub fn min_iters(mut self, iters: u64) -> Self {
        self.min_iters = iters.max(1);
        self
    }

    /// Runs one benchmark: calls `f` repeatedly and reports the median
    /// per-iteration time over the samples. Returns the measured numbers
    /// (`None` when the command-line filter skipped the benchmark), so a
    /// bench target can also persist a machine-readable record — see
    /// [`stats_to_json`].
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) -> Option<BenchStats> {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return None;
            }
        }
        if !self.printed_header {
            println!("# group {}", self.name);
            self.printed_header = true;
        }

        // Warm up and find an iteration count where one sample is long
        // enough to time reliably, never dropping below the caller's floor.
        let mut iters = self.min_iters;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= self.min_duration || iters >= 1 << 30 {
                break;
            }
            // Aim straight for the target with 2x headroom.
            let target = self.min_duration.as_nanos().max(1);
            let per_iter = (elapsed.as_nanos() / u128::from(iters)).max(1);
            iters = ((2 * target / per_iter) as u64).clamp(iters + 1, 1 << 30);
        }

        let mut samples: Vec<u128> = (0..self.sample_count)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                start.elapsed().as_nanos() / u128::from(iters)
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{full:<50} {:>12}/iter  (min {}, max {}, {iters} iters x {} samples)",
            format_ns(median),
            format_ns(min),
            format_ns(max),
            self.sample_count,
        );
        Some(BenchStats {
            group: self.name.clone(),
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
            iters,
            samples: self.sample_count,
        })
    }

    /// Ends the group (prints a trailing newline if anything ran).
    pub fn finish(self) {
        if self.printed_header {
            println!();
        }
    }
}

/// One benchmark's measured numbers, as returned by [`Group::bench`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchStats {
    /// The group the benchmark ran in.
    pub group: String,
    /// The benchmark's name within its group.
    pub name: String,
    /// Median per-iteration time across the samples, nanoseconds.
    pub median_ns: u128,
    /// Fastest sample's per-iteration time, nanoseconds.
    pub min_ns: u128,
    /// Slowest sample's per-iteration time, nanoseconds.
    pub max_ns: u128,
    /// Iterations per timed sample (adapted during warm-up).
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Renders a bench run as a small JSON document (hand-formatted — the
/// harness has no serializer dependency), for committing performance
/// trajectories alongside the code:
///
/// ```json
/// {"bench": "...", "unit": "ns_per_iter", "results": [{"group": ...}]}
/// ```
///
/// Group and benchmark names are emitted verbatim, so keep them to the
/// usual identifier characters (every workspace bench does).
pub fn stats_to_json(bench: &str, stats: &[BenchStats]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"bench\": \"{bench}\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n"
    ));
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \
             \"max_ns\": {}, \"iters\": {}, \"samples\": {}}}{}\n",
            s.group,
            s.name,
            s.median_ns,
            s.min_ns,
            s.max_ns,
            s.iters,
            s.samples,
            if i + 1 < stats.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares the `main` function of a `harness = false` bench target: each
/// argument is a `fn()` that builds, runs and finishes its [`Group`]s.
#[macro_export]
macro_rules! benchmark_main {
    ($($group_fn:path),+ $(,)?) => {
        fn main() {
            $( $group_fn(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut group = Group::new("selftest").sample_count(3).min_duration_ms(1);
        let mut count = 0u64;
        let stats = group
            .bench("counter", || {
                count = black_box(count.wrapping_add(1));
            })
            .expect("unfiltered benchmarks report stats");
        group.finish();
        assert!(count > 0, "benchmark closure must have run");
        assert_eq!(
            (stats.group.as_str(), stats.name.as_str()),
            ("selftest", "counter")
        );
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert_eq!(stats.samples, 3);
    }

    #[test]
    fn min_iters_floors_the_adaptive_count() {
        // One iteration already clears the 0 ms duration target, so without
        // the floor the warm-up would settle at iters = 1.
        let mut group = Group::new("selftest")
            .sample_count(2)
            .min_duration_ms(0)
            .min_iters(5);
        let stats = group
            .bench("floored", || {
                black_box(std::hint::black_box(1u64) + 1);
            })
            .expect("unfiltered benchmarks report stats");
        group.finish();
        assert!(stats.iters >= 5, "floor ignored: {} iters", stats.iters);
    }

    #[test]
    fn stats_render_as_json() {
        let stats = vec![
            BenchStats {
                group: "g".into(),
                name: "a".into(),
                median_ns: 10,
                min_ns: 9,
                max_ns: 11,
                iters: 4,
                samples: 3,
            },
            BenchStats {
                group: "g".into(),
                name: "b".into(),
                median_ns: 20,
                min_ns: 20,
                max_ns: 21,
                iters: 2,
                samples: 3,
            },
        ];
        let json = stats_to_json("trajectory", &stats);
        assert!(json.contains("\"bench\": \"trajectory\""), "{json}");
        assert!(
            json.contains("\"name\": \"a\", \"median_ns\": 10"),
            "{json}"
        );
        // The two records are comma-separated, the list is terminated.
        assert_eq!(json.matches("{\"group\"").count(), 2);
        assert!(json.trim_end().ends_with("]\n}"), "{json}");
    }

    #[test]
    fn format_is_humane() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.500 us");
        assert_eq!(format_ns(2_500_000), "2.500 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }
}

//! Per-node DRAM timing and access accounting.

use allarm_types::config::DramConfig;
use allarm_types::ids::NodeId;
use allarm_types::stats::Counter;
use allarm_types::Nanos;

/// Access counters for one node's DRAM slice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of line reads served by this node's DRAM.
    pub reads: Counter,
    /// Number of line writebacks absorbed by this node's DRAM.
    pub writes: Counter,
}

impl DramStats {
    /// Total number of DRAM accesses.
    pub fn total(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }
}

/// Timing and accounting model for the per-node DRAM slices.
///
/// The model is deliberately simple — a fixed access latency per request, as
/// in Table I — because the paper's mechanism depends only on DRAM being
/// much slower than the on-die probe of the local cache (60 ns vs ~1 ns),
/// not on detailed DRAM behaviour.
///
/// # Examples
///
/// ```
/// use allarm_mem::DramModel;
/// use allarm_types::{config::DramConfig, ids::NodeId, Nanos};
///
/// let mut dram = DramModel::new(2, DramConfig::new(1 << 20, 60));
/// assert_eq!(dram.read(NodeId::new(0)), Nanos::new(60));
/// assert_eq!(dram.stats(NodeId::new(0)).reads.get(), 1);
/// assert_eq!(dram.total_accesses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    per_node: Vec<DramStats>,
}

impl DramModel {
    /// Creates a DRAM model with one slice per node.
    pub fn new(num_nodes: usize, config: DramConfig) -> Self {
        DramModel {
            config,
            per_node: vec![DramStats::default(); num_nodes],
        }
    }

    /// The configuration the model was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Performs a line read at `node`'s DRAM, returning its latency.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn read(&mut self, node: NodeId) -> Nanos {
        self.per_node[node.index()].reads.incr();
        self.config.access_latency
    }

    /// Absorbs a line writeback at `node`'s DRAM, returning its latency.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn write(&mut self, node: NodeId) -> Nanos {
        self.per_node[node.index()].writes.incr();
        self.config.access_latency
    }

    /// The access latency charged per request.
    pub fn access_latency(&self) -> Nanos {
        self.config.access_latency
    }

    /// Per-node statistics.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn stats(&self, node: NodeId) -> &DramStats {
        &self.per_node[node.index()]
    }

    /// Sum of reads and writes across every node.
    pub fn total_accesses(&self) -> u64 {
        self.per_node.iter().map(|s| s.total()).sum()
    }

    /// Total number of reads across every node.
    pub fn total_reads(&self) -> u64 {
        self.per_node.iter().map(|s| s.reads.get()).sum()
    }

    /// Total number of writebacks across every node.
    pub fn total_writes(&self) -> u64 {
        self.per_node.iter().map(|s| s.writes.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(4, DramConfig::new(1 << 20, 60))
    }

    #[test]
    fn read_and_write_charge_configured_latency() {
        let mut dram = model();
        assert_eq!(dram.read(NodeId::new(1)), Nanos::new(60));
        assert_eq!(dram.write(NodeId::new(1)), Nanos::new(60));
        assert_eq!(dram.access_latency(), Nanos::new(60));
    }

    #[test]
    fn stats_are_per_node() {
        let mut dram = model();
        dram.read(NodeId::new(0));
        dram.read(NodeId::new(0));
        dram.write(NodeId::new(3));
        assert_eq!(dram.stats(NodeId::new(0)).reads.get(), 2);
        assert_eq!(dram.stats(NodeId::new(0)).writes.get(), 0);
        assert_eq!(dram.stats(NodeId::new(3)).writes.get(), 1);
        assert_eq!(dram.stats(NodeId::new(1)).total(), 0);
    }

    #[test]
    fn totals_aggregate_all_nodes() {
        let mut dram = model();
        dram.read(NodeId::new(0));
        dram.read(NodeId::new(1));
        dram.write(NodeId::new(2));
        assert_eq!(dram.total_reads(), 2);
        assert_eq!(dram.total_writes(), 1);
        assert_eq!(dram.total_accesses(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_panics() {
        let mut dram = model();
        dram.read(NodeId::new(9));
    }

    #[test]
    fn config_accessor_returns_configuration() {
        let dram = model();
        assert_eq!(dram.config().access_latency, Nanos::new(60));
    }
}

//! Page-granularity NUMA allocation with first-touch / next-touch semantics.

use crate::policy::NumaPolicy;
use allarm_types::addr::{LineAddr, PageAddr, PhysAddr, VirtAddr, PAGE_BYTES};
use allarm_types::config::DramConfig;
use allarm_types::ids::NodeId;
use allarm_types::stats::Counter;
use std::collections::HashMap;

/// The result of translating a virtual address: the physical frame backing
/// its page and the NUMA node that frame lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Physical page number.
    pub phys_page: PageAddr,
    /// Home node of the page (the node whose memory controller and directory
    /// own every line of the page).
    pub home: NodeId,
    /// True if this translation allocated the page (i.e. this was the first
    /// touch).
    pub newly_allocated: bool,
}

impl Frame {
    /// Physical address of `vaddr` within this frame.
    pub fn phys_addr(&self, vaddr: VirtAddr) -> PhysAddr {
        PhysAddr::new(self.phys_page.raw() * PAGE_BYTES + vaddr.page_offset())
    }

    /// Physical cache line containing `vaddr`.
    pub fn line(&self, vaddr: VirtAddr) -> LineAddr {
        self.phys_addr(vaddr).line()
    }
}

/// Allocation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NumaStats {
    /// Pages allocated on the toucher's preferred node.
    pub local_allocations: Counter,
    /// Pages that had to spill to a different node because the preferred
    /// node's DRAM slice was full (the best-effort failure mode the paper
    /// mentions in Section II-A).
    pub spilled_allocations: Counter,
    /// Pages re-homed by the next-touch policy.
    pub rehomed_pages: Counter,
}

/// Page-granularity NUMA memory allocator.
///
/// Pages are homed according to a [`NumaPolicy`]; physical page numbers
/// encode their home node (`node * pages_per_node + slot`), so any component
/// can recover the home node of a physical line with [`NumaAllocator::home_of_line`]
/// without consulting the page table again — exactly the role the real
/// machine's memory-controller address decoding plays.
///
/// # Examples
///
/// ```
/// use allarm_mem::{NumaAllocator, NumaPolicy};
/// use allarm_types::{config::DramConfig, ids::NodeId, addr::VirtAddr};
///
/// let mut numa = NumaAllocator::new(2, DramConfig::new(1 << 20, 60), NumaPolicy::FirstTouch);
/// let frame = numa.translate(VirtAddr::new(0x42_000), NodeId::new(1));
/// assert!(frame.newly_allocated);
/// assert_eq!(numa.home_of_line(frame.line(VirtAddr::new(0x42_000))), NodeId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct NumaAllocator {
    num_nodes: usize,
    pages_per_node: u64,
    policy: NumaPolicy,
    /// Virtual page -> (physical frame, first toucher) mapping.
    page_table: HashMap<PageAddr, PageMapping>,
    /// Next free slot within each node's DRAM slice.
    next_slot: Vec<u64>,
    /// Round-robin cursor for the interleaved policy and for spill placement.
    round_robin: usize,
    stats: NumaStats,
}

#[derive(Debug, Clone, Copy)]
struct PageMapping {
    phys_page: PageAddr,
    home: NodeId,
    first_toucher: NodeId,
    touches: u32,
}

/// One mapped virtual page of a checkpointed [`NumaAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntryState {
    /// The virtual page.
    pub vpage: PageAddr,
    /// The physical frame backing it.
    pub phys_page: PageAddr,
    /// The page's home node.
    pub home: NodeId,
    /// The node that first touched the page (drives next-touch).
    pub first_toucher: NodeId,
    /// Touch count (next-touch arms while this is 1).
    pub touches: u32,
}

/// The complete dynamic state of a [`NumaAllocator`], as captured by
/// [`NumaAllocator::export_state`]. Canonical: pages sorted by virtual page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaAllocatorState {
    /// Every mapped page, sorted by virtual page number.
    pub pages: Vec<PageEntryState>,
    /// Next free slot within each node's DRAM slice.
    pub next_slot: Vec<u64>,
    /// Round-robin cursor (interleaved placement and spill).
    pub round_robin: u64,
    /// Allocation statistics at capture time.
    pub stats: NumaStats,
}

impl NumaAllocator {
    /// Creates an allocator for `num_nodes` nodes whose DRAM slices follow
    /// `dram`, homing pages according to `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize, dram: DramConfig, policy: NumaPolicy) -> Self {
        assert!(num_nodes > 0, "a NUMA system needs at least one node");
        NumaAllocator {
            num_nodes,
            pages_per_node: dram.pages_per_node(),
            policy,
            page_table: HashMap::new(),
            next_slot: vec![0; num_nodes],
            round_robin: 0,
            stats: NumaStats::default(),
        }
    }

    /// The placement policy in force.
    pub fn policy(&self) -> NumaPolicy {
        self.policy
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Translates a virtual address touched by a core on `toucher` into a
    /// physical frame, allocating the page according to the policy if this is
    /// its first touch.
    pub fn translate(&mut self, vaddr: VirtAddr, toucher: NodeId) -> Frame {
        let vpage = vaddr.page();
        if let Some(mapping) = self.page_table.get(&vpage).copied() {
            return self.retouch(vpage, mapping, toucher);
        }
        let preferred = self.preferred_node(toucher);
        let (phys_page, home) = self.allocate_page(preferred);
        self.page_table.insert(
            vpage,
            PageMapping {
                phys_page,
                home,
                first_toucher: toucher,
                touches: 1,
            },
        );
        Frame {
            phys_page,
            home,
            newly_allocated: true,
        }
    }

    /// Read-only translation: the frame backing `vaddr` if the page is
    /// mapped *and* no policy action is pending, `None` otherwise.
    ///
    /// `None` means the touch must go through [`NumaAllocator::translate`]
    /// (which needs `&mut self`): either the page is unmapped (a first-touch
    /// allocation), or the next-touch policy is still armed on it (the
    /// second touch may re-home the page). The sharded simulation kernel
    /// relies on this split — cores translate concurrently through `lookup`
    /// and route the rare mutating touches ("page faults") through a
    /// deterministic serial merge step.
    pub fn lookup(&self, vaddr: VirtAddr) -> Option<Frame> {
        let mapping = self.page_table.get(&vaddr.page())?;
        if self.policy == NumaPolicy::NextTouch && mapping.touches == 1 {
            // The second touch decides whether the page is re-homed, so it
            // must be a mutating touch no matter which node makes it.
            return None;
        }
        Some(Frame {
            phys_page: mapping.phys_page,
            home: mapping.home,
            newly_allocated: false,
        })
    }

    /// Returns the current mapping of a virtual page, if it has been touched.
    pub fn mapping_of(&self, vpage: PageAddr) -> Option<(PageAddr, NodeId)> {
        self.page_table.get(&vpage).map(|m| (m.phys_page, m.home))
    }

    /// Returns the home node of a physical cache line.
    ///
    /// Physical pages are laid out as `node * pages_per_node + slot`, so the
    /// home node is recovered by integer division — the same address
    /// decoding a real memory controller performs.
    pub fn home_of_line(&self, line: LineAddr) -> NodeId {
        self.home_of_page(line.page())
    }

    /// Returns the home node of a physical page.
    pub fn home_of_page(&self, page: PageAddr) -> NodeId {
        let node = (page.raw() / self.pages_per_node) as usize % self.num_nodes;
        NodeId::new(node as u16)
    }

    /// Allocation statistics.
    pub fn stats(&self) -> &NumaStats {
        &self.stats
    }

    /// Number of pages currently allocated on `node`.
    pub fn pages_on_node(&self, node: NodeId) -> u64 {
        self.next_slot[node.index()]
    }

    /// Total number of mapped virtual pages.
    pub fn mapped_pages(&self) -> usize {
        self.page_table.len()
    }

    /// Exports the complete dynamic state of the allocator for
    /// checkpointing. Page-table entries are emitted sorted by virtual page
    /// so the export is canonical (independent of `HashMap` iteration
    /// order).
    pub fn export_state(&self) -> NumaAllocatorState {
        let mut pages: Vec<PageEntryState> = self
            .page_table
            .iter()
            .map(|(&vpage, m)| PageEntryState {
                vpage,
                phys_page: m.phys_page,
                home: m.home,
                first_toucher: m.first_toucher,
                touches: m.touches,
            })
            .collect();
        pages.sort_by_key(|p| p.vpage.raw());
        NumaAllocatorState {
            pages,
            next_slot: self.next_slot.clone(),
            round_robin: self.round_robin as u64,
            stats: self.stats.clone(),
        }
    }

    /// Restores state captured with [`NumaAllocator::export_state`] onto an
    /// allocator built with the same node count and DRAM geometry.
    ///
    /// # Panics
    ///
    /// Panics if the export's node count does not match.
    pub fn restore_state(&mut self, state: &NumaAllocatorState) {
        assert_eq!(
            state.next_slot.len(),
            self.num_nodes,
            "snapshot node count does not match allocator geometry"
        );
        self.page_table = state
            .pages
            .iter()
            .map(|p| {
                (
                    p.vpage,
                    PageMapping {
                        phys_page: p.phys_page,
                        home: p.home,
                        first_toucher: p.first_toucher,
                        touches: p.touches,
                    },
                )
            })
            .collect();
        self.next_slot = state.next_slot.clone();
        self.round_robin = state.round_robin as usize;
        self.stats = state.stats.clone();
    }

    fn retouch(&mut self, vpage: PageAddr, mapping: PageMapping, toucher: NodeId) -> Frame {
        // Next-touch: the second toucher (if different from the first)
        // re-homes the page.
        if self.policy == NumaPolicy::NextTouch
            && mapping.touches == 1
            && toucher != mapping.first_toucher
        {
            let (phys_page, home) = self.allocate_page(toucher);
            self.stats.rehomed_pages.incr();
            let entry = self.page_table.get_mut(&vpage).expect("mapping exists");
            entry.phys_page = phys_page;
            entry.home = home;
            entry.touches += 1;
            return Frame {
                phys_page,
                home,
                newly_allocated: false,
            };
        }
        let entry = self.page_table.get_mut(&vpage).expect("mapping exists");
        entry.touches = entry.touches.saturating_add(1);
        Frame {
            phys_page: mapping.phys_page,
            home: mapping.home,
            newly_allocated: false,
        }
    }

    fn preferred_node(&mut self, toucher: NodeId) -> NodeId {
        match self.policy {
            NumaPolicy::FirstTouch | NumaPolicy::NextTouch => toucher,
            NumaPolicy::Fixed(node) => node,
            NumaPolicy::Interleaved => {
                let node = NodeId::new((self.round_robin % self.num_nodes) as u16);
                self.round_robin += 1;
                node
            }
        }
    }

    /// Allocates a physical page, preferring `preferred` but spilling to the
    /// next node with free capacity when the preferred slice is full.
    fn allocate_page(&mut self, preferred: NodeId) -> (PageAddr, NodeId) {
        for offset in 0..self.num_nodes {
            let candidate = (preferred.index() + offset) % self.num_nodes;
            if self.next_slot[candidate] < self.pages_per_node {
                let slot = self.next_slot[candidate];
                self.next_slot[candidate] += 1;
                if offset == 0 {
                    self.stats.local_allocations.incr();
                } else {
                    self.stats.spilled_allocations.incr();
                }
                let phys_page = PageAddr::new(candidate as u64 * self.pages_per_node + slot);
                return (phys_page, NodeId::new(candidate as u16));
            }
        }
        panic!(
            "physical memory exhausted: all {} nodes are full",
            self.num_nodes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dram() -> DramConfig {
        // 4 pages per node.
        DramConfig::new(4 * PAGE_BYTES, 60)
    }

    #[test]
    fn first_touch_homes_on_toucher() {
        let mut numa = NumaAllocator::new(4, small_dram(), NumaPolicy::FirstTouch);
        let f = numa.translate(VirtAddr::new(0x5000), NodeId::new(3));
        assert_eq!(f.home, NodeId::new(3));
        assert!(f.newly_allocated);
        // Subsequent touches from other nodes keep the mapping.
        let g = numa.translate(VirtAddr::new(0x5fff), NodeId::new(0));
        assert_eq!(g.home, NodeId::new(3));
        assert!(!g.newly_allocated);
        assert_eq!(g.phys_page, f.phys_page);
    }

    #[test]
    fn distinct_virtual_pages_get_distinct_frames() {
        let mut numa = NumaAllocator::new(2, small_dram(), NumaPolicy::FirstTouch);
        let a = numa.translate(VirtAddr::new(0), NodeId::new(0));
        let b = numa.translate(VirtAddr::new(PAGE_BYTES), NodeId::new(0));
        assert_ne!(a.phys_page, b.phys_page);
        assert_eq!(numa.mapped_pages(), 2);
        assert_eq!(numa.pages_on_node(NodeId::new(0)), 2);
    }

    #[test]
    fn home_of_line_recovers_node_from_phys_layout() {
        let mut numa = NumaAllocator::new(4, small_dram(), NumaPolicy::FirstTouch);
        for node in 0..4u16 {
            let vaddr = VirtAddr::new(u64::from(node) * PAGE_BYTES * 16);
            let f = numa.translate(vaddr, NodeId::new(node));
            assert_eq!(numa.home_of_line(f.line(vaddr)), NodeId::new(node));
            assert_eq!(numa.home_of_page(f.phys_page), NodeId::new(node));
        }
    }

    #[test]
    fn spills_to_other_node_when_full() {
        // 4 pages per node; allocate 5 pages from node 0.
        let mut numa = NumaAllocator::new(2, small_dram(), NumaPolicy::FirstTouch);
        for i in 0..5u64 {
            numa.translate(VirtAddr::new(i * PAGE_BYTES), NodeId::new(0));
        }
        assert_eq!(numa.stats().local_allocations.get(), 4);
        assert_eq!(numa.stats().spilled_allocations.get(), 1);
        assert_eq!(numa.pages_on_node(NodeId::new(0)), 4);
        assert_eq!(numa.pages_on_node(NodeId::new(1)), 1);
    }

    #[test]
    #[should_panic(expected = "physical memory exhausted")]
    fn exhausting_all_nodes_panics() {
        let mut numa = NumaAllocator::new(1, small_dram(), NumaPolicy::FirstTouch);
        for i in 0..5u64 {
            numa.translate(VirtAddr::new(i * PAGE_BYTES), NodeId::new(0));
        }
    }

    #[test]
    fn interleaved_round_robins() {
        let mut numa = NumaAllocator::new(4, small_dram(), NumaPolicy::Interleaved);
        let homes: Vec<NodeId> = (0..4u64)
            .map(|i| {
                numa.translate(VirtAddr::new(i * PAGE_BYTES), NodeId::new(0))
                    .home
            })
            .collect();
        assert_eq!(
            homes,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn fixed_policy_homes_everything_on_one_node() {
        let mut numa = NumaAllocator::new(4, small_dram(), NumaPolicy::Fixed(NodeId::new(2)));
        for i in 0..3u64 {
            let f = numa.translate(VirtAddr::new(i * PAGE_BYTES), NodeId::new(i as u16));
            assert_eq!(f.home, NodeId::new(2));
        }
    }

    #[test]
    fn next_touch_rehomes_on_second_distinct_toucher() {
        let mut numa = NumaAllocator::new(4, small_dram(), NumaPolicy::NextTouch);
        // Thread 0 initialises the page...
        let f = numa.translate(VirtAddr::new(0x9000), NodeId::new(0));
        assert_eq!(f.home, NodeId::new(0));
        // ...thread 2 is the real user: the page moves to node 2.
        let g = numa.translate(VirtAddr::new(0x9000), NodeId::new(2));
        assert_eq!(g.home, NodeId::new(2));
        assert_eq!(numa.stats().rehomed_pages.get(), 1);
        // Further touches keep the new home.
        let h = numa.translate(VirtAddr::new(0x9000), NodeId::new(0));
        assert_eq!(h.home, NodeId::new(2));
    }

    #[test]
    fn next_touch_same_toucher_does_not_rehome() {
        let mut numa = NumaAllocator::new(4, small_dram(), NumaPolicy::NextTouch);
        numa.translate(VirtAddr::new(0x9000), NodeId::new(1));
        let g = numa.translate(VirtAddr::new(0x9000), NodeId::new(1));
        assert_eq!(g.home, NodeId::new(1));
        assert_eq!(numa.stats().rehomed_pages.get(), 0);
    }

    #[test]
    fn frame_phys_addr_preserves_offset() {
        let mut numa = NumaAllocator::new(2, small_dram(), NumaPolicy::FirstTouch);
        let vaddr = VirtAddr::new(3 * PAGE_BYTES + 321);
        let f = numa.translate(vaddr, NodeId::new(1));
        let pa = f.phys_addr(vaddr);
        assert_eq!(pa.raw() % PAGE_BYTES, 321);
        assert_eq!(pa.page(), f.phys_page);
    }

    #[test]
    fn lookup_is_read_only_and_matches_translate() {
        let mut numa = NumaAllocator::new(2, small_dram(), NumaPolicy::FirstTouch);
        let vaddr = VirtAddr::new(0x5000);
        // Unmapped: lookup refuses, translate allocates.
        assert_eq!(numa.lookup(vaddr), None);
        let f = numa.translate(vaddr, NodeId::new(1));
        // Mapped: lookup agrees with translate (minus the allocation flag).
        let l = numa.lookup(vaddr).expect("mapped page resolves");
        assert_eq!(l.phys_page, f.phys_page);
        assert_eq!(l.home, f.home);
        assert!(!l.newly_allocated);
        assert_eq!(numa.mapped_pages(), 1);
    }

    #[test]
    fn lookup_defers_armed_next_touch_pages_to_translate() {
        let mut numa = NumaAllocator::new(4, small_dram(), NumaPolicy::NextTouch);
        let vaddr = VirtAddr::new(0x9000);
        numa.translate(vaddr, NodeId::new(0));
        // One touch so far: the re-home decision is still pending, so the
        // read-only path must refuse no matter who asks.
        assert_eq!(numa.lookup(vaddr), None);
        // The second (mutating) touch re-homes and disarms...
        let g = numa.translate(vaddr, NodeId::new(2));
        assert_eq!(g.home, NodeId::new(2));
        // ...after which lookup resolves.
        assert_eq!(numa.lookup(vaddr).map(|f| f.home), Some(NodeId::new(2)));
    }

    #[test]
    fn mapping_of_reports_translation() {
        let mut numa = NumaAllocator::new(2, small_dram(), NumaPolicy::FirstTouch);
        assert_eq!(numa.mapping_of(PageAddr::new(7)), None);
        let f = numa.translate(VirtAddr::new(7 * PAGE_BYTES), NodeId::new(1));
        assert_eq!(
            numa.mapping_of(PageAddr::new(7)),
            Some((f.phys_page, NodeId::new(1)))
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = NumaAllocator::new(0, small_dram(), NumaPolicy::FirstTouch);
    }

    #[test]
    fn policy_accessor() {
        let numa = NumaAllocator::new(2, small_dram(), NumaPolicy::Interleaved);
        assert_eq!(numa.policy(), NumaPolicy::Interleaved);
        assert_eq!(numa.num_nodes(), 2);
    }
}

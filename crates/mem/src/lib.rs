//! NUMA memory subsystem: page allocation policies, DRAM and memory
//! controllers.
//!
//! This crate is the stand-in for the Linux NUMA memory allocator and the
//! per-node memory controllers of the paper's simulated machine. It answers
//! two questions for the simulator:
//!
//! 1. *Where does a virtual page live?* — [`NumaAllocator`] implements
//!    first-touch (the Linux default the paper relies on), next-touch,
//!    interleaved and fixed-node policies at 4 KiB page granularity,
//!    including the fall-back to a remote node when the preferred node's
//!    DRAM slice is full.
//! 2. *What does it cost to fetch a line from memory?* — [`DramModel`]
//!    charges the configured access latency and counts reads/writes per
//!    node.
//!
//! # Examples
//!
//! ```
//! use allarm_mem::{NumaAllocator, NumaPolicy};
//! use allarm_types::{config::DramConfig, ids::NodeId, addr::VirtAddr};
//!
//! // 4 nodes, first-touch allocation.
//! let mut numa = NumaAllocator::new(4, DramConfig::new(1 << 20, 60), NumaPolicy::FirstTouch);
//! // Thread on node 2 touches a page first: the page is homed on node 2.
//! let frame = numa.translate(VirtAddr::new(0x1000), NodeId::new(2));
//! assert_eq!(frame.home, NodeId::new(2));
//! // Later touches from other nodes keep the existing mapping.
//! let again = numa.translate(VirtAddr::new(0x1010), NodeId::new(0));
//! assert_eq!(again.home, NodeId::new(2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allocator;
pub mod dram;
pub mod policy;

pub use allocator::{Frame, NumaAllocator, NumaAllocatorState, NumaStats, PageEntryState};
pub use dram::{DramModel, DramStats};
pub use policy::NumaPolicy;

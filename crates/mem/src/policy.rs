//! NUMA page-placement policies.

use allarm_types::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Policy deciding which node a freshly-touched virtual page is homed on.
///
/// The paper's argument rests on the Linux default, [`NumaPolicy::FirstTouch`]:
/// thread-local data is allocated on the toucher's node, so requests arriving
/// at a directory from its local core are overwhelmingly to private data.
/// The other policies exist for sensitivity experiments:
///
/// * [`NumaPolicy::NextTouch`] re-homes a page on its *second* toucher, the
///   common fix for "initialised by thread 0, used by thread i" patterns the
///   paper mentions in Section II.
/// * [`NumaPolicy::Interleaved`] round-robins pages across nodes, destroying
///   locality — a worst case for ALLARM.
/// * [`NumaPolicy::Fixed`] homes every page on one node, modelling a
///   badly-configured system where one memory controller serves everyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NumaPolicy {
    /// Home a page on the node of the first core that touches it (Linux
    /// default; the policy ALLARM is designed around).
    #[default]
    FirstTouch,
    /// Home a page on the node of the *second* core that touches it; the
    /// first touch (typically an initialising thread) only records a
    /// provisional mapping.
    NextTouch,
    /// Round-robin pages across all nodes regardless of who touches them.
    Interleaved,
    /// Home every page on the given node.
    Fixed(NodeId),
}

impl NumaPolicy {
    /// Human-readable policy name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            NumaPolicy::FirstTouch => "first-touch",
            NumaPolicy::NextTouch => "next-touch",
            NumaPolicy::Interleaved => "interleaved",
            NumaPolicy::Fixed(_) => "fixed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_first_touch() {
        assert_eq!(NumaPolicy::default(), NumaPolicy::FirstTouch);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NumaPolicy::FirstTouch.name(), "first-touch");
        assert_eq!(NumaPolicy::NextTouch.name(), "next-touch");
        assert_eq!(NumaPolicy::Interleaved.name(), "interleaved");
        assert_eq!(NumaPolicy::Fixed(NodeId::new(3)).name(), "fixed");
    }
}

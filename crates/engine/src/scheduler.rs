//! Multi-actor time scheduling.
//!
//! The trace-driven simulator advances one core at a time, always picking the
//! core whose local clock is furthest behind (a conservative interleaving
//! that approximates the parallel execution of the real machine). The
//! [`CoreScheduler`] encapsulates that selection so the simulator's main loop
//! stays simple, and also tracks the global "makespan" (the maximum local
//! clock), which is the figure-of-merit the paper's speedup numbers use.

use allarm_types::Nanos;

/// Per-actor local clocks with "advance the laggard" selection.
///
/// # Examples
///
/// ```
/// use allarm_engine::CoreScheduler;
/// use allarm_types::Nanos;
///
/// let mut sched = CoreScheduler::new(2);
/// // Both cores start at time 0; core 0 wins ties.
/// assert_eq!(sched.next_actor(), Some(0));
/// sched.advance(0, Nanos::new(100));
/// // Now core 1 is behind.
/// assert_eq!(sched.next_actor(), Some(1));
/// sched.finish(1);
/// // Only core 0 remains runnable.
/// assert_eq!(sched.next_actor(), Some(0));
/// sched.finish(0);
/// assert_eq!(sched.next_actor(), None);
/// assert_eq!(sched.makespan(), Nanos::new(100));
/// ```
#[derive(Debug, Clone)]
pub struct CoreScheduler {
    clocks: Vec<Nanos>,
    finished: Vec<bool>,
}

impl CoreScheduler {
    /// Creates a scheduler for `num_actors` actors, all starting at time zero.
    pub fn new(num_actors: usize) -> Self {
        CoreScheduler {
            clocks: vec![Nanos::ZERO; num_actors],
            finished: vec![false; num_actors],
        }
    }

    /// Number of actors managed by the scheduler.
    pub fn num_actors(&self) -> usize {
        self.clocks.len()
    }

    /// Returns the index of the unfinished actor with the smallest local
    /// clock (ties broken by lowest index), or `None` if every actor has
    /// finished.
    pub fn next_actor(&self) -> Option<usize> {
        self.clocks
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.finished[*i])
            .min_by_key(|(i, t)| (**t, *i))
            .map(|(i, _)| i)
    }

    /// Advances actor `actor`'s local clock by `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn advance(&mut self, actor: usize, delta: Nanos) {
        self.clocks[actor] += delta;
    }

    /// Returns actor `actor`'s local clock.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn time_of(&self, actor: usize) -> Nanos {
        self.clocks[actor]
    }

    /// Marks actor `actor` as finished; it will no longer be returned by
    /// [`CoreScheduler::next_actor`].
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn finish(&mut self, actor: usize) {
        self.finished[actor] = true;
    }

    /// True if actor `actor` has been marked finished.
    pub fn is_finished(&self, actor: usize) -> bool {
        self.finished[actor]
    }

    /// True once every actor has finished.
    pub fn all_finished(&self) -> bool {
        self.finished.iter().all(|f| *f)
    }

    /// The largest local clock across all actors: the simulated wall-clock
    /// time at which the last actor finished its work.
    pub fn makespan(&self) -> Nanos {
        self.clocks.iter().copied().max().unwrap_or(Nanos::ZERO)
    }

    /// Per-actor local clocks, indexed by actor.
    pub fn clocks(&self) -> &[Nanos] {
        &self.clocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_actor_picks_smallest_clock() {
        let mut s = CoreScheduler::new(3);
        s.advance(0, Nanos::new(50));
        s.advance(1, Nanos::new(20));
        s.advance(2, Nanos::new(90));
        assert_eq!(s.next_actor(), Some(1));
    }

    #[test]
    fn ties_break_toward_lowest_index() {
        let s = CoreScheduler::new(4);
        assert_eq!(s.next_actor(), Some(0));
    }

    #[test]
    fn finished_actors_are_skipped() {
        let mut s = CoreScheduler::new(2);
        s.finish(0);
        assert_eq!(s.next_actor(), Some(1));
        assert!(!s.all_finished());
        s.finish(1);
        assert_eq!(s.next_actor(), None);
        assert!(s.all_finished());
    }

    #[test]
    fn makespan_is_max_clock() {
        let mut s = CoreScheduler::new(3);
        s.advance(0, Nanos::new(10));
        s.advance(1, Nanos::new(300));
        s.advance(2, Nanos::new(200));
        assert_eq!(s.makespan(), Nanos::new(300));
    }

    #[test]
    fn empty_scheduler_behaves() {
        let s = CoreScheduler::new(0);
        assert_eq!(s.next_actor(), None);
        assert!(s.all_finished());
        assert_eq!(s.makespan(), Nanos::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut s = CoreScheduler::new(1);
        s.advance(0, Nanos::new(5));
        s.advance(0, Nanos::new(7));
        assert_eq!(s.time_of(0), Nanos::new(12));
        assert_eq!(s.clocks(), &[Nanos::new(12)]);
    }

    #[test]
    fn is_finished_reports_state() {
        let mut s = CoreScheduler::new(2);
        assert!(!s.is_finished(1));
        s.finish(1);
        assert!(s.is_finished(1));
        assert_eq!(s.num_actors(), 2);
    }
}

//! Multi-actor time scheduling.
//!
//! The trace-driven simulator advances one core at a time, always picking the
//! core whose local clock is furthest behind (a conservative interleaving
//! that approximates the parallel execution of the real machine). The
//! [`CoreScheduler`] encapsulates that selection so the simulator's main loop
//! stays simple, and also tracks the global "makespan" (the maximum local
//! clock), which is the figure-of-merit the paper's speedup numbers use.
//!
//! Selection is backed by a lazy min-heap keyed on `(clock, actor)`: picking
//! the laggard is `O(log n)` instead of the former `O(n)` linear scan, which
//! matters once machines grow past the paper's sixteen cores and each shard
//! of the parallel kernel runs its own scheduler over its own cores.

use allarm_types::Nanos;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-actor local clocks with "advance the laggard" selection.
///
/// Actors can be *parked* (temporarily removed from selection while they
/// wait for a coherence response from another shard) and *finished*
/// (permanently removed once their trace is exhausted).
///
/// # Examples
///
/// ```
/// use allarm_engine::CoreScheduler;
/// use allarm_types::Nanos;
///
/// let mut sched = CoreScheduler::new(2);
/// // Both cores start at time 0; core 0 wins ties.
/// assert_eq!(sched.next_actor(), Some(0));
/// sched.advance(0, Nanos::new(100));
/// // Now core 1 is behind.
/// assert_eq!(sched.next_actor(), Some(1));
/// sched.finish(1);
/// // Only core 0 remains runnable.
/// assert_eq!(sched.next_actor(), Some(0));
/// sched.finish(0);
/// assert_eq!(sched.next_actor(), None);
/// assert_eq!(sched.makespan(), Nanos::new(100));
/// ```
#[derive(Debug, Clone)]
pub struct CoreScheduler {
    clocks: Vec<Nanos>,
    finished: Vec<bool>,
    parked: Vec<bool>,
    /// Lazy min-heap of `(clock, actor)` candidates. An entry is stale (and
    /// skipped on pop) unless its clock still matches the actor's current
    /// clock and the actor is runnable; [`CoreScheduler::advance`] and
    /// [`CoreScheduler::unpark`] push fresh entries instead of rebuilding.
    heap: BinaryHeap<Reverse<(Nanos, usize)>>,
}

impl CoreScheduler {
    /// Creates a scheduler for `num_actors` actors, all starting at time zero.
    pub fn new(num_actors: usize) -> Self {
        CoreScheduler {
            clocks: vec![Nanos::ZERO; num_actors],
            finished: vec![false; num_actors],
            parked: vec![false; num_actors],
            heap: (0..num_actors).map(|i| Reverse((Nanos::ZERO, i))).collect(),
        }
    }

    /// Number of actors managed by the scheduler.
    pub fn num_actors(&self) -> usize {
        self.clocks.len()
    }

    /// Returns the index of the runnable (neither finished nor parked) actor
    /// with the smallest local clock (ties broken by lowest index), or
    /// `None` if no actor is runnable.
    pub fn next_actor(&mut self) -> Option<usize> {
        while let Some(&Reverse((time, actor))) = self.heap.peek() {
            if self.is_live(time, actor) {
                return Some(actor);
            }
            self.heap.pop();
        }
        None
    }

    /// True if a heap entry still describes a runnable actor at its current
    /// clock.
    fn is_live(&self, time: Nanos, actor: usize) -> bool {
        !self.finished[actor] && !self.parked[actor] && self.clocks[actor] == time
    }

    /// Advances actor `actor`'s local clock by `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn advance(&mut self, actor: usize, delta: Nanos) {
        self.clocks[actor] += delta;
        if !self.finished[actor] && !self.parked[actor] {
            self.heap.push(Reverse((self.clocks[actor], actor)));
        }
    }

    /// Returns actor `actor`'s local clock.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn time_of(&self, actor: usize) -> Nanos {
        self.clocks[actor]
    }

    /// Marks actor `actor` as finished; it will no longer be returned by
    /// [`CoreScheduler::next_actor`].
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn finish(&mut self, actor: usize) {
        self.finished[actor] = true;
    }

    /// Parks actor `actor`: it keeps its clock but is skipped by
    /// [`CoreScheduler::next_actor`] until [`CoreScheduler::unpark`].
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn park(&mut self, actor: usize) {
        self.parked[actor] = true;
    }

    /// Unparks actor `actor`, making it selectable again at its current
    /// clock.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn unpark(&mut self, actor: usize) {
        if self.parked[actor] {
            self.parked[actor] = false;
            if !self.finished[actor] {
                self.heap.push(Reverse((self.clocks[actor], actor)));
            }
        }
    }

    /// True if actor `actor` is currently parked.
    pub fn is_parked(&self, actor: usize) -> bool {
        self.parked[actor]
    }

    /// True if actor `actor` has been marked finished.
    pub fn is_finished(&self, actor: usize) -> bool {
        self.finished[actor]
    }

    /// True once every actor has finished.
    pub fn all_finished(&self) -> bool {
        self.finished.iter().all(|f| *f)
    }

    /// The largest local clock across all actors: the simulated wall-clock
    /// time at which the last actor finished its work.
    pub fn makespan(&self) -> Nanos {
        self.clocks.iter().copied().max().unwrap_or(Nanos::ZERO)
    }

    /// Per-actor local clocks, indexed by actor.
    pub fn clocks(&self) -> &[Nanos] {
        &self.clocks
    }

    /// Reconstructs a scheduler from checkpointed per-actor state.
    ///
    /// The heap is rebuilt by pushing every runnable actor at its current
    /// clock — equivalent to any heap the original scheduler could have
    /// held, because stale entries are skipped on pop and fresh entries are
    /// pushed on every [`CoreScheduler::advance`]/[`CoreScheduler::unpark`].
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    pub fn import(clocks: Vec<Nanos>, finished: Vec<bool>, parked: Vec<bool>) -> Self {
        assert_eq!(clocks.len(), finished.len(), "scheduler state length skew");
        assert_eq!(clocks.len(), parked.len(), "scheduler state length skew");
        let heap = clocks
            .iter()
            .enumerate()
            .filter(|&(i, _)| !finished[i] && !parked[i])
            .map(|(i, &t)| Reverse((t, i)))
            .collect();
        CoreScheduler {
            clocks,
            finished,
            parked,
            heap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_actor_picks_smallest_clock() {
        let mut s = CoreScheduler::new(3);
        s.advance(0, Nanos::new(50));
        s.advance(1, Nanos::new(20));
        s.advance(2, Nanos::new(90));
        assert_eq!(s.next_actor(), Some(1));
    }

    #[test]
    fn ties_break_toward_lowest_index() {
        let mut s = CoreScheduler::new(4);
        assert_eq!(s.next_actor(), Some(0));
    }

    #[test]
    fn finished_actors_are_skipped() {
        let mut s = CoreScheduler::new(2);
        s.finish(0);
        assert_eq!(s.next_actor(), Some(1));
        assert!(!s.all_finished());
        s.finish(1);
        assert_eq!(s.next_actor(), None);
        assert!(s.all_finished());
    }

    #[test]
    fn parked_actors_are_skipped_until_unparked() {
        let mut s = CoreScheduler::new(2);
        s.advance(1, Nanos::new(10));
        s.park(0);
        assert!(s.is_parked(0));
        assert_eq!(s.next_actor(), Some(1));
        s.unpark(0);
        assert!(!s.is_parked(0));
        assert_eq!(s.next_actor(), Some(0));
        // Unparking an unparked actor is a no-op.
        s.unpark(0);
        assert_eq!(s.next_actor(), Some(0));
    }

    #[test]
    fn advancing_a_parked_actor_keeps_it_parked() {
        let mut s = CoreScheduler::new(2);
        s.park(0);
        s.advance(0, Nanos::new(1));
        s.advance(1, Nanos::new(500));
        assert_eq!(s.next_actor(), Some(1));
        s.unpark(0);
        assert_eq!(s.next_actor(), Some(0));
        assert_eq!(s.time_of(0), Nanos::new(1));
    }

    #[test]
    fn makespan_is_max_clock() {
        let mut s = CoreScheduler::new(3);
        s.advance(0, Nanos::new(10));
        s.advance(1, Nanos::new(300));
        s.advance(2, Nanos::new(200));
        assert_eq!(s.makespan(), Nanos::new(300));
    }

    #[test]
    fn empty_scheduler_behaves() {
        let mut s = CoreScheduler::new(0);
        assert_eq!(s.next_actor(), None);
        assert!(s.all_finished());
        assert_eq!(s.makespan(), Nanos::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut s = CoreScheduler::new(1);
        s.advance(0, Nanos::new(5));
        s.advance(0, Nanos::new(7));
        assert_eq!(s.time_of(0), Nanos::new(12));
        assert_eq!(s.clocks(), &[Nanos::new(12)]);
    }

    #[test]
    fn is_finished_reports_state() {
        let mut s = CoreScheduler::new(2);
        assert!(!s.is_finished(1));
        s.finish(1);
        assert!(s.is_finished(1));
        assert_eq!(s.num_actors(), 2);
    }

    #[test]
    fn selection_matches_linear_scan_reference() {
        // Drive the heap-backed scheduler through a deterministic pseudo-
        // random workload and cross-check every selection against a naive
        // O(n) reference implementation over the same state.
        let n = 13;
        let mut s = CoreScheduler::new(n);
        let mut state = 0x2014_u64;
        for _ in 0..2_000 {
            let reference = (0..n)
                .filter(|&i| !s.is_finished(i) && !s.is_parked(i))
                .min_by_key(|&i| (s.time_of(i), i));
            assert_eq!(s.next_actor(), reference);
            let Some(actor) = reference else { break };
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            match state % 7 {
                0 => s.finish(actor),
                1 => s.park(actor),
                2 => {
                    let parked = (state >> 8) as usize % n;
                    s.unpark(parked);
                    s.advance(actor, Nanos::new(state >> 32 & 0xff));
                }
                _ => s.advance(actor, Nanos::new(state >> 32 & 0x3f)),
            }
        }
    }
}

//! Deterministic discrete-event simulation kernel.
//!
//! The ALLARM evaluation does not need a full parallel-discrete-event engine,
//! but it does need two things the standard library does not provide
//! directly:
//!
//! * a **deterministic event queue** ([`EventQueue`]) whose pop order is a
//!   total order even when events carry equal timestamps (ties are broken by
//!   insertion sequence, so two runs with the same seed replay identically);
//! * a **multi-actor clock** ([`CoreScheduler`]) that repeatedly selects the
//!   actor (core) with the smallest local time — backed by a lazy min-heap,
//!   so selection is `O(log n)` on large machines — which is how the
//!   trace-driven simulator in `allarm-core` interleaves cores;
//! * a **sharding layer** ([`ShardPlan`], [`MergeKey`], [`merge_events`])
//!   that partitions the machine by home node and defines the deterministic
//!   `(time, actor, seq)` order in which cross-shard events are merged at
//!   epoch barriers, making an N-shard run byte-identical to a serial one;
//!   and
//! * a **seeded random-number layer** ([`rng::StreamRng`]) that hands
//!   independent, reproducible streams to each component.
//!
//! # Examples
//!
//! ```
//! use allarm_engine::{EventQueue, ScheduledEvent};
//! use allarm_types::Nanos;
//!
//! let mut q = EventQueue::new();
//! q.push(Nanos::new(5), "b");
//! q.push(Nanos::new(5), "c");
//! q.push(Nanos::new(1), "a");
//! let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
//! assert_eq!(order, ["a", "b", "c"]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod queue;
pub mod rng;
pub mod scheduler;
pub mod shard;

pub use queue::{EventQueue, ScheduledEvent};
pub use rng::StreamRng;
pub use scheduler::CoreScheduler;
pub use shard::{merge_events, Keyed, MergeKey, PhaseBarrier, ShardPlan};

//! Seeded, splittable random-number streams.
//!
//! Every source of randomness in the simulator (workload generation, random
//! replacement, tie-breaking) draws from a [`StreamRng`] derived from the
//! experiment seed, so that an experiment is a pure function of its
//! configuration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random-number generator with named sub-streams.
///
/// `StreamRng::stream(label)` derives an independent generator from the root
/// seed and a stream label, so components do not perturb each other's random
/// sequences when the order of their draws changes.
///
/// # Examples
///
/// ```
/// use allarm_engine::StreamRng;
///
/// let mut root = StreamRng::from_seed(42);
/// let mut a1 = root.stream(1);
/// let mut a2 = root.stream(1);
/// // The same label always yields the same stream...
/// assert_eq!(a1.next_u64(), a2.next_u64());
/// // ...and different labels yield different streams.
/// let mut b = root.stream(2);
/// assert_ne!(root.stream(1).next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct StreamRng {
    seed: u64,
    rng: StdRng,
}

impl StreamRng {
    /// Creates a root generator from an experiment seed.
    pub fn from_seed(seed: u64) -> Self {
        StreamRng {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream identified by `label`.
    ///
    /// Deriving the same label from the same root always produces an
    /// identical stream, independent of any draws made on the root or on
    /// other streams.
    pub fn stream(&self, label: u64) -> StreamRng {
        // SplitMix64-style mixing of (seed, label) into a new seed.
        let mut z = self.seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        StreamRng::from_seed(z)
    }

    /// Returns the seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws a uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Draws a value uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.rng.gen_range(0..bound)
    }

    /// Draws a value uniformly from `[0.0, 1.0)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.rng.gen_bool(p)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.below(items.len() as u64) as usize;
            Some(&items[idx])
        }
    }
}

impl rand::RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        self.rng.gen()
    }

    fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        rand::RngCore::fill_bytes(&mut self.rng, dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        rand::RngCore::try_fill_bytes(&mut self.rng, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StreamRng::from_seed(7);
        let mut b = StreamRng::from_seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamRng::from_seed(1);
        let mut b = StreamRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn streams_are_independent_of_parent_draws() {
        let mut root = StreamRng::from_seed(99);
        let before: Vec<u64> = {
            let mut s = root.stream(5);
            (0..8).map(|_| s.next_u64()).collect()
        };
        // Drawing from the root must not perturb a re-derived stream.
        let _ = root.next_u64();
        let after: Vec<u64> = {
            let mut s = root.stream(5);
            (0..8).map(|_| s.next_u64()).collect()
        };
        assert_eq!(before, after);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = StreamRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        StreamRng::from_seed(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = StreamRng::from_seed(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped instead of panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = StreamRng::from_seed(4);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [10, 20, 30];
        let picked = *rng.choose(&items).unwrap();
        assert!(items.contains(&picked));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StreamRng::from_seed(5);
        for _ in 0..100 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

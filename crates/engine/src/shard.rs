//! Sharding and deterministic cross-shard event merging.
//!
//! The parallel simulation kernel partitions the machine by home node: each
//! *shard* owns a contiguous block of nodes — their directory slices, DRAM
//! channels, and the cores pinned to those nodes — and runs on its own OS
//! thread. Shards interact only at epoch barriers, by exchanging timestamped
//! events (coherence requests, eviction notices, page faults). For the
//! parallel run to be byte-identical to the serial one, every consumer must
//! process its incoming events in an order that does not depend on how many
//! shards produced them; [`MergeKey`] defines that order — `(timestamp,
//! source actor, per-actor sequence number)` — and [`merge_events`] applies
//! it to [`Keyed`] event batches (consumers with richer event types, like
//! the coherence `DirectoryShard`, sort by the same key themselves).
//!
//! The key is a *total* order as long as each source actor stamps its events
//! with a monotonically increasing sequence number: two events from the same
//! actor differ in `seq`, and events from different actors differ in
//! `actor`. Sorting is therefore deterministic regardless of arrival order,
//! which is exactly the property the epoch-barrier scheme needs.

use allarm_types::Nanos;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The deterministic ordering key of one cross-shard event.
///
/// Ordered by `(time, actor, seq)`: earliest simulated time first, ties
/// broken by the issuing actor's index, then by the actor's own event
/// sequence number. With per-actor monotone sequence numbers this is a
/// total order over all events of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MergeKey {
    /// Simulated time the event was issued.
    pub time: Nanos,
    /// Index of the issuing actor (core), the second tie-breaker.
    pub actor: u32,
    /// The issuing actor's monotone event counter, the final tie-breaker.
    pub seq: u32,
}

impl MergeKey {
    /// Creates a key.
    pub fn new(time: Nanos, actor: u32, seq: u32) -> Self {
        MergeKey { time, actor, seq }
    }
}

/// An event tagged with its deterministic ordering key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyed<T> {
    /// The ordering key.
    pub key: MergeKey,
    /// The event payload.
    pub payload: T,
}

impl<T> Keyed<T> {
    /// Creates a keyed event.
    pub fn new(key: MergeKey, payload: T) -> Self {
        Keyed { key, payload }
    }
}

/// Merges per-shard event batches into a single deterministically ordered
/// stream (ascending [`MergeKey`]).
///
/// The result is independent of how the events were distributed across the
/// input batches and of the order of the batches themselves — the property
/// that makes an N-shard run produce the same event order as a 1-shard run.
pub fn merge_events<T>(batches: impl IntoIterator<Item = Vec<Keyed<T>>>) -> Vec<Keyed<T>> {
    let mut merged: Vec<Keyed<T>> = batches.into_iter().flatten().collect();
    merged.sort_by_key(|e| e.key);
    merged
}

/// The static assignment of nodes (and their pinned cores) to shards.
///
/// Nodes are split into `num_shards` contiguous blocks of (almost) equal
/// size. The plan is pure data over *nodes*: a node moves to a shard with
/// everything it hosts — its directory slice, DRAM channel, and **all** of
/// its cores. With one core per affinity domain (the paper's machine) the
/// node partition is also the core partition; on multi-core-node
/// topologies a node's whole core block stays together, which is what
/// keeps the sharded kernel's determinism argument intact.
///
/// # Examples
///
/// ```
/// use allarm_engine::ShardPlan;
///
/// let plan = ShardPlan::new(16, 4);
/// assert_eq!(plan.num_shards(), 4);
/// assert_eq!(plan.shard_of_node(0), 0);
/// assert_eq!(plan.shard_of_node(15), 3);
/// assert_eq!(plan.nodes_of_shard(1), 4..8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    num_nodes: usize,
    /// Half-open node ranges, one per shard, covering `0..num_nodes`.
    bounds: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Partitions `num_nodes` nodes into at most `num_shards` contiguous
    /// blocks. The shard count is clamped to `1..=num_nodes`, so a plan
    /// always has at least one shard and no empty shards.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: usize, num_shards: usize) -> Self {
        assert!(num_nodes > 0, "cannot shard a machine with no nodes");
        let shards = num_shards.clamp(1, num_nodes);
        let base = num_nodes / shards;
        let extra = num_nodes % shards;
        let mut bounds = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            bounds.push((start, start + len));
            start += len;
        }
        ShardPlan { num_nodes, bounds }
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.bounds.len()
    }

    /// Number of nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The shard that owns `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn shard_of_node(&self, node: usize) -> usize {
        assert!(node < self.num_nodes, "node {node} out of range");
        self.bounds
            .iter()
            .position(|&(start, end)| node >= start && node < end)
            .expect("bounds cover every node")
    }

    /// The half-open range of nodes owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn nodes_of_shard(&self, shard: usize) -> std::ops::Range<usize> {
        let (start, end) = self.bounds[shard];
        start..end
    }
}

/// A sense-reversing phase barrier tuned for simulation rounds.
///
/// The epoch scheme crosses a barrier twice per round, and rounds can be
/// microseconds long, so barrier latency is on the kernel's critical path.
/// `std::sync::Barrier` parks threads in the kernel (a futex sleep/wake per
/// crossing), which is ruinous both when rounds are short and when shards
/// outnumber hardware threads. This barrier spins briefly — the fast path
/// when every shard has its own core — and then falls back to
/// [`std::thread::yield_now`], which degrades gracefully into cooperative
/// scheduling on oversubscribed hosts.
///
/// # Examples
///
/// ```
/// use allarm_engine::PhaseBarrier;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let barrier = PhaseBarrier::new(4);
/// let counter = AtomicUsize::new(0);
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|| {
///             counter.fetch_add(1, Ordering::Relaxed);
///             barrier.wait();
///             // Every increment happened before any thread proceeds.
///             assert_eq!(counter.load(Ordering::Relaxed), 4);
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct PhaseBarrier {
    participants: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl PhaseBarrier {
    /// Iterations of busy-spinning before falling back to yielding.
    const SPINS: u32 = 128;

    /// Creates a barrier for `participants` threads.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "a barrier needs at least one participant");
        PhaseBarrier {
            participants,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of threads that must arrive before any proceeds.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Blocks until all participants have arrived. Reusable: the next
    /// `wait` starts a new generation.
    pub fn wait(&self) {
        if self.participants == 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            // Last arriver: reset the count, then release the generation.
            // The release ordering publishes the reset (and everything the
            // arrivers did this phase) before anyone crosses.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(generation + 1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins += 1;
            if spins < Self::SPINS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_node_exactly_once() {
        for (nodes, shards) in [(16, 4), (16, 3), (5, 2), (7, 16), (1, 1), (64, 5)] {
            let plan = ShardPlan::new(nodes, shards);
            let mut seen = vec![0usize; nodes];
            for s in 0..plan.num_shards() {
                for n in plan.nodes_of_shard(s) {
                    seen[n] += 1;
                    assert_eq!(plan.shard_of_node(n), s);
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{nodes}/{shards}: {seen:?}");
            assert!(plan.num_shards() <= nodes.max(1));
            assert!(plan.num_shards() >= 1);
        }
    }

    #[test]
    fn phase_barrier_synchronizes_many_generations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let threads = 4;
        let rounds = 500;
        let barrier = PhaseBarrier::new(threads);
        assert_eq!(barrier.participants(), threads);
        let counter = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for round in 0..rounds {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        // All increments of this round are visible to all.
                        assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * threads);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), threads * rounds);
    }

    #[test]
    fn single_participant_barrier_is_free() {
        let barrier = PhaseBarrier::new(1);
        for _ in 0..3 {
            barrier.wait();
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardPlan::new(4, 0).num_shards(), 1);
        assert_eq!(ShardPlan::new(4, 99).num_shards(), 4);
    }

    #[test]
    fn keys_order_by_time_then_actor_then_seq() {
        let a = MergeKey::new(Nanos::new(5), 1, 9);
        let b = MergeKey::new(Nanos::new(6), 0, 0);
        let c = MergeKey::new(Nanos::new(5), 2, 0);
        let d = MergeKey::new(Nanos::new(5), 1, 10);
        assert!(a < b);
        assert!(a < c);
        assert!(a < d);
        assert!(d < c);
    }

    /// The determinism property the epoch scheme rests on: however events
    /// are distributed across shards, the merged order is identical.
    #[test]
    fn merge_order_is_independent_of_sharding() {
        // A pool of events from 8 actors with colliding timestamps.
        let mut pool = Vec::new();
        let mut state = 77u64;
        for actor in 0..8u32 {
            for seq in 0..50u32 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                let time = Nanos::new(state % 16); // force many time ties
                pool.push(Keyed::new(MergeKey::new(time, actor, seq), (actor, seq)));
            }
        }

        // Partition the pool as 1, 2, 4 and 8 "shards" (by actor), in
        // scrambled batch orders, and check every merge agrees.
        let reference = merge_events([pool.clone()]);
        for shards in [2usize, 4, 8] {
            let mut batches: Vec<Vec<Keyed<(u32, u32)>>> = vec![Vec::new(); shards];
            for e in &pool {
                batches[e.key.actor as usize % shards].push(e.clone());
            }
            batches.reverse(); // batch order must not matter
            let merged = merge_events(batches);
            assert_eq!(merged, reference, "{shards} shards diverged");
        }

        // The reference itself is sorted by key, and keys are unique.
        for pair in reference.windows(2) {
            assert!(pair[0].key < pair[1].key);
        }
    }
}

//! Deterministic time-ordered event queue.

use allarm_types::Nanos;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time, carrying an arbitrary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// Simulated time at which the event fires.
    pub time: Nanos,
    /// Monotonic sequence number assigned at insertion; used to break ties so
    /// that equal-time events pop in insertion order.
    pub sequence: u64,
    /// The event payload.
    pub payload: T,
}

/// Internal heap entry: a min-heap by (time, sequence) implemented on top of
/// `BinaryHeap`'s max-heap by reversing the ordering.
#[derive(Debug)]
struct HeapEntry<T>(ScheduledEvent<T>);

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.sequence == other.0.sequence
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the entry with the smallest (time, sequence) is the
        // "greatest" so that BinaryHeap::pop returns it first.
        other
            .0
            .time
            .cmp(&self.0.time)
            .then_with(|| other.0.sequence.cmp(&self.0.sequence))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps are returned in insertion order, which makes
/// simulations that use the queue bit-for-bit reproducible across runs.
///
/// # Examples
///
/// ```
/// use allarm_engine::EventQueue;
/// use allarm_types::Nanos;
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::new(10), 'x');
/// q.push(Nanos::new(10), 'y');
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.pop().map(|e| e.payload), Some('x'));
/// assert_eq!(q.pop().map(|e| e.payload), Some('y'));
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_sequence: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_sequence: 0,
        }
    }

    /// Schedules `payload` at simulated time `time`.
    pub fn push(&mut self, time: Nanos, payload: T) {
        let event = ScheduledEvent {
            time,
            sequence: self.next_sequence,
            payload,
        };
        self.next_sequence += 1;
        self.heap.push(HeapEntry(event));
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties are broken by insertion order.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop().map(|entry| entry.0)
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|entry| entry.0.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Nanos::new(30), 3);
        q.push(Nanos::new(10), 1);
        q.push(Nanos::new(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Nanos::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn peek_time_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos::new(42), "e");
        assert_eq!(q.peek_time(), Some(Nanos::new(42)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(Nanos::new(1), ());
        q.push(Nanos::new(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_interleaved_ops() {
        let mut q = EventQueue::new();
        q.push(Nanos::new(5), 'a');
        let a = q.pop().unwrap();
        q.push(Nanos::new(5), 'b');
        let b = q.pop().unwrap();
        assert!(b.sequence > a.sequence);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
    }
}

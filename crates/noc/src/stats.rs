//! Traffic accounting for the on-chip network.

use crate::message::MessageClass;
use allarm_types::stats::Counter;

/// Per-class and aggregate traffic counters.
///
/// Bytes are the paper's primary traffic metric (Fig. 3c is "reduction in
/// network traffic (bytes)"); flit-hops drive the NoC dynamic-energy model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NocStats {
    messages: [Counter; MessageClass::ALL.len()],
    bytes: [Counter; MessageClass::ALL.len()],
    hops: [Counter; MessageClass::ALL.len()],
    flit_hops: Counter,
    local_deliveries: Counter,
}

impl NocStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        NocStats::default()
    }

    /// Records one message of `class` that was `bytes` long, traversed
    /// `hops` links and was split into `flits` flits.
    pub fn record(&mut self, class: MessageClass, bytes: u64, hops: u32, flits: u64) {
        let i = class.index();
        self.messages[i].incr();
        self.bytes[i].add(bytes);
        self.hops[i].add(u64::from(hops));
        self.flit_hops.add(flits * u64::from(hops));
        if hops == 0 {
            self.local_deliveries.incr();
        }
    }

    /// Number of messages of a given class.
    pub fn messages_of(&self, class: MessageClass) -> u64 {
        self.messages[class.index()].get()
    }

    /// Bytes carried by messages of a given class.
    pub fn bytes_of(&self, class: MessageClass) -> u64 {
        self.bytes[class.index()].get()
    }

    /// Link traversals performed by messages of a given class.
    pub fn hops_of(&self, class: MessageClass) -> u64 {
        self.hops[class.index()].get()
    }

    /// Total messages across all classes.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().map(|c| c.get()).sum()
    }

    /// Total bytes across all classes — the paper's network-traffic metric.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().map(|c| c.get()).sum()
    }

    /// Total link traversals across all classes.
    pub fn total_hops(&self) -> u64 {
        self.hops.iter().map(|c| c.get()).sum()
    }

    /// Total flit-link traversals (the activity count for NoC dynamic
    /// energy).
    pub fn total_flit_hops(&self) -> u64 {
        self.flit_hops.get()
    }

    /// Messages whose source and destination were the same node (no link
    /// traversal, e.g. a core talking to its own directory).
    pub fn local_deliveries(&self) -> u64 {
        self.local_deliveries.get()
    }

    /// Exports every counter as raw values for checkpointing: per-class
    /// `(messages, bytes, hops)` triples in [`MessageClass::ALL`] order,
    /// then `flit_hops` and `local_deliveries`.
    pub fn export_counts(&self) -> NocStatsExport {
        NocStatsExport {
            messages: self.messages.map(|c| c.get()),
            bytes: self.bytes.map(|c| c.get()),
            hops: self.hops.map(|c| c.get()),
            flit_hops: self.flit_hops.get(),
            local_deliveries: self.local_deliveries.get(),
        }
    }

    /// Rebuilds a statistics block from raw values captured with
    /// [`NocStats::export_counts`].
    pub fn import_counts(export: &NocStatsExport) -> Self {
        NocStats {
            messages: export.messages.map(Counter::from),
            bytes: export.bytes.map(Counter::from),
            hops: export.hops.map(Counter::from),
            flit_hops: Counter::from(export.flit_hops),
            local_deliveries: Counter::from(export.local_deliveries),
        }
    }

    /// Accumulates another statistics block into this one.
    pub fn merge(&mut self, other: &NocStats) {
        for i in 0..MessageClass::ALL.len() {
            self.messages[i] += other.messages[i];
            self.bytes[i] += other.bytes[i];
            self.hops[i] += other.hops[i];
        }
        self.flit_hops += other.flit_hops;
        self.local_deliveries += other.local_deliveries;
    }
}

/// Raw counter values of a [`NocStats`] block, as captured by
/// [`NocStats::export_counts`]. Per-class arrays are in
/// [`MessageClass::ALL`] order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocStatsExport {
    /// Messages per class.
    pub messages: [u64; MessageClass::ALL.len()],
    /// Bytes per class.
    pub bytes: [u64; MessageClass::ALL.len()],
    /// Link traversals per class.
    pub hops: [u64; MessageClass::ALL.len()],
    /// Total flit-link traversals.
    pub flit_hops: u64,
    /// Zero-hop deliveries.
    pub local_deliveries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_class() {
        let mut s = NocStats::new();
        s.record(MessageClass::Request, 8, 3, 2);
        s.record(MessageClass::Request, 8, 1, 2);
        s.record(MessageClass::Data, 72, 3, 18);
        assert_eq!(s.messages_of(MessageClass::Request), 2);
        assert_eq!(s.bytes_of(MessageClass::Request), 16);
        assert_eq!(s.hops_of(MessageClass::Request), 4);
        assert_eq!(s.messages_of(MessageClass::Data), 1);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_bytes(), 88);
        assert_eq!(s.total_hops(), 7);
        assert_eq!(s.total_flit_hops(), 2 * 3 + 2 + 18 * 3);
    }

    #[test]
    fn zero_hop_messages_count_as_local() {
        let mut s = NocStats::new();
        s.record(MessageClass::Data, 72, 0, 18);
        assert_eq!(s.local_deliveries(), 1);
        assert_eq!(s.total_flit_hops(), 0);
        assert_eq!(s.total_bytes(), 72);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = NocStats::new();
        a.record(MessageClass::Probe, 8, 2, 2);
        let mut b = NocStats::new();
        b.record(MessageClass::Probe, 8, 4, 2);
        b.record(MessageClass::Invalidate, 8, 1, 2);
        a.merge(&b);
        assert_eq!(a.messages_of(MessageClass::Probe), 2);
        assert_eq!(a.hops_of(MessageClass::Probe), 6);
        assert_eq!(a.messages_of(MessageClass::Invalidate), 1);
        assert_eq!(a.total_messages(), 3);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = NocStats::new();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_hops(), 0);
        assert_eq!(s.local_deliveries(), 0);
    }
}

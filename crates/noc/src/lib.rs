//! On-chip network model: pluggable fabrics (mesh, torus, concentrated
//! mesh), XY routing, message accounting.
//!
//! The paper's machine connects sixteen nodes in a 4x4 mesh with 10 ns,
//! 8 GB/s links, 8-byte control messages and 72-byte data messages
//! (Table I). The network model here answers two questions for the rest of
//! the simulator:
//!
//! * **How long does a message take?** — hop count from XY routing times the
//!   link latency, plus serialisation of the message's flits over the link
//!   bandwidth ([`Network::send`] returns the latency).
//! * **How much traffic was generated?** — total and per-[`MessageClass`]
//!   byte/message/hop counters ([`NocStats`]), which feed the normalised
//!   traffic figures (Fig. 3c, Fig. 4c/4f) and the NoC dynamic-energy model.
//!
//! # Examples
//!
//! ```
//! use allarm_noc::{Network, MessageClass};
//! use allarm_types::{config::NocConfig, ids::NodeId};
//!
//! let mut net = Network::new(NocConfig::mesh(4, 4));
//! // A request from node 0 (corner) to node 15 (opposite corner): 6 hops.
//! let lat = net.send(NodeId::new(0), NodeId::new(15), MessageClass::Request);
//! assert_eq!(net.topology().hops(NodeId::new(0), NodeId::new(15)), 6);
//! assert!(lat.as_u64() >= 60);
//! assert_eq!(net.stats().total_messages(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod message;
pub mod network;
pub mod stats;
pub mod topology;

pub use message::MessageClass;
pub use network::Network;
pub use stats::{NocStats, NocStatsExport};
pub use topology::{CMesh, Coord, Fabric, Mesh, Torus};

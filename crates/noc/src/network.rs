//! The network façade used by the directory controller and simulator.

use crate::message::MessageClass;
use crate::stats::NocStats;
use crate::topology::Fabric;
use allarm_types::config::NocConfig;
use allarm_types::error::ConfigError;
use allarm_types::ids::NodeId;
use allarm_types::Nanos;

/// A point-to-point on-chip network with latency and traffic accounting.
///
/// Messages between a node and itself (a core talking to its own directory
/// or memory controller) traverse zero links: they cost nothing on the
/// network and add no bytes of inter-node traffic, which is exactly the
/// property ALLARM exploits for thread-local data.
///
/// # Examples
///
/// ```
/// use allarm_noc::{Network, MessageClass};
/// use allarm_types::{config::NocConfig, ids::NodeId};
///
/// let mut net = Network::new(NocConfig::mesh(2, 2));
/// let remote = net.send(NodeId::new(0), NodeId::new(3), MessageClass::Data);
/// let local = net.send(NodeId::new(1), NodeId::new(1), MessageClass::Data);
/// assert!(remote > local);
/// assert_eq!(local.as_u64(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    config: NocConfig,
    fabric: Fabric,
    stats: NocStats,
}

impl Network {
    /// Creates a network from its configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero dimensions or concentration);
    /// [`Network::try_new`] returns the typed error instead.
    pub fn new(config: NocConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a network from its configuration, rejecting degenerate
    /// geometry with a typed error.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the fabric geometry is degenerate.
    pub fn try_new(config: NocConfig) -> Result<Self, ConfigError> {
        Ok(Network {
            fabric: Fabric::from_config(&config)?,
            config,
            stats: NocStats::new(),
        })
    }

    /// The fabric the network routes over.
    pub fn topology(&self) -> &Fabric {
        &self.fabric
    }

    /// The configuration the network was built from.
    pub fn config(&self) -> &NocConfig {
        &self.config
    }

    /// Size in bytes of a message of the given class.
    pub fn message_bytes(&self, class: MessageClass) -> u64 {
        if class.carries_data() {
            self.config.data_msg_bytes
        } else {
            self.config.control_msg_bytes
        }
    }

    /// Number of flits a message of the given class occupies.
    pub fn message_flits(&self, class: MessageClass) -> u64 {
        let bytes = self.message_bytes(class);
        bytes.div_ceil(self.config.flit_bytes)
    }

    /// Latency of a message from `src` to `dst` without recording it
    /// (useful for "what-if" critical-path calculations).
    pub fn latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        let hops = self.fabric.hops(src, dst);
        if hops == 0 {
            return Nanos::ZERO;
        }
        let bytes = self.message_bytes(class);
        // Head latency: one link traversal per hop; serialisation: the
        // message body streams over the final link at the link bandwidth.
        let head = self.config.link_latency * u64::from(hops);
        let serialisation = Nanos::new(bytes.div_ceil(self.config.link_bandwidth_bytes_per_ns));
        head + serialisation
    }

    /// Sends a message, recording its traffic, and returns its latency.
    ///
    /// Node-local messages (src == dst) cross only the local network
    /// interface: they still count toward byte traffic but traverse zero
    /// links, so they add no latency and no flit-hop (link) energy.
    pub fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        let hops = self.fabric.hops(src, dst);
        let bytes = self.message_bytes(class);
        let flits = self.message_flits(class);
        self.stats.record(class, bytes, hops, flits);
        self.latency(src, dst, class)
    }

    /// Sends a request/response round trip (`src -> dst -> src`), recording
    /// both messages, and returns the combined latency.
    pub fn round_trip(
        &mut self,
        src: NodeId,
        dst: NodeId,
        out_class: MessageClass,
        back_class: MessageClass,
    ) -> Nanos {
        self.send(src, dst, out_class) + self.send(dst, src, back_class)
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Resets the traffic statistics (used between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::new();
    }

    /// Replaces the traffic statistics with checkpointed values (the fabric
    /// and configuration are pure functions of the machine config, so the
    /// statistics are the network's only dynamic state).
    pub fn restore_stats(&mut self, stats: NocStats) {
        self.stats = stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NocConfig::mesh(4, 4))
    }

    #[test]
    fn control_and_data_sizes_follow_table1() {
        let n = net();
        assert_eq!(n.message_bytes(MessageClass::Request), 8);
        assert_eq!(n.message_bytes(MessageClass::Data), 72);
        assert_eq!(n.message_flits(MessageClass::Request), 2);
        assert_eq!(n.message_flits(MessageClass::Data), 18);
    }

    #[test]
    fn latency_scales_with_hops() {
        let n = net();
        let one_hop = n.latency(NodeId::new(0), NodeId::new(1), MessageClass::Request);
        let six_hops = n.latency(NodeId::new(0), NodeId::new(15), MessageClass::Request);
        // 10 ns per hop plus 1 ns serialisation of 8 bytes at 8 B/ns.
        assert_eq!(one_hop, Nanos::new(11));
        assert_eq!(six_hops, Nanos::new(61));
    }

    #[test]
    fn data_messages_take_longer_to_serialise() {
        let n = net();
        let ctrl = n.latency(NodeId::new(0), NodeId::new(1), MessageClass::Request);
        let data = n.latency(NodeId::new(0), NodeId::new(1), MessageClass::Data);
        assert_eq!(data - ctrl, Nanos::new(8)); // 72 B vs 8 B at 8 B/ns.
    }

    #[test]
    fn local_messages_are_latency_free_but_count_bytes() {
        let mut n = net();
        let lat = n.send(NodeId::new(5), NodeId::new(5), MessageClass::Data);
        assert_eq!(lat, Nanos::ZERO);
        assert_eq!(n.stats().total_bytes(), 72);
        assert_eq!(n.stats().total_hops(), 0);
        assert_eq!(n.stats().total_flit_hops(), 0);
        assert_eq!(n.stats().total_messages(), 1);
        assert_eq!(n.stats().local_deliveries(), 1);
    }

    #[test]
    fn send_records_traffic() {
        let mut n = net();
        n.send(NodeId::new(0), NodeId::new(3), MessageClass::Request);
        n.send(NodeId::new(3), NodeId::new(0), MessageClass::Data);
        assert_eq!(n.stats().total_messages(), 2);
        assert_eq!(n.stats().total_bytes(), 8 + 72);
        assert_eq!(n.stats().bytes_of(MessageClass::Data), 72);
        assert_eq!(n.stats().hops_of(MessageClass::Request), 3);
    }

    #[test]
    fn round_trip_is_sum_of_both_directions() {
        let mut n = net();
        let rt = n.round_trip(
            NodeId::new(0),
            NodeId::new(2),
            MessageClass::Request,
            MessageClass::Data,
        );
        let expected = n.latency(NodeId::new(0), NodeId::new(2), MessageClass::Request)
            + n.latency(NodeId::new(2), NodeId::new(0), MessageClass::Data);
        assert_eq!(rt, expected);
        assert_eq!(n.stats().total_messages(), 2);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut n = net();
        n.send(NodeId::new(0), NodeId::new(1), MessageClass::Request);
        n.reset_stats();
        assert_eq!(n.stats().total_messages(), 0);
    }

    #[test]
    fn config_and_topology_accessors() {
        let n = net();
        assert_eq!(n.config().mesh_x, 4);
        assert_eq!(n.topology().num_nodes(), 16);
        assert_eq!(n.topology().name(), "mesh");
    }

    #[test]
    fn degenerate_geometry_is_a_typed_error() {
        let err = Network::try_new(NocConfig::mesh(0, 4)).unwrap_err();
        assert_eq!(err.field(), "noc.mesh");
        let err = Network::try_new(NocConfig::cmesh(4, 4, 0)).unwrap_err();
        assert_eq!(err.field(), "noc.concentration");
    }

    #[test]
    fn torus_network_shortens_edge_to_edge_latency() {
        let mesh = Network::new(NocConfig::mesh(4, 4));
        let torus = Network::new(NocConfig::torus(4, 4));
        assert_eq!(torus.topology().name(), "torus");
        // Node 0 to node 3: 3 mesh hops, 1 torus hop.
        let m = mesh.latency(NodeId::new(0), NodeId::new(3), MessageClass::Request);
        let t = torus.latency(NodeId::new(0), NodeId::new(3), MessageClass::Request);
        assert_eq!(m, Nanos::new(31));
        assert_eq!(t, Nanos::new(11));
    }

    #[test]
    fn cmesh_network_makes_same_router_traffic_free() {
        let mut n = Network::new(NocConfig::cmesh(2, 2, 4));
        assert_eq!(n.topology().num_nodes(), 16);
        // Nodes 0 and 3 share router 0: zero hops, but bytes still count.
        let lat = n.send(NodeId::new(0), NodeId::new(3), MessageClass::Data);
        assert_eq!(lat, Nanos::ZERO);
        assert_eq!(n.stats().total_bytes(), 72);
        assert_eq!(n.stats().total_hops(), 0);
    }
}

//! Coherence message classes carried by the on-chip network.

use std::fmt;

/// The class of a coherence message, which determines its size on the wire
/// and lets the traffic statistics be broken down by purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MessageClass {
    /// A request from a core to a home directory (GetS / GetX / upgrade).
    Request,
    /// A directory probe asking a cache for the state of a line (including
    /// the extra ALLARM local-probe message type).
    Probe,
    /// A cache's response to a probe that carries no data (miss or clean).
    ProbeAck,
    /// A cache's response to a probe that carries the line (dirty data or a
    /// cache-to-cache transfer).
    ProbeData,
    /// A directory-initiated invalidation (probe-filter eviction
    /// back-invalidate, or an ownership invalidation on GetX).
    Invalidate,
    /// Acknowledgement of an invalidation.
    InvalidateAck,
    /// A data message from DRAM/directory to the requesting core.
    Data,
    /// A dirty-line writeback (cache eviction or flush) to the home memory
    /// controller.
    WriteBack,
    /// Notification that a clean exclusively-owned block was dropped (the
    /// baseline's eviction notification, Table I discussion in Section III).
    EvictNotify,
}

impl MessageClass {
    /// All message classes, in a stable order (useful for reports).
    pub const ALL: [MessageClass; 9] = [
        MessageClass::Request,
        MessageClass::Probe,
        MessageClass::ProbeAck,
        MessageClass::ProbeData,
        MessageClass::Invalidate,
        MessageClass::InvalidateAck,
        MessageClass::Data,
        MessageClass::WriteBack,
        MessageClass::EvictNotify,
    ];

    /// True if the message carries a full cache line and therefore uses the
    /// data-message size (72 bytes in Table I); control messages use 8 bytes.
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MessageClass::Data | MessageClass::WriteBack | MessageClass::ProbeData
        )
    }

    /// A stable index for array-backed per-class counters.
    pub fn index(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::Probe => 1,
            MessageClass::ProbeAck => 2,
            MessageClass::ProbeData => 3,
            MessageClass::Invalidate => 4,
            MessageClass::InvalidateAck => 5,
            MessageClass::Data => 6,
            MessageClass::WriteBack => 7,
            MessageClass::EvictNotify => 8,
        }
    }

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            MessageClass::Request => "request",
            MessageClass::Probe => "probe",
            MessageClass::ProbeAck => "probe-ack",
            MessageClass::ProbeData => "probe-data",
            MessageClass::Invalidate => "invalidate",
            MessageClass::InvalidateAck => "invalidate-ack",
            MessageClass::Data => "data",
            MessageClass::WriteBack => "writeback",
            MessageClass::EvictNotify => "evict-notify",
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn data_carrying_classes() {
        assert!(MessageClass::Data.carries_data());
        assert!(MessageClass::WriteBack.carries_data());
        assert!(MessageClass::ProbeData.carries_data());
        assert!(!MessageClass::Request.carries_data());
        assert!(!MessageClass::Invalidate.carries_data());
        assert!(!MessageClass::InvalidateAck.carries_data());
        assert!(!MessageClass::EvictNotify.carries_data());
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let indices: HashSet<usize> = MessageClass::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(indices.len(), MessageClass::ALL.len());
        assert_eq!(*indices.iter().max().unwrap(), MessageClass::ALL.len() - 1);
    }

    #[test]
    fn all_matches_declared_order() {
        assert_eq!(MessageClass::ALL[0], MessageClass::Request);
        assert_eq!(MessageClass::ALL[8], MessageClass::EvictNotify);
        for (i, class) in MessageClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MessageClass::Probe.to_string(), "probe");
        assert_eq!(MessageClass::InvalidateAck.name(), "invalidate-ack");
    }
}

//! 2-D mesh topology and XY (dimension-ordered) routing.

use allarm_types::ids::NodeId;

/// Coordinates of a router in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (0-based, increases east).
    pub x: u32,
    /// Row (0-based, increases south).
    pub y: u32,
}

/// A 2-D mesh of routers, one per node, using XY dimension-ordered routing.
///
/// # Examples
///
/// ```
/// use allarm_noc::Mesh;
/// use allarm_types::ids::NodeId;
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(5)), 2);
/// assert_eq!(mesh.hops(NodeId::new(3), NodeId::new(3)), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u32,
    height: u32,
}

impl Mesh {
    /// Creates a `width x height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        Mesh { width, height }
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of routers.
    pub fn num_nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Coordinates of a node (row-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the mesh.
    pub fn coord(&self, node: NodeId) -> Coord {
        let idx = node.index() as u32;
        assert!(
            idx < self.num_nodes(),
            "node {node} outside {}-node mesh",
            self.num_nodes()
        );
        Coord {
            x: idx % self.width,
            y: idx / self.width,
        }
    }

    /// Node identifier at given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(&self, coord: Coord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coordinate outside mesh"
        );
        NodeId::new((coord.y * self.width + coord.x) as u16)
    }

    /// Manhattan distance between two nodes — the number of links an XY-routed
    /// message traverses.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let a = self.coord(from);
        let b = self.coord(to);
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// The sequence of nodes an XY-routed message visits, including source
    /// and destination.
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let src = self.coord(from);
        let dst = self.coord(to);
        let mut path = vec![from];
        let mut cur = src;
        // X first...
        while cur.x != dst.x {
            cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(self.node_at(cur));
        }
        // ...then Y.
        while cur.y != dst.y {
            cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(self.node_at(cur));
        }
        path
    }

    /// Average hop count over all ordered pairs of distinct nodes; useful for
    /// sanity checks and capacity planning.
    pub fn mean_hops(&self) -> f64 {
        let n = self.num_nodes();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += u64::from(self.hops(NodeId::new(a as u16), NodeId::new(b as u16)));
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_are_row_major() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.coord(NodeId::new(0)), Coord { x: 0, y: 0 });
        assert_eq!(mesh.coord(NodeId::new(3)), Coord { x: 3, y: 0 });
        assert_eq!(mesh.coord(NodeId::new(4)), Coord { x: 0, y: 1 });
        assert_eq!(mesh.coord(NodeId::new(15)), Coord { x: 3, y: 3 });
        assert_eq!(mesh.node_at(Coord { x: 2, y: 1 }), NodeId::new(6));
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(15)), 6);
        assert_eq!(mesh.hops(NodeId::new(5), NodeId::new(6)), 1);
        assert_eq!(mesh.hops(NodeId::new(7), NodeId::new(7)), 0);
        // Symmetric.
        assert_eq!(
            mesh.hops(NodeId::new(2), NodeId::new(13)),
            mesh.hops(NodeId::new(13), NodeId::new(2))
        );
    }

    #[test]
    fn route_goes_x_then_y_and_has_hops_plus_one_nodes() {
        let mesh = Mesh::new(4, 4);
        let route = mesh.route(NodeId::new(0), NodeId::new(10));
        assert_eq!(route.first(), Some(&NodeId::new(0)));
        assert_eq!(route.last(), Some(&NodeId::new(10)));
        assert_eq!(
            route.len() as u32,
            mesh.hops(NodeId::new(0), NodeId::new(10)) + 1
        );
        // X-first: 0 -> 1 -> 2 -> 6 -> 10.
        assert_eq!(
            route,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(6),
                NodeId::new(10)
            ]
        );
    }

    #[test]
    fn route_to_self_is_single_node() {
        let mesh = Mesh::new(2, 2);
        assert_eq!(
            mesh.route(NodeId::new(3), NodeId::new(3)),
            vec![NodeId::new(3)]
        );
    }

    /// Closed form for the mean Manhattan distance over ordered *distinct*
    /// node pairs of an `x`×`y` mesh: along one axis of length `n`, the
    /// ordered-pair displacement sum is `n(n²-1)/3`, each combined with
    /// every coordinate pair of the other axis, over `xy(xy-1)` pairs.
    fn mean_hops_closed_form(x: u64, y: u64) -> f64 {
        let total = y * y * (x * (x * x - 1) / 3) + x * x * (y * (y * y - 1) / 3);
        let pairs = x * y * (x * y - 1);
        total as f64 / pairs as f64
    }

    #[test]
    fn mean_hops_of_known_meshes() {
        // For a 1x2 mesh every pair is 1 hop apart.
        assert_eq!(Mesh::new(2, 1).mean_hops(), 1.0);
        // For an n×n mesh the closed form reduces to 2n/3 over distinct
        // ordered pairs: 8/3 ≈ 2.667 at n = 4 (not 2.5 — that would be the
        // mean with self-pairs at a different weighting).
        let mean = Mesh::new(4, 4).mean_hops();
        assert!((mean - 8.0 / 3.0).abs() < 1e-12, "mean hops was {mean}");
        assert_eq!(mean, mean_hops_closed_form(4, 4));
        assert_eq!(Mesh::new(1, 1).mean_hops(), 0.0);
    }

    #[test]
    fn mean_hops_of_rectangular_meshes() {
        // Non-square meshes (a ROADMAP direction for wider machines) follow
        // the same closed form: an 8×2 mesh averages 10/3 hops.
        let mean = Mesh::new(8, 2).mean_hops();
        assert!((mean - 10.0 / 3.0).abs() < 1e-12, "mean hops was {mean}");
        assert_eq!(mean, mean_hops_closed_form(8, 2));
        // Orientation does not matter, and a 1×n path degenerates to the
        // one-dimensional mean (n+1)/3.
        assert_eq!(Mesh::new(2, 8).mean_hops(), mean);
        assert_eq!(Mesh::new(4, 1).mean_hops(), mean_hops_closed_form(4, 1));
        assert!((Mesh::new(4, 1).mean_hops() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_node_panics() {
        Mesh::new(2, 2).coord(NodeId::new(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        Mesh::new(0, 4);
    }

    #[test]
    fn geometry_accessors() {
        let mesh = Mesh::new(4, 2);
        assert_eq!(mesh.width(), 4);
        assert_eq!(mesh.height(), 2);
        assert_eq!(mesh.num_nodes(), 8);
    }
}

//! Interconnect topologies — mesh, torus, concentrated mesh — and the
//! [`Fabric`] abstraction that selects one from a [`NocConfig`].

use allarm_types::config::{FabricKind, NocConfig};
use allarm_types::error::ConfigError;
use allarm_types::ids::NodeId;

/// Coordinates of a router in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (0-based, increases east).
    pub x: u32,
    /// Row (0-based, increases south).
    pub y: u32,
}

/// A 2-D mesh of routers, one per node, using XY dimension-ordered routing.
///
/// # Examples
///
/// ```
/// use allarm_noc::Mesh;
/// use allarm_types::ids::NodeId;
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(5)), 2);
/// assert_eq!(mesh.hops(NodeId::new(3), NodeId::new(3)), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u32,
    height: u32,
}

impl Mesh {
    /// Creates a `width x height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; [`Mesh::try_new`] returns the
    /// typed error instead.
    pub fn new(width: u32, height: u32) -> Self {
        Self::try_new(width, height).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a `width x height` mesh, rejecting degenerate dimensions
    /// with a typed error.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either dimension is zero.
    pub fn try_new(width: u32, height: u32) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::new(
                "noc.mesh",
                "mesh dimensions must be non-zero",
            ));
        }
        Ok(Mesh { width, height })
    }

    /// Mesh width (columns).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mesh height (rows).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of routers.
    pub fn num_nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Coordinates of a node (row-major numbering).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the mesh.
    pub fn coord(&self, node: NodeId) -> Coord {
        let idx = node.index() as u32;
        assert!(
            idx < self.num_nodes(),
            "node {node} outside {}-node mesh",
            self.num_nodes()
        );
        Coord {
            x: idx % self.width,
            y: idx / self.width,
        }
    }

    /// Node identifier at given coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    pub fn node_at(&self, coord: Coord) -> NodeId {
        assert!(
            coord.x < self.width && coord.y < self.height,
            "coordinate outside mesh"
        );
        NodeId::new((coord.y * self.width + coord.x) as u16)
    }

    /// Manhattan distance between two nodes — the number of links an XY-routed
    /// message traverses.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let a = self.coord(from);
        let b = self.coord(to);
        a.x.abs_diff(b.x) + a.y.abs_diff(b.y)
    }

    /// The sequence of nodes an XY-routed message visits, including source
    /// and destination.
    pub fn route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let src = self.coord(from);
        let dst = self.coord(to);
        let mut path = vec![from];
        let mut cur = src;
        // X first...
        while cur.x != dst.x {
            cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(self.node_at(cur));
        }
        // ...then Y.
        while cur.y != dst.y {
            cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(self.node_at(cur));
        }
        path
    }

    /// Average hop count over all ordered pairs of distinct nodes; useful for
    /// sanity checks and capacity planning.
    pub fn mean_hops(&self) -> f64 {
        let n = self.num_nodes();
        if n < 2 {
            return 0.0;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += u64::from(self.hops(NodeId::new(a as u16), NodeId::new(b as u16)));
                    pairs += 1;
                }
            }
        }
        total as f64 / pairs as f64
    }
}

/// A 2-D torus: the mesh with wrap-around links on both axes, so each axis
/// contributes `min(d, n - d)` hops instead of `d`.
///
/// # Examples
///
/// ```
/// use allarm_noc::Torus;
/// use allarm_types::ids::NodeId;
///
/// let torus = Torus::new(4, 4);
/// // Opposite corners are 2 hops apart (one wrap per axis), not 6.
/// assert_eq!(torus.hops(NodeId::new(0), NodeId::new(15)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    width: u32,
    height: u32,
}

impl Torus {
    /// Creates a `width x height` torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; [`Torus::try_new`] returns the
    /// typed error instead.
    pub fn new(width: u32, height: u32) -> Self {
        Self::try_new(width, height).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a `width x height` torus, rejecting degenerate dimensions
    /// with a typed error.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if either dimension is zero.
    pub fn try_new(width: u32, height: u32) -> Result<Self, ConfigError> {
        if width == 0 || height == 0 {
            return Err(ConfigError::new(
                "noc.mesh",
                "torus dimensions must be non-zero",
            ));
        }
        Ok(Torus { width, height })
    }

    /// Torus width (columns).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Torus height (rows).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of routers.
    pub fn num_nodes(&self) -> u32 {
        self.width * self.height
    }

    /// Coordinates of a node (row-major numbering, same as the mesh).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the torus.
    pub fn coord(&self, node: NodeId) -> Coord {
        let idx = node.index() as u32;
        assert!(
            idx < self.num_nodes(),
            "node {node} outside {}-node torus",
            self.num_nodes()
        );
        Coord {
            x: idx % self.width,
            y: idx / self.width,
        }
    }

    /// Hop count with wrap-around: per axis the shorter of the direct and
    /// the wrapped path.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        let a = self.coord(from);
        let b = self.coord(to);
        let dx = a.x.abs_diff(b.x);
        let dy = a.y.abs_diff(b.y);
        dx.min(self.width - dx) + dy.min(self.height - dy)
    }

    /// Average hop count over all ordered pairs of distinct nodes.
    pub fn mean_hops(&self) -> f64 {
        mean_hops_brute_force(self.num_nodes(), |a, b| self.hops(a, b))
    }
}

/// A concentrated mesh: `concentration` nodes share each router of a
/// smaller XY-routed mesh, and same-router traffic takes zero hops.
///
/// # Examples
///
/// ```
/// use allarm_noc::CMesh;
/// use allarm_types::ids::NodeId;
///
/// let cmesh = CMesh::new(2, 2, 4); // 16 nodes on a 2x2 router grid
/// assert_eq!(cmesh.num_nodes(), 16);
/// // Nodes 0 and 3 share router 0.
/// assert_eq!(cmesh.hops(NodeId::new(0), NodeId::new(3)), 0);
/// assert_eq!(cmesh.hops(NodeId::new(0), NodeId::new(15)), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CMesh {
    routers: Mesh,
    concentration: u32,
}

impl CMesh {
    /// Creates an `x` × `y` router grid with `concentration` nodes per
    /// router.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero; [`CMesh::try_new`] returns the typed
    /// error instead.
    pub fn new(x: u32, y: u32, concentration: u32) -> Self {
        Self::try_new(x, y, concentration).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates an `x` × `y` router grid with `concentration` nodes per
    /// router, rejecting degenerate geometry with a typed error.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any argument is zero.
    pub fn try_new(x: u32, y: u32, concentration: u32) -> Result<Self, ConfigError> {
        if concentration == 0 {
            return Err(ConfigError::new("noc.concentration", "must be non-zero"));
        }
        Ok(CMesh {
            routers: Mesh::try_new(x, y)?,
            concentration,
        })
    }

    /// The underlying router grid.
    pub fn routers(&self) -> &Mesh {
        &self.routers
    }

    /// Nodes per router.
    pub fn concentration(&self) -> u32 {
        self.concentration
    }

    /// Number of nodes (`routers * concentration`).
    pub fn num_nodes(&self) -> u32 {
        self.routers.num_nodes() * self.concentration
    }

    /// The router a node hangs off (consecutive nodes share a router).
    ///
    /// # Panics
    ///
    /// Panics if the node is outside the fabric.
    pub fn router_of(&self, node: NodeId) -> NodeId {
        let idx = node.index() as u32;
        assert!(
            idx < self.num_nodes(),
            "node {node} outside {}-node concentrated mesh",
            self.num_nodes()
        );
        NodeId::new((idx / self.concentration) as u16)
    }

    /// Hop count between two nodes: the router-grid Manhattan distance,
    /// zero when they share a router.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        self.routers.hops(self.router_of(from), self.router_of(to))
    }

    /// Average hop count over all ordered pairs of distinct nodes
    /// (same-router pairs count as zero-hop pairs).
    pub fn mean_hops(&self) -> f64 {
        mean_hops_brute_force(self.num_nodes(), |a, b| self.hops(a, b))
    }
}

/// Mean hop count over all ordered distinct pairs of `n` nodes.
fn mean_hops_brute_force(n: u32, hops: impl Fn(NodeId, NodeId) -> u32) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for a in 0..n {
        for b in 0..n {
            if a != b {
                total += u64::from(hops(NodeId::new(a as u16), NodeId::new(b as u16)));
                pairs += 1;
            }
        }
    }
    total as f64 / pairs as f64
}

/// The topology a [`Network`](crate::Network) routes over, selected from
/// [`NocConfig::fabric`].
///
/// Every variant answers the same two questions — how many nodes, and how
/// many link hops between two of them — which is all the latency/traffic
/// model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fabric {
    /// 2-D mesh, XY routing.
    Mesh(Mesh),
    /// 2-D torus (wrap-around mesh).
    Torus(Torus),
    /// Concentrated mesh.
    CMesh(CMesh),
}

impl Fabric {
    /// Builds the fabric a configuration selects.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for degenerate geometry (zero dimensions
    /// or concentration) — the typed path scenario-document loading
    /// surfaces instead of a panic.
    pub fn from_config(config: &NocConfig) -> Result<Self, ConfigError> {
        if config.concentration.get() == 0 {
            return Err(ConfigError::new("noc.concentration", "must be non-zero"));
        }
        Ok(match config.fabric {
            FabricKind::Mesh => Fabric::Mesh(Mesh::try_new(config.mesh_x, config.mesh_y)?),
            FabricKind::Torus => Fabric::Torus(Torus::try_new(config.mesh_x, config.mesh_y)?),
            FabricKind::CMesh => Fabric::CMesh(CMesh::try_new(
                config.mesh_x,
                config.mesh_y,
                config.concentration.get(),
            )?),
        })
    }

    /// The fabric family's name (for reports and diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            Fabric::Mesh(_) => "mesh",
            Fabric::Torus(_) => "torus",
            Fabric::CMesh(_) => "cmesh",
        }
    }

    /// Number of nodes the fabric connects.
    pub fn num_nodes(&self) -> u32 {
        match self {
            Fabric::Mesh(m) => m.num_nodes(),
            Fabric::Torus(t) => t.num_nodes(),
            Fabric::CMesh(c) => c.num_nodes(),
        }
    }

    /// Number of links a message from `from` to `to` traverses.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        match self {
            Fabric::Mesh(m) => m.hops(from, to),
            Fabric::Torus(t) => t.hops(from, to),
            Fabric::CMesh(c) => c.hops(from, to),
        }
    }

    /// Average hop count over all ordered pairs of distinct nodes.
    pub fn mean_hops(&self) -> f64 {
        match self {
            Fabric::Mesh(m) => m.mean_hops(),
            Fabric::Torus(t) => t.mean_hops(),
            Fabric::CMesh(c) => c.mean_hops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_are_row_major() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.coord(NodeId::new(0)), Coord { x: 0, y: 0 });
        assert_eq!(mesh.coord(NodeId::new(3)), Coord { x: 3, y: 0 });
        assert_eq!(mesh.coord(NodeId::new(4)), Coord { x: 0, y: 1 });
        assert_eq!(mesh.coord(NodeId::new(15)), Coord { x: 3, y: 3 });
        assert_eq!(mesh.node_at(Coord { x: 2, y: 1 }), NodeId::new(6));
    }

    #[test]
    fn hops_are_manhattan_distance() {
        let mesh = Mesh::new(4, 4);
        assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(15)), 6);
        assert_eq!(mesh.hops(NodeId::new(5), NodeId::new(6)), 1);
        assert_eq!(mesh.hops(NodeId::new(7), NodeId::new(7)), 0);
        // Symmetric.
        assert_eq!(
            mesh.hops(NodeId::new(2), NodeId::new(13)),
            mesh.hops(NodeId::new(13), NodeId::new(2))
        );
    }

    #[test]
    fn route_goes_x_then_y_and_has_hops_plus_one_nodes() {
        let mesh = Mesh::new(4, 4);
        let route = mesh.route(NodeId::new(0), NodeId::new(10));
        assert_eq!(route.first(), Some(&NodeId::new(0)));
        assert_eq!(route.last(), Some(&NodeId::new(10)));
        assert_eq!(
            route.len() as u32,
            mesh.hops(NodeId::new(0), NodeId::new(10)) + 1
        );
        // X-first: 0 -> 1 -> 2 -> 6 -> 10.
        assert_eq!(
            route,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(6),
                NodeId::new(10)
            ]
        );
    }

    #[test]
    fn route_to_self_is_single_node() {
        let mesh = Mesh::new(2, 2);
        assert_eq!(
            mesh.route(NodeId::new(3), NodeId::new(3)),
            vec![NodeId::new(3)]
        );
    }

    /// Closed form for the mean Manhattan distance over ordered *distinct*
    /// node pairs of an `x`×`y` mesh: along one axis of length `n`, the
    /// ordered-pair displacement sum is `n(n²-1)/3`, each combined with
    /// every coordinate pair of the other axis, over `xy(xy-1)` pairs.
    fn mean_hops_closed_form(x: u64, y: u64) -> f64 {
        let total = y * y * (x * (x * x - 1) / 3) + x * x * (y * (y * y - 1) / 3);
        let pairs = x * y * (x * y - 1);
        total as f64 / pairs as f64
    }

    #[test]
    fn mean_hops_of_known_meshes() {
        // For a 1x2 mesh every pair is 1 hop apart.
        assert_eq!(Mesh::new(2, 1).mean_hops(), 1.0);
        // For an n×n mesh the closed form reduces to 2n/3 over distinct
        // ordered pairs: 8/3 ≈ 2.667 at n = 4 (not 2.5 — that would be the
        // mean with self-pairs at a different weighting).
        let mean = Mesh::new(4, 4).mean_hops();
        assert!((mean - 8.0 / 3.0).abs() < 1e-12, "mean hops was {mean}");
        assert_eq!(mean, mean_hops_closed_form(4, 4));
        assert_eq!(Mesh::new(1, 1).mean_hops(), 0.0);
    }

    #[test]
    fn mean_hops_of_rectangular_meshes() {
        // Non-square meshes (a ROADMAP direction for wider machines) follow
        // the same closed form: an 8×2 mesh averages 10/3 hops.
        let mean = Mesh::new(8, 2).mean_hops();
        assert!((mean - 10.0 / 3.0).abs() < 1e-12, "mean hops was {mean}");
        assert_eq!(mean, mean_hops_closed_form(8, 2));
        // Orientation does not matter, and a 1×n path degenerates to the
        // one-dimensional mean (n+1)/3.
        assert_eq!(Mesh::new(2, 8).mean_hops(), mean);
        assert_eq!(Mesh::new(4, 1).mean_hops(), mean_hops_closed_form(4, 1));
        assert!((Mesh::new(4, 1).mean_hops() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_node_panics() {
        Mesh::new(2, 2).coord(NodeId::new(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        Mesh::new(0, 4);
    }

    #[test]
    fn zero_dimensions_are_typed_errors_via_try_new() {
        assert_eq!(Mesh::try_new(0, 4).unwrap_err().field(), "noc.mesh");
        assert_eq!(Torus::try_new(4, 0).unwrap_err().field(), "noc.mesh");
        assert_eq!(
            CMesh::try_new(4, 4, 0).unwrap_err().field(),
            "noc.concentration"
        );
        assert_eq!(CMesh::try_new(0, 4, 2).unwrap_err().field(), "noc.mesh");
        let cfg = NocConfig::mesh(0, 4);
        assert_eq!(Fabric::from_config(&cfg).unwrap_err().field(), "noc.mesh");
    }

    #[test]
    fn geometry_accessors() {
        let mesh = Mesh::new(4, 2);
        assert_eq!(mesh.width(), 4);
        assert_eq!(mesh.height(), 2);
        assert_eq!(mesh.num_nodes(), 8);
    }

    #[test]
    fn large_mesh_dimensions_follow_the_closed_form() {
        // The 8×8 and 16×8 grids the scaled machines use.
        let m = Mesh::new(8, 8);
        assert_eq!(m.num_nodes(), 64);
        assert!((m.mean_hops() - mean_hops_closed_form(8, 8)).abs() < 1e-12);
        let m = Mesh::new(16, 8);
        assert_eq!(m.num_nodes(), 128);
        assert!((m.mean_hops() - mean_hops_closed_form(16, 8)).abs() < 1e-12);
    }

    #[test]
    fn torus_hops_take_the_wrap_link() {
        let t = Torus::new(4, 4);
        // Edge to edge along one axis: 1 wrap hop instead of 3 direct.
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(3)), 1);
        // Corner to corner: one wrap per axis.
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(15)), 2);
        // Mid-mesh pairs match the mesh distance.
        assert_eq!(t.hops(NodeId::new(5), NodeId::new(6)), 1);
        assert_eq!(t.hops(NodeId::new(7), NodeId::new(7)), 0);
        // Symmetric.
        assert_eq!(
            t.hops(NodeId::new(2), NodeId::new(13)),
            t.hops(NodeId::new(13), NodeId::new(2))
        );
    }

    /// Closed form for the torus mean over ordered distinct pairs: along a
    /// ring of length `n` the per-offset distance is `min(d, n-d)`, whose
    /// sum over all offsets is `(n/2)²` for even `n` and `(n²-1)/4` for odd
    /// `n`; each axis total combines with every coordinate pair of the
    /// other axis.
    fn torus_mean_closed_form(x: u64, y: u64) -> f64 {
        let ring_sum = |n: u64| {
            if n.is_multiple_of(2) {
                (n / 2) * (n / 2)
            } else {
                (n * n - 1) / 4
            }
        };
        let total = y * y * x * ring_sum(x) + x * x * y * ring_sum(y);
        let pairs = x * y * (x * y - 1);
        total as f64 / pairs as f64
    }

    #[test]
    fn torus_mean_hops_match_the_closed_form() {
        for (x, y) in [(4, 4), (8, 8), (16, 8), (5, 3), (2, 1)] {
            let t = Torus::new(x, y);
            let expected = torus_mean_closed_form(u64::from(x), u64::from(y));
            assert!(
                (t.mean_hops() - expected).abs() < 1e-12,
                "{x}x{y}: {} vs {expected}",
                t.mean_hops()
            );
        }
        // A 5x3 torus averages exactly 2 hops.
        assert_eq!(Torus::new(5, 3).mean_hops(), 2.0);
        // The torus is never worse than the mesh.
        assert!(Torus::new(8, 8).mean_hops() < Mesh::new(8, 8).mean_hops());
    }

    #[test]
    fn cmesh_maps_consecutive_nodes_onto_one_router() {
        let c = CMesh::new(4, 4, 4);
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.router_of(NodeId::new(0)), NodeId::new(0));
        assert_eq!(c.router_of(NodeId::new(3)), NodeId::new(0));
        assert_eq!(c.router_of(NodeId::new(4)), NodeId::new(1));
        assert_eq!(c.router_of(NodeId::new(63)), NodeId::new(15));
        // Same router: zero hops. Different routers: the mesh distance.
        assert_eq!(c.hops(NodeId::new(0), NodeId::new(3)), 0);
        assert_eq!(
            c.hops(NodeId::new(0), NodeId::new(63)),
            c.routers().hops(NodeId::new(0), NodeId::new(15))
        );
    }

    /// Closed form for the concentrated mesh over ordered distinct node
    /// pairs: every router pair's mesh distance is taken by `c²` node
    /// pairs, and same-router pairs contribute zero.
    fn cmesh_mean_closed_form(x: u64, y: u64, c: u64) -> f64 {
        let mesh_total = y * y * (x * (x * x - 1) / 3) + x * x * (y * (y * y - 1) / 3);
        let n = x * y * c;
        (c * c * mesh_total) as f64 / (n * (n - 1)) as f64
    }

    #[test]
    fn cmesh_mean_hops_match_the_closed_form() {
        for (x, y, c) in [(4, 4, 4), (2, 2, 4), (8, 4, 2), (4, 4, 1)] {
            let fabric = CMesh::new(x, y, c);
            let expected = cmesh_mean_closed_form(u64::from(x), u64::from(y), u64::from(c));
            assert!(
                (fabric.mean_hops() - expected).abs() < 1e-12,
                "{x}x{y}x{c}: {} vs {expected}",
                fabric.mean_hops()
            );
        }
        // Concentration 1 degenerates to the plain mesh.
        assert_eq!(CMesh::new(4, 4, 1).mean_hops(), Mesh::new(4, 4).mean_hops());
        // Concentrating 64 nodes onto a 4x4 grid beats spreading them 8x8.
        assert!(CMesh::new(4, 4, 4).mean_hops() < Mesh::new(8, 8).mean_hops());
    }

    #[test]
    fn fabric_selection_follows_the_config() {
        let mesh = Fabric::from_config(&NocConfig::mesh(8, 8)).unwrap();
        assert_eq!(mesh.name(), "mesh");
        assert_eq!(mesh.num_nodes(), 64);
        assert_eq!(mesh.mean_hops(), Mesh::new(8, 8).mean_hops());

        let torus = Fabric::from_config(&NocConfig::torus(8, 8)).unwrap();
        assert_eq!(torus.name(), "torus");
        assert_eq!(torus.num_nodes(), 64);
        assert_eq!(torus.hops(NodeId::new(0), NodeId::new(7)), 1);

        let cmesh = Fabric::from_config(&NocConfig::cmesh(4, 4, 4)).unwrap();
        assert_eq!(cmesh.name(), "cmesh");
        assert_eq!(cmesh.num_nodes(), 64);
        assert_eq!(cmesh.hops(NodeId::new(0), NodeId::new(1)), 0);
    }
}

//! The TCP front door: accept loop, per-connection keep-alive loop, and
//! the chunked JSONL result stream.
//!
//! One thread per connection (simulation jobs dwarf connection counts;
//! the scheduler — not the listener — is the concurrency limiter). Each
//! connection runs a [`RequestParser`] so pipelined requests and short
//! reads both behave, answers parse failures with their typed 4xx/5xx
//! and closes, and otherwise routes through [`Api::handle`]. Result
//! streams are written with chunked transfer encoding, flushing row by
//! row as the scheduler lands them.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use allarm_core::{JobId, JobScheduler, SchedulerConfig};

use crate::api::{Api, Handled};
use crate::http::{
    error_response, finish_chunked, start_chunked, write_chunk, HttpLimits, RequestParser,
    StatusCode,
};

/// Everything a [`Server`] needs to start.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Parser size limits for every connection.
    pub limits: HttpLimits,
    /// Sizing of the job scheduler behind the API.
    pub scheduler: SchedulerConfig,
}

/// A running server: a bound listener, its accept thread, and the shared
/// [`Api`]. Dropping the handle stops accepting new connections and shuts
/// the scheduler down (established streams finish on their own threads).
#[derive(Debug)]
pub struct Server {
    api: Arc<Api>,
    addr: SocketAddr,
    limits: HttpLimits,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:8642`; port `0` picks a free one —
    /// read it back with [`Server::local_addr`]), starts the scheduler
    /// and the accept thread, and returns the handle.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let api = Arc::new(Api::new(Arc::new(JobScheduler::start(config.scheduler))));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let api = Arc::clone(&api);
            let stop = Arc::clone(&stop);
            let limits = config.limits;
            std::thread::spawn(move || accept_loop(&listener, &api, limits, &stop));
        }
        Ok(Server {
            api,
            addr: local,
            limits: config.limits,
            stop,
        })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared API (e.g. to reach the scheduler in-process).
    pub fn api(&self) -> &Arc<Api> {
        &self.api
    }

    /// The parser limits every connection enforces.
    pub fn limits(&self) -> HttpLimits {
        self.limits
    }

    /// Stops accepting connections and shuts the scheduler down. Called
    /// on drop; explicit calls are idempotent.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.api.scheduler().shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, api: &Arc<Api>, limits: HttpLimits, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let api = Arc::clone(api);
        std::thread::spawn(move || {
            // A client vanishing mid-exchange surfaces as an I/O error
            // here; that ends its connection thread and nothing else.
            let _ = serve_connection(&api, stream, limits);
        });
    }
}

/// Runs one connection's keep-alive loop until the peer closes, a request
/// asks to close, or a parse error forces a close.
fn serve_connection(api: &Api, mut stream: TcpStream, limits: HttpLimits) -> io::Result<()> {
    let mut parser = RequestParser::new(limits);
    let mut read_buf = [0u8; 8192];
    loop {
        // Serve everything already buffered (pipelining) before reading.
        match parser.try_next() {
            Ok(Some(request)) => {
                let keep_alive = request.keep_alive();
                let bytes = match api.handle(&request) {
                    Handled::Full(response) => response.write_to(&mut stream, keep_alive)?,
                    Handled::StreamRows(id) => {
                        stream_rows(api.scheduler(), &mut stream, id, keep_alive)?
                    }
                };
                api.note_bytes_served(bytes);
                if !keep_alive {
                    return Ok(());
                }
            }
            Ok(None) => {
                let n = stream.read(&mut read_buf)?;
                if n == 0 {
                    return Ok(()); // peer closed
                }
                parser.push(&read_buf[..n]);
            }
            Err(e) => {
                // Typed refusal, then close: the stream cannot be
                // resynchronized after malformed framing.
                let bytes = error_response(&e).write_to(&mut stream, false)?;
                api.note_bytes_served(bytes);
                return Ok(());
            }
        }
    }
}

/// Streams a job's JSONL rows as one chunked `200`, blocking on the
/// scheduler until rows land and ending when the job is terminal. Every
/// chunk is flushed, so a client following a running job sees each row as
/// it completes.
fn stream_rows(
    scheduler: &JobScheduler,
    stream: &mut TcpStream,
    id: JobId,
    keep_alive: bool,
) -> io::Result<u64> {
    let mut total = start_chunked(stream, StatusCode(200), "application/jsonl", keep_alive)?;
    let mut from = 0;
    loop {
        // The API resolved the id before routing here, and jobs are never
        // removed, so the lookup holds.
        let chunk = scheduler.wait_rows(id, from).expect("job id pre-resolved");
        let mut payload = String::new();
        for row in &chunk.rows {
            payload.push_str(row);
            payload.push('\n');
        }
        total += write_chunk(stream, payload.as_bytes())?;
        from += chunk.rows.len();
        if chunk.done {
            break;
        }
    }
    total += finish_chunked(stream)?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::decode_chunked;
    use allarm_core::{
        AllocationPolicy, BatchRunner, Benchmark, JsonlSink, Scenario, ScenarioGrid,
    };
    use std::io::Write;

    fn grid() -> ScenarioGrid {
        ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
    }

    /// One round trip on a fresh connection; returns (head, body bytes).
    fn exchange(addr: SocketAddr, request: &str) -> (String, Vec<u8>) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut wire = Vec::new();
        stream.read_to_end(&mut wire).unwrap();
        let split = wire
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("complete head");
        (
            String::from_utf8(wire[..split].to_vec()).unwrap(),
            wire[split + 4..].to_vec(),
        )
    }

    #[test]
    fn the_server_serves_a_job_end_to_end_over_tcp() {
        let grid = grid();
        let mut reference = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(&grid.expand(), &mut reference)
            .unwrap();
        let reference = reference.into_string();

        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();

        let body = grid.to_toml().unwrap();
        let (head, _) = exchange(
            addr,
            &format!(
                "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(head.starts_with("HTTP/1.1 201 Created"), "{head}");

        // The streamed results, de-chunked, are byte-identical to the
        // JSONL sink on the same document.
        let (head, body) = exchange(
            addr,
            "GET /v1/jobs/0/results HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("Transfer-Encoding: chunked"), "{head}");
        let streamed = decode_chunked(&body).expect("well-formed chunking");
        assert_eq!(String::from_utf8(streamed).unwrap(), reference);

        // Metrics count the served bytes and the finished job.
        let (head, body) = exchange(addr, "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("allarm_jobs_done 1\n"), "{text}");
        assert!(!text.contains("allarm_bytes_served_total 0\n"), "{text}");
    }

    #[test]
    fn keep_alive_connections_serve_several_requests() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();

        // Two pipelined requests in one segment, then a closing one.
        stream
            .write_all(
                b"GET /metrics HTTP/1.1\r\n\r\nGET /v1/jobs/0 HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let mut wire = Vec::new();
        stream.read_to_end(&mut wire).unwrap();
        let text = String::from_utf8_lossy(&wire);
        let oks = text.matches("HTTP/1.1 200 OK").count();
        let missing = text.matches("HTTP/1.1 404 Not Found").count();
        assert_eq!((oks, missing), (2, 1), "{text}");
    }

    #[test]
    fn malformed_requests_get_a_typed_refusal_and_a_close() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let (head, body) = exchange(server.local_addr(), "PBBBT\r\n\r\n");
        assert!(head.starts_with("HTTP/1.1 400 Bad Request"), "{head}");
        assert!(head.contains("Connection: close"), "{head}");
        assert!(String::from_utf8(body).unwrap().contains("error"));

        // The server survives the abuse.
        let (head, _) = exchange(
            server.local_addr(),
            "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }

    #[test]
    fn oversized_bodies_are_refused_at_the_configured_limit() {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                limits: HttpLimits {
                    max_body_bytes: 64,
                    ..HttpLimits::default()
                },
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let (head, _) = exchange(
            server.local_addr(),
            &format!(
                "POST /v1/jobs HTTP/1.1\r\nContent-Length: 4096\r\n\r\n{}",
                "x".repeat(4096)
            ),
        );
        assert!(head.starts_with("HTTP/1.1 413 Payload Too Large"), "{head}");
    }
}

//! A hand-rolled HTTP/1.1 layer: request parsing with hard size limits,
//! response encoding, and chunked transfer encoding for streams.
//!
//! Modeled on the `micro_http`/`api_server` split: this module knows
//! *nothing* about jobs or scenarios — it turns bytes into [`Request`]s
//! (incrementally, so short reads and pipelined keep-alive connections
//! both work) and [`Response`]s back into bytes. Everything the simulator
//! needs is implemented by hand on `std::net`; there is no external HTTP
//! dependency, and no feature beyond what the API layer uses: `GET`,
//! `POST` and `DELETE`, `Content-Length` bodies, keep-alive, and chunked
//! responses.
//!
//! Every way a request can be malformed or oversized maps to a typed
//! [`HttpError`] with a 4xx/5xx status, so the connection loop can answer
//! adversarial input with a proper error response instead of dying (or
//! worse, buffering without bound — see [`HttpLimits`]).

use std::fmt;
use std::io::{self, Write};

/// Hard ceilings the parser enforces while a request is still arriving,
/// so a hostile peer cannot make the server buffer without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpLimits {
    /// Longest accepted request line (method + target + version), bytes.
    /// Exceeding it answers `414 URI Too Long`.
    pub max_request_line_bytes: usize,
    /// Longest accepted header section (request line included), bytes.
    /// Exceeding it answers `431 Request Header Fields Too Large`.
    pub max_head_bytes: usize,
    /// Largest accepted `Content-Length` body, bytes. Exceeding it
    /// answers `413 Payload Too Large` — as soon as the declared length is
    /// seen, without waiting for the body.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_request_line_bytes: 8 * 1024,
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// The request methods the API layer routes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
    /// `DELETE`.
    Delete,
}

impl Method {
    fn parse(token: &str) -> Result<Method, HttpError> {
        match token {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "DELETE" => Ok(Method::Delete),
            // A well-formed token we simply don't serve gets the honest
            // 501; anything else is a malformed request line.
            other if !other.is_empty() && other.bytes().all(|b| b.is_ascii_uppercase()) => {
                Err(HttpError::NotImplemented(format!("method {other}")))
            }
            other => Err(HttpError::BadRequest(format!(
                "malformed method token {other:?}"
            ))),
        }
    }

    /// The method's wire name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Delete => "DELETE",
        }
    }
}

/// The protocol versions the server speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0` — connections close by default.
    Http10,
    /// `HTTP/1.1` — connections persist by default.
    Http11,
}

impl Version {
    fn parse(token: &str) -> Result<Version, HttpError> {
        match token {
            "HTTP/1.1" => Ok(Version::Http11),
            "HTTP/1.0" => Ok(Version::Http10),
            other if other.starts_with("HTTP/") => {
                Err(HttpError::VersionNotSupported(other.to_string()))
            }
            other => Err(HttpError::BadRequest(format!(
                "malformed protocol version {other:?}"
            ))),
        }
    }
}

/// One parsed request: line, headers, and (fully buffered) body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The raw request target (path plus optional `?query`).
    pub target: String,
    /// The protocol version.
    pub version: Version,
    /// Header name/value pairs in arrival order (names as sent; use
    /// [`Request::header`] for case-insensitive lookup).
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless a `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match wins).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (everything before `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's query component, as `key=value` pairs split on `&`.
    pub fn query_pairs(&self) -> Vec<(&str, &str)> {
        match self.target.split_once('?') {
            Some((_, query)) => query
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| kv.split_once('=').unwrap_or((kv, "")))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Whether the connection should persist after this exchange:
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == Version::Http11,
        }
    }
}

/// Every way a request can be rejected, each carrying its wire status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header, or `Content-Length` — `400`.
    BadRequest(String),
    /// A `POST` with a body-bearing method but no `Content-Length` — `411`.
    LengthRequired,
    /// Declared body beyond [`HttpLimits::max_body_bytes`] — `413`.
    PayloadTooLarge {
        /// The configured ceiling that was exceeded.
        limit: usize,
    },
    /// Request line beyond [`HttpLimits::max_request_line_bytes`] — `414`.
    RequestLineTooLong {
        /// The configured ceiling that was exceeded.
        limit: usize,
    },
    /// Header section beyond [`HttpLimits::max_head_bytes`] — `431`.
    HeadersTooLarge {
        /// The configured ceiling that was exceeded.
        limit: usize,
    },
    /// A well-formed request for a feature the server does not implement
    /// (unsupported method, `Transfer-Encoding` request bodies) — `501`.
    NotImplemented(String),
    /// A protocol version other than 1.0/1.1 — `505`.
    VersionNotSupported(String),
}

impl HttpError {
    /// The response status this error answers with.
    pub fn status(&self) -> StatusCode {
        match self {
            HttpError::BadRequest(_) => StatusCode(400),
            HttpError::LengthRequired => StatusCode(411),
            HttpError::PayloadTooLarge { .. } => StatusCode(413),
            HttpError::RequestLineTooLong { .. } => StatusCode(414),
            HttpError::HeadersTooLarge { .. } => StatusCode(431),
            HttpError::NotImplemented(_) => StatusCode(501),
            HttpError::VersionNotSupported(_) => StatusCode(505),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::LengthRequired => {
                write!(f, "a request body requires a Content-Length header")
            }
            HttpError::PayloadTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            HttpError::RequestLineTooLong { limit } => {
                write!(f, "request line exceeds the {limit}-byte limit")
            }
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "header section exceeds the {limit}-byte limit")
            }
            HttpError::NotImplemented(what) => write!(f, "not implemented: {what}"),
            HttpError::VersionNotSupported(v) => write!(f, "unsupported protocol version {v}"),
        }
    }
}

/// An incremental request parser over one connection's byte stream.
///
/// Feed raw reads in with [`RequestParser::push`]; pull complete requests
/// out with [`RequestParser::try_next`]. Bytes beyond one request stay
/// buffered, so a client that pipelines several requests in one segment
/// gets them served in order, and a request arriving one byte at a time
/// (short reads) assembles correctly.
#[derive(Debug)]
pub struct RequestParser {
    limits: HttpLimits,
    buf: Vec<u8>,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    pub fn new(limits: HttpLimits) -> Self {
        RequestParser {
            limits,
            buf: Vec::new(),
        }
    }

    /// Appends freshly read bytes to the parse buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (useful to detect trailing garbage).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request from the front of the buffer.
    ///
    /// Returns `Ok(Some(_))` and consumes the request's bytes when one is
    /// fully buffered, `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// A typed [`HttpError`] as soon as the input is *provably* invalid or
    /// over a limit — possibly before it is complete (an oversized
    /// `Content-Length` is rejected without waiting for the body). After
    /// an error the connection should answer and close; the buffer is not
    /// resynchronized.
    pub fn try_next(&mut self) -> Result<Option<Request>, HttpError> {
        // Locate the end of the header section first.
        let Some(head_len) = find(&self.buf, b"\r\n\r\n") else {
            // Incomplete — but already over a limit?
            if find(&self.buf, b"\r\n").is_none()
                && self.buf.len() > self.limits.max_request_line_bytes
            {
                return Err(HttpError::RequestLineTooLong {
                    limit: self.limits.max_request_line_bytes,
                });
            }
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(HttpError::HeadersTooLarge {
                    limit: self.limits.max_head_bytes,
                });
            }
            return Ok(None);
        };
        if head_len > self.limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge {
                limit: self.limits.max_head_bytes,
            });
        }

        let head = std::str::from_utf8(&self.buf[..head_len])
            .map_err(|_| HttpError::BadRequest("header section is not valid UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        if request_line.len() > self.limits.max_request_line_bytes {
            return Err(HttpError::RequestLineTooLong {
                limit: self.limits.max_request_line_bytes,
            });
        }
        let (method, target, version) = parse_request_line(request_line)?;
        let headers = lines
            .map(parse_header_line)
            .collect::<Result<Vec<_>, _>>()?;

        let request = Request {
            method,
            target,
            version,
            headers,
            body: Vec::new(),
        };

        // Body framing. Chunked request bodies are not implemented (the
        // API's documents are small); declared lengths are bounded.
        if request.header("transfer-encoding").is_some() {
            return Err(HttpError::NotImplemented(
                "Transfer-Encoding request bodies".into(),
            ));
        }
        let body_len = match request.header("content-length") {
            Some(v) => v.trim().parse::<usize>().map_err(|_| {
                HttpError::BadRequest(format!("malformed Content-Length {:?}", v.trim()))
            })?,
            None if request.method == Method::Post => return Err(HttpError::LengthRequired),
            None => 0,
        };
        if body_len > self.limits.max_body_bytes {
            return Err(HttpError::PayloadTooLarge {
                limit: self.limits.max_body_bytes,
            });
        }

        let body_start = head_len + 4;
        if self.buf.len() < body_start + body_len {
            return Ok(None); // body still arriving
        }
        let mut request = request;
        request.body = self.buf[body_start..body_start + body_len].to_vec();
        self.buf.drain(..body_start + body_len);
        Ok(Some(request))
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn parse_request_line(line: &str) -> Result<(Method, String, Version), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line {line:?}"
        )));
    };
    let method = Method::parse(method)?;
    let version = Version::parse(version)?;
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target {target:?} must start with '/'"
        )));
    }
    Ok((method, target.to_string(), version))
}

fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::BadRequest(format!(
            "malformed header line {line:?}"
        )));
    };
    if name.is_empty() || name.contains(' ') || name.contains('\t') {
        return Err(HttpError::BadRequest(format!(
            "malformed header name {name:?}"
        )));
    }
    Ok((name.to_string(), value.trim().to_string()))
}

/// A response status code; known codes carry their reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// The standard reason phrase for the code.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            411 => "Length Required",
            413 => "Payload Too Large",
            414 => "URI Too Long",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }
}

/// A complete (non-streaming) response: status, headers, body.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The status line's code.
    pub status: StatusCode,
    /// Extra headers (`Content-Length` and `Connection` are added when
    /// writing; don't set them here).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: StatusCode) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `application/json` response.
    pub fn json(status: StatusCode, body: String) -> Self {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into_bytes())
    }

    /// A `text/plain` response.
    pub fn text(status: StatusCode, body: String) -> Self {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into_bytes())
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Serializes the response (with `Content-Length` framing and the
    /// appropriate `Connection` header) into `w`, returning the bytes
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<u64> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason());
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: {}\r\n\r\n",
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        ));
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()?;
        Ok((head.len() + self.body.len()) as u64)
    }
}

/// The error response the connection loop answers a parse failure with:
/// the error's status and a JSON body naming the problem.
pub fn error_response(error: &HttpError) -> Response {
    Response::json(
        error.status(),
        format!("{{\"error\": {}}}", json_escape(&error.to_string())),
    )
}

/// Renders `text` as a JSON string literal (quotes included).
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Starts a chunked (streaming) response: writes the status line and
/// headers with `Transfer-Encoding: chunked`, returning the bytes written.
/// Follow with any number of [`write_chunk`]s and one [`finish_chunked`].
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn start_chunked<W: Write>(
    w: &mut W,
    status: StatusCode,
    content_type: &str,
    keep_alive: bool,
) -> io::Result<u64> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        status.0,
        status.reason(),
        content_type,
        if keep_alive { "keep-alive" } else { "close" }
    );
    w.write_all(head.as_bytes())?;
    w.flush()?;
    Ok(head.len() as u64)
}

/// Writes one chunk of a chunked response (empty input writes nothing —
/// an empty chunk would terminate the stream), returning the bytes
/// written. Flushes, so a long-polling client sees rows as they land.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chunk<W: Write>(w: &mut W, data: &[u8]) -> io::Result<u64> {
    if data.is_empty() {
        return Ok(0);
    }
    let head = format!("{:x}\r\n", data.len());
    w.write_all(head.as_bytes())?;
    w.write_all(data)?;
    w.write_all(b"\r\n")?;
    w.flush()?;
    Ok((head.len() + data.len() + 2) as u64)
}

/// Terminates a chunked response (the zero-length chunk), returning the
/// bytes written.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn finish_chunked<W: Write>(w: &mut W) -> io::Result<u64> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()?;
    Ok(5)
}

/// Decodes a chunked transfer-encoded byte stream back into its payload.
/// Returns `None` on malformed framing or a missing terminator. (The
/// in-tree test client; real HTTP clients de-chunk themselves.)
pub fn decode_chunked(mut body: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        let line_end = find(body, b"\r\n")?;
        let size = usize::from_str_radix(std::str::from_utf8(&body[..line_end]).ok()?, 16).ok()?;
        body = &body[line_end + 2..];
        if size == 0 {
            return Some(out);
        }
        if body.len() < size + 2 || &body[size..size + 2] != b"\r\n" {
            return None;
        }
        out.extend_from_slice(&body[..size]);
        body = &body[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(input: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut parser = RequestParser::new(HttpLimits::default());
        parser.push(input);
        parser.try_next()
    }

    #[test]
    fn a_simple_get_parses() {
        let req = parse_one(b"GET /v1/jobs/3?x=1&y=2 HTTP/1.1\r\nHost: localhost\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path(), "/v1/jobs/3");
        assert_eq!(req.query_pairs(), vec![("x", "1"), ("y", "2")]);
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("HOST"), Some("localhost"));
        assert!(req.keep_alive());
        assert!(req.body.is_empty());
    }

    #[test]
    fn a_post_with_a_body_parses() {
        let req = parse_one(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn keep_alive_defaults_follow_the_version() {
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
        let req = parse_one(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn short_reads_assemble_one_request() {
        // One byte at a time: the parser must keep answering "not yet"
        // without losing anything, then produce the request.
        let wire = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        let mut parser = RequestParser::new(HttpLimits::default());
        for (i, byte) in wire.iter().enumerate() {
            assert_eq!(parser.try_next().unwrap(), None, "complete at byte {i}?");
            parser.push(&[*byte]);
        }
        let req = parser.try_next().unwrap().unwrap();
        assert_eq!(req.body, b"abc");
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let mut parser = RequestParser::new(HttpLimits::default());
        parser.push(
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n",
        );
        let first = parser.try_next().unwrap().unwrap();
        assert_eq!((first.method, first.path()), (Method::Post, "/a"));
        assert_eq!(first.body, b"hi");
        let second = parser.try_next().unwrap().unwrap();
        assert_eq!((second.method, second.path()), (Method::Get, "/b"));
        let third = parser.try_next().unwrap().unwrap();
        assert_eq!(third.path(), "/c");
        assert_eq!(parser.try_next().unwrap(), None);
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for wire in [
            &b"GET\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET no-slash HTTP/1.1\r\n\r\n",
            b"GET / TTYP/9\r\n\r\n",
        ] {
            let err = parse_one(wire).unwrap_err();
            assert_eq!(err.status(), StatusCode(400), "{wire:?} -> {err}");
        }
    }

    #[test]
    fn malformed_headers_are_400() {
        let err = parse_one(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), StatusCode(400));
        let err = parse_one(b"GET / HTTP/1.1\r\nbad name: x\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), StatusCode(400));
        let err = parse_one(b"POST / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), StatusCode(400));
    }

    #[test]
    fn unimplemented_features_are_501() {
        let err = parse_one(b"PUT / HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), StatusCode(501));
        let err = parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), StatusCode(501));
    }

    #[test]
    fn unsupported_versions_are_505() {
        let err = parse_one(b"GET / HTTP/2.0\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), StatusCode(505));
        assert!(err.to_string().contains("HTTP/2.0"));
    }

    #[test]
    fn a_post_without_content_length_is_411() {
        let err = parse_one(b"POST /v1/jobs HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), StatusCode(411));
    }

    #[test]
    fn limits_reject_oversized_input_with_the_right_status() {
        let limits = HttpLimits {
            max_request_line_bytes: 64,
            max_head_bytes: 256,
            max_body_bytes: 128,
        };

        // Request line over its limit — even before any CRLF arrives.
        let mut parser = RequestParser::new(limits);
        parser.push(format!("GET /{} HTTP/1.1", "x".repeat(100)).as_bytes());
        let err = parser.try_next().unwrap_err();
        assert_eq!(err.status(), StatusCode(414), "{err}");

        // Header section over its limit, complete or not.
        let mut parser = RequestParser::new(limits);
        parser.push(format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(300)).as_bytes());
        let err = parser.try_next().unwrap_err();
        assert_eq!(err.status(), StatusCode(431), "{err}");
        let mut parser = RequestParser::new(limits);
        parser.push(format!("GET / HTTP/1.1\r\nX-Pad: {}", "y".repeat(300)).as_bytes());
        let err = parser.try_next().unwrap_err();
        assert_eq!(err.status(), StatusCode(431), "{err}");

        // Declared body over its limit — rejected from the head alone,
        // without waiting for (or buffering) the body.
        let mut parser = RequestParser::new(limits);
        parser.push(b"POST / HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
        let err = parser.try_next().unwrap_err();
        assert_eq!(err.status(), StatusCode(413), "{err}");

        // At the limit everything is fine.
        let mut parser = RequestParser::new(limits);
        let body = "z".repeat(128);
        parser.push(format!("POST / HTTP/1.1\r\nContent-Length: 128\r\n\r\n{body}").as_bytes());
        let req = parser.try_next().unwrap().unwrap();
        assert_eq!(req.body.len(), 128);
    }

    #[test]
    fn responses_serialize_with_length_framing() {
        let mut wire = Vec::new();
        let n = Response::json(StatusCode(201), "{\"id\": 1}".into())
            .write_to(&mut wire, true)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert_eq!(n as usize, text.len());
        assert!(text.starts_with("HTTP/1.1 201 Created\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 9\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\": 1}"));
    }

    #[test]
    fn chunked_responses_round_trip() {
        let mut wire = Vec::new();
        let mut total =
            start_chunked(&mut wire, StatusCode(200), "application/jsonl", false).unwrap();
        total += write_chunk(&mut wire, b"{\"row\": 0}\n").unwrap();
        total += write_chunk(&mut wire, b"").unwrap(); // no-op, not a terminator
        total += write_chunk(&mut wire, b"{\"row\": 1}\n").unwrap();
        total += finish_chunked(&mut wire).unwrap();
        assert_eq!(total as usize, wire.len());

        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
        let body_start = text.find("\r\n\r\n").unwrap() + 4;
        let decoded = decode_chunked(&wire[body_start..]).unwrap();
        assert_eq!(decoded, b"{\"row\": 0}\n{\"row\": 1}\n");
    }

    #[test]
    fn error_responses_carry_json_bodies() {
        let resp = error_response(&HttpError::PayloadTooLarge { limit: 7 });
        assert_eq!(resp.status, StatusCode(413));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("7-byte limit"), "{body}");
        assert!(body.starts_with("{\"error\": \""));
        // Escaping holds for hostile strings.
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}

//! Simulation-as-a-service: a dependency-free HTTP/1.1 front door over
//! the `allarm_core` job scheduler.
//!
//! The crate splits like firecracker's `micro_http`/`api_server` pair:
//!
//! * [`http`] — the wire. A hand-rolled HTTP/1.1 request parser with hard
//!   size limits (incremental, so short reads and pipelined keep-alive
//!   connections work), response encoding, and chunked transfer encoding
//!   for streams. Knows nothing about simulations.
//! * [`api`] — the semantics. Routes requests onto a shared
//!   [`allarm_core::JobScheduler`], parsing scenario documents through
//!   the same loader as `scenario_run`/`trace_tool` so every front door
//!   rejects a malformed document with identical error text.
//! * [`server`] — the sockets. Listener, per-connection keep-alive loop,
//!   and the chunked JSONL result stream.
//!
//! Everything is `std::net` + in-tree crates: this workspace builds with
//! no network access, so the server is implemented by hand rather than
//! pulled in as a dependency.
//!
//! # Quick start
//!
//! ```
//! use allarm_server::{Server, ServerConfig};
//! use std::io::{Read, Write};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut conn = std::net::TcpStream::connect(server.local_addr()).unwrap();
//! conn.write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
//! let mut reply = String::new();
//! conn.read_to_string(&mut reply).unwrap();
//! assert!(reply.starts_with("HTTP/1.1 200 OK"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod http;
pub mod server;

pub use api::{status_json, Api, Handled};
pub use http::{HttpError, HttpLimits, Method, Request, RequestParser, Response, StatusCode};
pub use server::{Server, ServerConfig};

//! The typed API layer: routes parsed [`Request`]s onto the job
//! scheduler.
//!
//! The split mirrors `micro_http`/`api_server`: [`crate::http`] owns the
//! wire, this module owns the semantics. Every endpoint parses into the
//! existing `allarm_core` types — scenario documents go through the same
//! [`parse_scenario_doc`] path as `scenario_run` and `trace_tool`, so a
//! malformed POST body gets the identical error text (naming the format
//! the body was parsed as) a malformed file would get on the CLI.
//!
//! Routes:
//!
//! | Method   | Path                    | Answer                           |
//! |----------|-------------------------|----------------------------------|
//! | `POST`   | `/v1/jobs`              | `201` + job status (or `429`)    |
//! | `GET`    | `/v1/jobs/<id>`         | `200` + job status               |
//! | `GET`    | `/v1/jobs/<id>/results` | `200` chunked JSONL row stream   |
//! | `DELETE` | `/v1/jobs/<id>`         | `200` + post-cancel job status   |
//! | `GET`    | `/metrics`              | `200` plain-text counters        |
//!
//! `POST /v1/jobs` accepts a scenario document as TOML or JSON: an
//! explicit `Content-Type` mentioning `json` or `toml` decides, otherwise
//! the body is sniffed ([`allarm_core::doc::sniff_is_json`]). The query
//! parameters `?accesses=N` and `?sim_threads=N` mirror `scenario_run`'s
//! `--accesses`/`--sim-threads` flags, applied identically — so a job's
//! streamed results are byte-for-byte the file `scenario_run --output`
//! writes for the same document and overrides.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use allarm_core::doc::{parse_scenario_doc, sniff_is_json};
use allarm_core::{JobId, JobScheduler, JobStatus, SimThreads, SubmitError};
use serde::Value;

use crate::http::{json_escape, Method, Request, Response, StatusCode};

/// How the connection layer must answer a routed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Handled {
    /// Write this complete response.
    Full(Response),
    /// Stream the job's JSONL rows as a chunked `200` until the job is
    /// terminal (the job id is known to exist).
    StreamRows(JobId),
}

/// The API: a routing table over one shared [`JobScheduler`].
#[derive(Debug)]
pub struct Api {
    scheduler: Arc<JobScheduler>,
    bytes_served: AtomicU64,
}

impl Api {
    /// An API over `scheduler`.
    pub fn new(scheduler: Arc<JobScheduler>) -> Self {
        Api {
            scheduler,
            bytes_served: AtomicU64::new(0),
        }
    }

    /// The scheduler behind the API (the connection layer streams rows
    /// from it directly).
    pub fn scheduler(&self) -> &Arc<JobScheduler> {
        &self.scheduler
    }

    /// Adds to the served-bytes counter (the connection layer reports
    /// every response it writes, full or streamed).
    pub fn note_bytes_served(&self, n: u64) {
        self.bytes_served.fetch_add(n, Ordering::Relaxed);
    }

    /// Routes one request. Infallible by construction: every failure mode
    /// is a typed error *response*.
    pub fn handle(&self, request: &Request) -> Handled {
        let segments: Vec<&str> = request
            .path()
            .split('/')
            .filter(|s| !s.is_empty())
            .collect();
        match (request.method, segments.as_slice()) {
            (Method::Post, ["v1", "jobs"]) => Handled::Full(self.submit(request)),
            (Method::Get, ["v1", "jobs", id]) => Handled::Full(self.status(id)),
            (Method::Get, ["v1", "jobs", id, "results"]) => self.results(id),
            (Method::Delete, ["v1", "jobs", id]) => Handled::Full(self.cancel(id)),
            (Method::Get, ["metrics"]) => Handled::Full(self.metrics()),
            _ => Handled::Full(error(
                StatusCode(404),
                &format!("no route for {} {}", request.method.name(), request.path()),
            )),
        }
    }

    fn submit(&self, request: &Request) -> Response {
        let Ok(text) = std::str::from_utf8(&request.body) else {
            return error(StatusCode(400), "request body is not valid UTF-8");
        };
        // Content negotiation: an explicit Content-Type wins, bare text is
        // sniffed (both document shapes serialize as a JSON object, so a
        // leading '{' means JSON).
        let is_toml = match request.header("content-type") {
            Some(ct) if ct.to_ascii_lowercase().contains("json") => false,
            Some(ct) if ct.to_ascii_lowercase().contains("toml") => true,
            _ => !sniff_is_json(text),
        };
        let doc = match parse_scenario_doc(text, is_toml) {
            Ok(doc) => doc,
            Err(e) => return error(StatusCode(400), &e),
        };
        if let Err(e) = doc.validate() {
            return error(StatusCode(400), &e.to_string());
        }

        let mut scenarios = doc.expand();
        // The same overrides scenario_run applies for --sim-threads and
        // --accesses, in the same order.
        for (key, value) in request.query_pairs() {
            let parsed: Result<usize, _> = value.parse();
            match (key, parsed) {
                ("sim_threads", Ok(n)) => {
                    for scenario in &mut scenarios {
                        scenario.sim_threads = SimThreads(n);
                    }
                }
                ("accesses", Ok(n)) => {
                    for scenario in &mut scenarios {
                        scenario.workload = scenario.workload.with_accesses(n);
                    }
                }
                ("sim_threads" | "accesses", Err(_)) => {
                    return error(
                        StatusCode(400),
                        &format!("query parameter {key} needs a number, got {value:?}"),
                    );
                }
                _ => {
                    return error(StatusCode(400), &format!("unknown query parameter {key:?}"));
                }
            }
        }

        match self.scheduler.submit(scenarios) {
            Ok(id) => {
                // The job exists, so the status lookup cannot miss.
                let status = self.scheduler.status(id).expect("job just submitted");
                Response::json(StatusCode(201), status_json(&status))
            }
            Err(e @ SubmitError::Invalid(_)) => error(StatusCode(400), &e.to_string()),
            Err(e @ SubmitError::QueueFull { .. }) => error(StatusCode(429), &e.to_string()),
            Err(e @ SubmitError::ShuttingDown) => error(StatusCode(503), &e.to_string()),
        }
    }

    fn status(&self, id: &str) -> Response {
        match self.lookup(id) {
            Ok(status) => Response::json(StatusCode(200), status_json(&status)),
            Err(resp) => resp,
        }
    }

    fn results(&self, id: &str) -> Handled {
        // Decide 404 vs stream *before* any bytes go out: a chunked 200
        // cannot be downgraded once its head is written.
        match self.lookup(id) {
            Ok(status) => Handled::StreamRows(status.id),
            Err(resp) => Handled::Full(resp),
        }
    }

    fn cancel(&self, id: &str) -> Response {
        let Ok(parsed) = parse_id(id) else {
            return error(StatusCode(404), &format!("malformed job id {id:?}"));
        };
        match self.scheduler.cancel(parsed) {
            Some(status) => Response::json(StatusCode(200), status_json(&status)),
            None => error(StatusCode(404), &format!("no job {id}")),
        }
    }

    fn metrics(&self) -> Response {
        let m = self.scheduler.metrics();
        let body = format!(
            "allarm_jobs_queued {}\n\
             allarm_jobs_running {}\n\
             allarm_jobs_done {}\n\
             allarm_jobs_failed {}\n\
             allarm_jobs_cancelled {}\n\
             allarm_jobs_rejected_total {}\n\
             allarm_rows_completed_total {}\n\
             allarm_queue_depth_limit {}\n\
             allarm_bytes_served_total {}\n",
            m.jobs_queued,
            m.jobs_running,
            m.jobs_done,
            m.jobs_failed,
            m.jobs_cancelled,
            m.jobs_rejected_total,
            m.rows_completed_total,
            self.scheduler.config().max_queue_depth,
            self.bytes_served.load(Ordering::Relaxed),
        );
        Response::text(StatusCode(200), body)
    }

    fn lookup(&self, id: &str) -> Result<JobStatus, Response> {
        let parsed = parse_id(id)
            .map_err(|()| error(StatusCode(404), &format!("malformed job id {id:?}")))?;
        self.scheduler
            .status(parsed)
            .ok_or_else(|| error(StatusCode(404), &format!("no job {id}")))
    }
}

fn parse_id(id: &str) -> Result<JobId, ()> {
    id.parse::<u64>().map(JobId).map_err(|_| ())
}

/// Renders a [`JobStatus`] as the wire JSON object.
pub fn status_json(status: &JobStatus) -> String {
    let value = Value::Map(vec![
        ("id".into(), Value::U64(status.id.0)),
        ("state".into(), Value::Str(status.state.name().into())),
        (
            "rows_completed".into(),
            Value::U64(status.rows_completed as u64),
        ),
        ("rows_total".into(), Value::U64(status.rows_total as u64)),
        (
            "error".into(),
            match &status.error {
                Some(e) => Value::Str(e.clone()),
                None => Value::Null,
            },
        ),
    ]);
    serde_json::to_string(&value)
}

fn error(status: StatusCode, message: &str) -> Response {
    Response::json(status, format!("{{\"error\": {}}}", json_escape(message)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use allarm_core::{
        AllocationPolicy, Benchmark, JobState, Scenario, ScenarioGrid, SchedulerConfig,
    };

    fn api(config: SchedulerConfig) -> Api {
        Api::new(Arc::new(JobScheduler::start(config)))
    }

    fn request(method: Method, target: &str, body: &[u8]) -> Request {
        Request {
            method,
            target: target.to_string(),
            version: crate::http::Version::Http11,
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    fn grid_toml() -> String {
        ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .to_toml()
        .unwrap()
    }

    fn full(api: &Api, req: &Request) -> Response {
        match api.handle(req) {
            Handled::Full(resp) => resp,
            other => panic!("expected a full response, got {other:?}"),
        }
    }

    #[test]
    fn submit_then_status_then_results_round_trip() {
        let api = api(SchedulerConfig::default());
        let resp = full(
            &api,
            &request(Method::Post, "/v1/jobs", grid_toml().as_bytes()),
        );
        assert_eq!(resp.status, StatusCode(201));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"id\":0"), "{body}");
        assert!(body.contains("\"rows_total\":2"), "{body}");

        api.scheduler().wait_terminal(JobId(0)).unwrap();
        let resp = full(&api, &request(Method::Get, "/v1/jobs/0", b""));
        assert_eq!(resp.status, StatusCode(200));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"state\":\"done\""), "{body}");
        assert!(body.contains("\"rows_completed\":2"), "{body}");
        assert!(body.contains("\"error\":null"), "{body}");

        // Results on a known id become a stream; the id must pre-resolve.
        assert_eq!(
            api.handle(&request(Method::Get, "/v1/jobs/0/results", b"")),
            Handled::StreamRows(JobId(0))
        );
    }

    #[test]
    fn json_bodies_and_content_types_are_honoured() {
        let api = api(SchedulerConfig::default());
        let scenario =
            Scenario::quick_test(Benchmark::Cholesky, AllocationPolicy::Allarm).with_accesses(300);

        // Bare JSON body: sniffed by the leading '{'.
        let resp = full(
            &api,
            &request(Method::Post, "/v1/jobs", scenario.to_json().as_bytes()),
        );
        assert_eq!(resp.status, StatusCode(201));

        // An explicit Content-Type overrides the sniff: TOML declared as
        // JSON fails with the *JSON* parser named.
        let mut req = request(Method::Post, "/v1/jobs", grid_toml().as_bytes());
        req.headers
            .push(("Content-Type".into(), "application/json".into()));
        let resp = full(&api, &req);
        assert_eq!(resp.status, StatusCode(400));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("parsed as JSON"), "{body}");
    }

    #[test]
    fn malformed_documents_get_the_shared_loader_error() {
        let api = api(SchedulerConfig::default());
        let resp = full(&api, &request(Method::Post, "/v1/jobs", b"not = a = doc"));
        assert_eq!(resp.status, StatusCode(400));
        let body = String::from_utf8(resp.body).unwrap();
        // The same format-naming error text the CLI front doors produce.
        assert!(body.contains("parsed as TOML"), "{body}");
    }

    #[test]
    fn query_overrides_apply_and_bad_ones_are_rejected() {
        let api = api(SchedulerConfig {
            workers: 0,
            ..SchedulerConfig::default()
        });
        let resp = full(
            &api,
            &request(
                Method::Post,
                "/v1/jobs?accesses=123&sim_threads=2",
                grid_toml().as_bytes(),
            ),
        );
        assert_eq!(resp.status, StatusCode(201));

        for target in [
            "/v1/jobs?accesses=lots",
            "/v1/jobs?sim_threads=",
            "/v1/jobs?unknown=1",
        ] {
            let resp = full(&api, &request(Method::Post, target, grid_toml().as_bytes()));
            assert_eq!(resp.status, StatusCode(400), "{target}");
        }
    }

    #[test]
    fn admission_control_answers_429_with_a_typed_error() {
        let api = api(SchedulerConfig {
            workers: 0,
            max_queue_depth: 1,
            ..SchedulerConfig::default()
        });
        let post = request(Method::Post, "/v1/jobs", grid_toml().as_bytes());
        assert_eq!(full(&api, &post).status, StatusCode(201));
        let resp = full(&api, &post);
        assert_eq!(resp.status, StatusCode(429));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("queue is full"), "{body}");
    }

    #[test]
    fn cancel_is_typed_and_unknown_ids_are_404() {
        let api = api(SchedulerConfig {
            workers: 0,
            ..SchedulerConfig::default()
        });
        full(
            &api,
            &request(Method::Post, "/v1/jobs", grid_toml().as_bytes()),
        );
        let resp = full(&api, &request(Method::Delete, "/v1/jobs/0", b""));
        assert_eq!(resp.status, StatusCode(200));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("\"state\":\"cancelled\""), "{body}");
        assert_eq!(
            api.scheduler().status(JobId(0)).unwrap().state,
            JobState::Cancelled
        );

        for req in [
            request(Method::Get, "/v1/jobs/99", b""),
            request(Method::Get, "/v1/jobs/99/results", b""),
            request(Method::Delete, "/v1/jobs/99", b""),
            request(Method::Get, "/v1/jobs/banana", b""),
            request(Method::Get, "/v1/nope", b""),
            request(Method::Delete, "/metrics", b""),
        ] {
            let resp = full(&api, &req);
            assert_eq!(resp.status, StatusCode(404), "{}", req.target);
        }
    }

    #[test]
    fn metrics_expose_the_scheduler_counters() {
        let api = api(SchedulerConfig {
            workers: 0,
            max_queue_depth: 1,
            ..SchedulerConfig::default()
        });
        let post = request(Method::Post, "/v1/jobs", grid_toml().as_bytes());
        full(&api, &post); // queued
        full(&api, &post); // rejected
        api.note_bytes_served(321);
        let resp = full(&api, &request(Method::Get, "/metrics", b""));
        assert_eq!(resp.status, StatusCode(200));
        let body = String::from_utf8(resp.body).unwrap();
        assert!(body.contains("allarm_jobs_queued 1\n"), "{body}");
        assert!(body.contains("allarm_jobs_rejected_total 1\n"), "{body}");
        assert!(body.contains("allarm_queue_depth_limit 1\n"), "{body}");
        assert!(body.contains("allarm_bytes_served_total 321\n"), "{body}");
    }
}

//! Compact, width-generic sharer sets for directory entries.
//!
//! A directory entry must know which caches may hold a line. Machines up to
//! 64 cores fit an inline bit mask with no allocation; larger machines
//! promote transparently to a multi-word vector, so the representation
//! imposes no ceiling on the core count. On top of the exact per-core set,
//! [`SharerSet::node_set`] projects the hierarchical (level-1) view — which
//! *NUMA nodes* have a copy — that multi-core-node directories and probe
//! filters track first.

use allarm_types::ids::{CoreId, NodeId};
use std::fmt;

/// Bits per word of the inline / wide representations.
const WORD_BITS: usize = 64;

/// A width-generic bit set: one inline word up to 64 members, a word vector
/// beyond. Kept canonical (a set whose members all fit one word is always
/// `Inline`) so the derived equality and hash match set equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Bits {
    Inline(u64),
    Wide(Vec<u64>),
}

impl Bits {
    const fn empty() -> Self {
        Bits::Inline(0)
    }

    fn set(&mut self, index: usize) {
        match self {
            Bits::Inline(word) if index < WORD_BITS => *word |= 1 << index,
            Bits::Inline(word) => {
                let mut words = vec![0u64; index / WORD_BITS + 1];
                words[0] = *word;
                words[index / WORD_BITS] |= 1 << (index % WORD_BITS);
                *self = Bits::Wide(words);
            }
            Bits::Wide(words) => {
                if index / WORD_BITS >= words.len() {
                    words.resize(index / WORD_BITS + 1, 0);
                }
                words[index / WORD_BITS] |= 1 << (index % WORD_BITS);
            }
        }
    }

    fn clear(&mut self, index: usize) {
        match self {
            Bits::Inline(word) => {
                if index < WORD_BITS {
                    *word &= !(1 << index);
                }
            }
            Bits::Wide(words) => {
                if let Some(word) = words.get_mut(index / WORD_BITS) {
                    *word &= !(1 << (index % WORD_BITS));
                }
                self.normalize();
            }
        }
    }

    fn get(&self, index: usize) -> bool {
        match self {
            Bits::Inline(word) => index < WORD_BITS && (word >> index) & 1 == 1,
            Bits::Wide(words) => words
                .get(index / WORD_BITS)
                .is_some_and(|w| (w >> (index % WORD_BITS)) & 1 == 1),
        }
    }

    fn count(&self) -> u32 {
        match self {
            Bits::Inline(word) => word.count_ones(),
            Bits::Wide(words) => words.iter().map(|w| w.count_ones()).sum(),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Bits::Inline(word) => *word == 0,
            Bits::Wide(words) => words.iter().all(|w| *w == 0),
        }
    }

    /// Restores the canonical form after removals: trailing zero words are
    /// dropped and a single-word set collapses back to `Inline`, so two
    /// sets with the same members always compare (and hash) equal
    /// regardless of how they were built.
    fn normalize(&mut self) {
        if let Bits::Wide(words) = self {
            while words.len() > 1 && *words.last().expect("non-empty") == 0 {
                words.pop();
            }
            if words.len() == 1 {
                *self = Bits::Inline(words[0]);
            }
        }
    }

    fn iter_indices(&self) -> impl Iterator<Item = usize> + '_ {
        let words: &[u64] = match self {
            Bits::Inline(word) => std::slice::from_ref(word),
            Bits::Wide(words) => words,
        };
        words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..WORD_BITS)
                .filter(move |bit| (word >> bit) & 1 == 1)
                .map(move |bit| wi * WORD_BITS + bit)
        })
    }

    fn low_word(&self) -> u64 {
        match self {
            Bits::Inline(word) => *word,
            Bits::Wide(words) => words.first().copied().unwrap_or(0),
        }
    }
}

/// The exact set of cores that may hold a copy of a line.
///
/// Stored inline (one 64-bit mask) for machines up to 64 cores — the common
/// case, and allocation-free — and as a word vector beyond, so directory
/// entries scale with the machine instead of capping it.
///
/// # Examples
///
/// ```
/// use allarm_coherence::SharerSet;
/// use allarm_types::ids::CoreId;
///
/// let mut sharers = SharerSet::empty();
/// sharers.insert(CoreId::new(3));
/// sharers.insert(CoreId::new(200)); // > 64 cores: promotes transparently
/// assert_eq!(sharers.count(), 2);
/// assert!(sharers.contains(CoreId::new(200)));
/// sharers.remove(CoreId::new(200));
/// assert_eq!(sharers.iter().collect::<Vec<_>>(), vec![CoreId::new(3)]);
///
/// // The hierarchical level-1 view: which nodes have a copy, at 4 cores
/// // per node.
/// sharers.insert(CoreId::new(5));
/// let nodes = sharers.node_set(4);
/// assert_eq!(nodes.count(), 2); // cores 3 and 5 live on nodes 0 and 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SharerSet(Bits);

impl SharerSet {
    /// Number of cores representable without leaving the inline (single
    /// machine word, allocation-free) representation.
    pub const MAX_INLINE_CORES: usize = WORD_BITS;

    /// The empty set.
    pub const fn empty() -> Self {
        SharerSet(Bits::empty())
    }

    /// A set containing a single core.
    pub fn only(core: CoreId) -> Self {
        let mut s = SharerSet::empty();
        s.insert(core);
        s
    }

    /// Adds a core to the set, growing the representation if the core index
    /// is beyond the inline width.
    pub fn insert(&mut self, core: CoreId) {
        self.0.set(core.index());
    }

    /// Removes a core from the set (no-op if absent).
    pub fn remove(&mut self, core: CoreId) {
        self.0.clear(core.index());
    }

    /// True if the core is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        self.0.get(core.index())
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        self.0.count()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the cores in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        self.0.iter_indices().map(|i| CoreId::new(i as u16))
    }

    /// The low 64 bits of the mask (the whole mask for machines up to 64
    /// cores).
    pub fn bits(&self) -> u64 {
        self.0.low_word()
    }

    /// Projects the level-1 (node-granularity) view of this set: the NUMA
    /// nodes on which at least one member core lives, under a blocked
    /// core-to-node assignment of `cores_per_node` cores each. With
    /// `cores_per_node == 1` the node set mirrors the core set.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_node` is zero.
    pub fn node_set(&self, cores_per_node: u32) -> NodeSet {
        assert!(cores_per_node > 0, "a node hosts at least one core");
        let mut nodes = Bits::empty();
        for index in self.0.iter_indices() {
            nodes.set(index / cores_per_node as usize);
        }
        NodeSet(nodes)
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for core in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", core.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl Default for SharerSet {
    fn default() -> Self {
        SharerSet::empty()
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut set = SharerSet::empty();
        for core in iter {
            set.insert(core);
        }
        set
    }
}

/// The level-1 view of a [`SharerSet`]: the NUMA nodes holding at least one
/// copy. This is what a hierarchical (two-level) directory tracks first —
/// one probe or back-invalidation message per *node*, expanded to the
/// node's member cores on arrival.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeSet(Bits);

impl NodeSet {
    /// The empty set.
    pub const fn empty() -> Self {
        NodeSet(Bits::empty())
    }

    /// True if the node is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        self.0.get(node.index())
    }

    /// Number of nodes in the set.
    pub fn count(&self) -> u32 {
        self.0.count()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the nodes in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.0.iter_indices().map(|i| NodeId::new(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId::new(0));
        s.insert(CoreId::new(15));
        assert!(s.contains(CoreId::new(0)));
        assert!(s.contains(CoreId::new(15)));
        assert!(!s.contains(CoreId::new(7)));
        assert_eq!(s.count(), 2);
        s.remove(CoreId::new(0));
        assert!(!s.contains(CoreId::new(0)));
        assert_eq!(s.count(), 1);
        // Removing an absent core is a no-op.
        s.remove(CoreId::new(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn only_creates_singleton() {
        let s = SharerSet::only(CoreId::new(9));
        assert_eq!(s.count(), 1);
        assert!(s.contains(CoreId::new(9)));
    }

    #[test]
    fn iter_ascending_order() {
        let s: SharerSet = [CoreId::new(5), CoreId::new(1), CoreId::new(63)]
            .into_iter()
            .collect();
        let cores: Vec<u16> = s.iter().map(|c| c.raw()).collect();
        assert_eq!(cores, vec![1, 5, 63]);
    }

    #[test]
    fn wide_sets_hold_cores_beyond_the_inline_width() {
        let mut s = SharerSet::empty();
        s.insert(CoreId::new(3));
        s.insert(CoreId::new(64));
        s.insert(CoreId::new(255));
        assert_eq!(s.count(), 3);
        assert!(s.contains(CoreId::new(64)));
        assert!(s.contains(CoreId::new(255)));
        assert!(!s.contains(CoreId::new(254)));
        let cores: Vec<u16> = s.iter().map(|c| c.raw()).collect();
        assert_eq!(cores, vec![3, 64, 255]);
        assert_eq!(s.to_string(), "{3,64,255}");
    }

    #[test]
    fn removal_collapses_back_to_canonical_form() {
        // A set that grew wide and shrank back must equal (and hash like)
        // one that never left the inline representation.
        let mut grew = SharerSet::empty();
        grew.insert(CoreId::new(7));
        grew.insert(CoreId::new(200));
        grew.remove(CoreId::new(200));
        let inline = SharerSet::only(CoreId::new(7));
        assert_eq!(grew, inline);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |s: &SharerSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&grew), hash(&inline));
    }

    #[test]
    fn display_lists_members() {
        let s: SharerSet = [CoreId::new(2), CoreId::new(4)].into_iter().collect();
        assert_eq!(s.to_string(), "{2,4}");
        assert_eq!(SharerSet::empty().to_string(), "{}");
    }

    #[test]
    fn bits_roundtrip() {
        let s = SharerSet::only(CoreId::new(3));
        assert_eq!(s.bits(), 0b1000);
        // Wide sets still expose their low word.
        let mut s = s;
        s.insert(CoreId::new(100));
        assert_eq!(s.bits(), 0b1000);
    }

    #[test]
    fn node_set_projects_cores_onto_nodes() {
        let s: SharerSet = [CoreId::new(0), CoreId::new(3), CoreId::new(9)]
            .into_iter()
            .collect();
        let nodes = s.node_set(4);
        assert_eq!(nodes.count(), 2);
        assert!(nodes.contains(NodeId::new(0))); // cores 0 and 3
        assert!(nodes.contains(NodeId::new(2))); // core 9
        assert!(!nodes.contains(NodeId::new(1)));
        let listed: Vec<u16> = nodes.iter().map(|n| n.raw()).collect();
        assert_eq!(listed, vec![0, 2]);
    }

    #[test]
    fn flat_node_set_mirrors_the_core_set() {
        let s: SharerSet = [CoreId::new(1), CoreId::new(90)].into_iter().collect();
        let nodes = s.node_set(1);
        assert_eq!(nodes.count(), s.count());
        assert!(nodes.contains(NodeId::new(1)));
        assert!(nodes.contains(NodeId::new(90)));
        assert!(NodeSet::empty().is_empty());
    }
}

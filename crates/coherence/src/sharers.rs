//! Compact sharer sets for directory entries.

use allarm_types::ids::CoreId;
use std::fmt;

/// A set of cores that may hold a copy of a line, stored as a 64-bit mask.
///
/// Sixty-four cores is ample for the paper's 16-core machine and for the
/// scaled configurations the benchmarks sweep.
///
/// # Examples
///
/// ```
/// use allarm_coherence::SharerSet;
/// use allarm_types::ids::CoreId;
///
/// let mut sharers = SharerSet::empty();
/// sharers.insert(CoreId::new(3));
/// sharers.insert(CoreId::new(7));
/// assert_eq!(sharers.count(), 2);
/// assert!(sharers.contains(CoreId::new(3)));
/// sharers.remove(CoreId::new(3));
/// assert_eq!(sharers.iter().collect::<Vec<_>>(), vec![CoreId::new(7)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet(u64);

impl SharerSet {
    /// Maximum number of cores representable.
    pub const MAX_CORES: usize = 64;

    /// The empty set.
    pub const fn empty() -> Self {
        SharerSet(0)
    }

    /// A set containing a single core.
    ///
    /// # Panics
    ///
    /// Panics if the core index is 64 or larger.
    pub fn only(core: CoreId) -> Self {
        let mut s = SharerSet::empty();
        s.insert(core);
        s
    }

    /// Adds a core to the set.
    ///
    /// # Panics
    ///
    /// Panics if the core index is 64 or larger.
    pub fn insert(&mut self, core: CoreId) {
        assert!(
            core.index() < Self::MAX_CORES,
            "core index {} exceeds SharerSet capacity",
            core.index()
        );
        self.0 |= 1 << core.index();
    }

    /// Removes a core from the set (no-op if absent).
    pub fn remove(&mut self, core: CoreId) {
        if core.index() < Self::MAX_CORES {
            self.0 &= !(1 << core.index());
        }
    }

    /// True if the core is in the set.
    pub fn contains(&self, core: CoreId) -> bool {
        core.index() < Self::MAX_CORES && (self.0 >> core.index()) & 1 == 1
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over the cores in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let bits = self.0;
        (0..Self::MAX_CORES as u16).filter_map(move |i| {
            if (bits >> i) & 1 == 1 {
                Some(CoreId::new(i))
            } else {
                None
            }
        })
    }

    /// The raw bit mask.
    pub fn bits(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for core in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{}", core.index())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CoreId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut set = SharerSet::empty();
        for core in iter {
            set.insert(core);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId::new(0));
        s.insert(CoreId::new(15));
        assert!(s.contains(CoreId::new(0)));
        assert!(s.contains(CoreId::new(15)));
        assert!(!s.contains(CoreId::new(7)));
        assert_eq!(s.count(), 2);
        s.remove(CoreId::new(0));
        assert!(!s.contains(CoreId::new(0)));
        assert_eq!(s.count(), 1);
        // Removing an absent core is a no-op.
        s.remove(CoreId::new(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn only_creates_singleton() {
        let s = SharerSet::only(CoreId::new(9));
        assert_eq!(s.count(), 1);
        assert!(s.contains(CoreId::new(9)));
    }

    #[test]
    fn iter_ascending_order() {
        let s: SharerSet = [CoreId::new(5), CoreId::new(1), CoreId::new(63)]
            .into_iter()
            .collect();
        let cores: Vec<u16> = s.iter().map(|c| c.raw()).collect();
        assert_eq!(cores, vec![1, 5, 63]);
    }

    #[test]
    #[should_panic(expected = "exceeds SharerSet capacity")]
    fn oversized_core_panics() {
        let mut s = SharerSet::empty();
        s.insert(CoreId::new(64));
    }

    #[test]
    fn display_lists_members() {
        let s: SharerSet = [CoreId::new(2), CoreId::new(4)].into_iter().collect();
        assert_eq!(s.to_string(), "{2,4}");
        assert_eq!(SharerSet::empty().to_string(), "{}");
    }

    #[test]
    fn bits_roundtrip() {
        let s = SharerSet::only(CoreId::new(3));
        assert_eq!(s.bits(), 0b1000);
    }
}

//! Sparse directory (probe filter), Hammer-style directory controller and the
//! ALLARM allocate-on-remote-miss policy.
//!
//! This crate contains the paper's primary contribution and the directory
//! substrate it modifies:
//!
//! * [`ProbeFilter`] — a set-associative sparse directory with 2x L2
//!   coverage, as deployed in AMD Hammer ("HT Assist") systems;
//! * [`AllocationPolicy`] — when a directory request misses in the probe
//!   filter, should an entry be allocated? The [`AllocationPolicy::Baseline`]
//!   always allocates; [`AllocationPolicy::Allarm`] allocates **only on a
//!   remote miss**, which is the whole of the paper's idea;
//! * [`DirectoryController`] — the per-node controller that looks up the
//!   probe filter on every request, orchestrates probes, invalidations,
//!   DRAM accesses and data returns over the [`allarm_noc::Network`], and
//!   implements the ALLARM local-probe flow (with its latency-hiding
//!   behaviour, Section II-D of the paper) when a remote miss allocates.
//!
//! The controller is decoupled from the rest of the machine through the
//! [`SystemAccess`] trait, which the full-system simulator in `allarm-core`
//! implements over its caches, network and DRAM.
//!
//! # Examples
//!
//! Constructing a probe filter and exercising the allocation policies:
//!
//! ```
//! use allarm_coherence::{AllocationPolicy, ProbeFilter};
//! use allarm_types::{config::ProbeFilterConfig, ids::{CoreId, NodeId}, addr::LineAddr};
//!
//! let mut pf = ProbeFilter::new(&ProbeFilterConfig::new(32 * 1024, 4));
//! assert!(pf.lookup(LineAddr::new(7)).is_none());
//! pf.allocate(LineAddr::new(7), CoreId::new(3));
//! assert!(pf.lookup(LineAddr::new(7)).is_some());
//!
//! // The ALLARM policy only allocates for remote requesters.
//! let home = NodeId::new(2);
//! assert!(!AllocationPolicy::Allarm.should_allocate(NodeId::new(2), home));
//! assert!(AllocationPolicy::Allarm.should_allocate(NodeId::new(5), home));
//! assert!(AllocationPolicy::Baseline.should_allocate(NodeId::new(2), home));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod policy;
pub mod probe_filter;
pub mod request;
pub mod shard;
pub mod sharers;

pub use controller::{
    DirectoryController, DirectoryControllerState, DirectoryResponse, DirectoryStats, SystemAccess,
};
pub use policy::AllocationPolicy;
pub use probe_filter::{PfEntry, PfEviction, PfSlotState, PfStats, ProbeFilter, ProbeFilterState};
pub use request::{CoherenceRequest, RequestKind};
pub use shard::{CoherenceEvent, CoherenceOp, CoherenceReply, DirectoryNodeState, DirectoryShard};
pub use sharers::{NodeSet, SharerSet};

//! Coherence requests arriving at a home directory.

use allarm_types::addr::LineAddr;
use allarm_types::ids::{CoreId, NodeId};
use std::fmt;

/// The kind of coherence transaction a core issues when its private
/// hierarchy cannot satisfy an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Read miss: fetch a readable copy (GetS).
    GetS,
    /// Write miss: fetch an exclusive, writable copy (GetX / read-for-
    /// ownership).
    GetX,
    /// Write hit on a read-only copy: request ownership without data.
    Upgrade,
}

impl RequestKind {
    /// True if the transaction grants write permission.
    pub fn is_write(self) -> bool {
        matches!(self, RequestKind::GetX | RequestKind::Upgrade)
    }

    /// True if the requester needs the line's data delivered (an upgrade
    /// already has the data).
    pub fn needs_data(self) -> bool {
        !matches!(self, RequestKind::Upgrade)
    }

    /// Short protocol mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::GetS => "GetS",
            RequestKind::GetX => "GetX",
            RequestKind::Upgrade => "Upg",
        }
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A request delivered to the home directory of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceRequest {
    /// The physical cache line being requested.
    pub line: LineAddr,
    /// The transaction kind.
    pub kind: RequestKind,
    /// The core issuing the request.
    pub requester: CoreId,
    /// The node the requesting core belongs to (its affinity domain).
    pub requester_node: NodeId,
}

impl CoherenceRequest {
    /// Creates a request.
    pub fn new(
        line: LineAddr,
        kind: RequestKind,
        requester: CoreId,
        requester_node: NodeId,
    ) -> Self {
        CoherenceRequest {
            line,
            kind,
            requester,
            requester_node,
        }
    }

    /// True if the requester lives in the directory's own affinity domain.
    pub fn is_local_to(&self, home: NodeId) -> bool {
        self.requester_node == home
    }
}

impl fmt::Display for CoherenceRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} from {} ({})",
            self.kind, self.line, self.requester, self.requester_node
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_data_flags() {
        assert!(!RequestKind::GetS.is_write());
        assert!(RequestKind::GetX.is_write());
        assert!(RequestKind::Upgrade.is_write());
        assert!(RequestKind::GetS.needs_data());
        assert!(RequestKind::GetX.needs_data());
        assert!(!RequestKind::Upgrade.needs_data());
    }

    #[test]
    fn locality_check() {
        let req = CoherenceRequest::new(
            LineAddr::new(10),
            RequestKind::GetS,
            CoreId::new(3),
            NodeId::new(3),
        );
        assert!(req.is_local_to(NodeId::new(3)));
        assert!(!req.is_local_to(NodeId::new(4)));
    }

    #[test]
    fn display_is_informative() {
        let req = CoherenceRequest::new(
            LineAddr::new(0xff),
            RequestKind::GetX,
            CoreId::new(1),
            NodeId::new(1),
        );
        let text = req.to_string();
        assert!(text.contains("GetX"));
        assert!(text.contains("core1"));
        assert_eq!(RequestKind::Upgrade.to_string(), "Upg");
    }
}

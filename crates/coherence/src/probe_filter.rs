//! The sparse directory ("probe filter") array.
//!
//! Each node's memory controller owns a probe filter: a set-associative
//! array of directory entries, sized to cover a multiple of the node's
//! cache capacity (2x the L2 in the paper's one-core-per-node machine,
//! matching deployed AMD Hammer systems). An entry records the owner of a
//! line and the set of cores that may hold a copy. When a set is full,
//! allocating a new entry evicts a victim, and the eviction must
//! back-invalidate the line from every cache that may hold it — the
//! expensive side effect ALLARM avoids for thread-local data.
//!
//! On machines with several cores per NUMA node the filter is **two-level**
//! ([`ProbeFilter::hierarchical`]): each entry's exact core set is fronted
//! by a node-presence vector ([`PfEntry::node_presence`]), consulted first
//! on every array access so probes and back-invalidations are steered at
//! node granularity. The level-1 vector is a separate, narrower SRAM read,
//! tracked by its own activity counter
//! ([`PfStats::node_vector_accesses`]) so the energy model can charge it
//! independently of the full entry read.

use crate::sharers::{NodeSet, SharerSet};
use allarm_types::addr::LineAddr;
use allarm_types::config::{PfReplacement, ProbeFilterConfig};
use allarm_types::ids::CoreId;
use allarm_types::stats::Counter;

/// One directory entry: the tracked line, its owner, and its sharers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfEntry {
    /// The tracked cache line.
    pub line: LineAddr,
    /// The core considered the owner (the last writer or first requester);
    /// probes for dirty data go here first.
    pub owner: CoreId,
    /// Cores that may hold a copy (always includes the owner).
    pub sharers: SharerSet,
}

impl PfEntry {
    /// Creates an entry owned (and solely shared) by `owner`.
    pub fn new(line: LineAddr, owner: CoreId) -> Self {
        PfEntry {
            line,
            owner,
            sharers: SharerSet::only(owner),
        }
    }

    /// The level-1 (node-granularity) view of this entry's sharers under a
    /// blocked assignment of `cores_per_node` cores per node — the
    /// presence vector a hierarchical directory consults before expanding
    /// to individual cores.
    pub fn node_presence(&self, cores_per_node: u32) -> NodeSet {
        self.sharers.node_set(cores_per_node)
    }
}

/// A victim entry displaced by an allocation.
///
/// The directory controller must back-invalidate `line` from every core in
/// `sharers` (or broadcast, under Hammer-style tracking) before the entry
/// can be reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfEviction {
    /// The evicted entry.
    pub entry: PfEntry,
}

/// Probe-filter activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfStats {
    /// Lookups that found an entry.
    pub hits: Counter,
    /// Lookups that found no entry.
    pub misses: Counter,
    /// Entries allocated.
    pub allocations: Counter,
    /// Entries displaced by an allocation (the paper's headline metric).
    pub evictions: Counter,
    /// Entries removed because the last cached copy was evicted from the
    /// owning cache (eviction notifications / writebacks).
    pub deallocations: Counter,
    /// Entry reads+writes, the activity count for the dynamic-energy model.
    pub array_accesses: Counter,
    /// Level-1 node-presence-vector reads of a hierarchical (two-level)
    /// filter, charged separately by the energy model. Always zero on
    /// one-core-per-node topologies, which have no level-1 vector.
    pub node_vector_accesses: Counter,
}

impl PfStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Current hit rate.
    pub fn hit_rate(&self) -> f64 {
        allarm_types::stats::ratio(self.hits.get(), self.lookups())
    }
}

#[derive(Debug, Clone)]
struct Slot {
    entry: PfEntry,
    last_touch: u64,
    valid: bool,
}

/// A set-associative sparse directory.
///
/// Storage is a single flat slab of `num_sets * ways` slots indexed by
/// `set * ways + way`, pre-initialised to invalid slots — one allocation,
/// sequential walks in the directory hot path. Sets never reorder (the
/// old per-set `Vec` only ever pushed or overwrote in place, never
/// removed), so a slot's `valid` flag carries the same information the
/// grow-only `Vec` length did and every position-dependent choice —
/// first-invalid reuse, LRU and random victim selection — is unchanged.
///
/// # Examples
///
/// ```
/// use allarm_coherence::ProbeFilter;
/// use allarm_types::{config::ProbeFilterConfig, ids::CoreId, addr::LineAddr};
///
/// let mut pf = ProbeFilter::new(&ProbeFilterConfig::new(4096, 4));
/// let line = LineAddr::new(42);
/// assert!(pf.lookup(line).is_none());
/// let eviction = pf.allocate(line, CoreId::new(1));
/// assert!(eviction.is_none());
/// assert_eq!(pf.lookup(line).unwrap().owner, CoreId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct ProbeFilter {
    /// `num_sets * ways` slots; invalid slots are free.
    slab: Vec<Slot>,
    num_sets: usize,
    ways: usize,
    replacement: PfReplacement,
    /// Cores per NUMA node; `1` means a flat (single-level) filter, larger
    /// values enable the level-1 node-presence vector.
    cores_per_node: u32,
    tick: u64,
    stats: PfStats,
}

impl ProbeFilter {
    /// Creates a flat (one core per node) probe filter with the geometry of
    /// `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or ways.
    pub fn new(config: &ProbeFilterConfig) -> Self {
        ProbeFilter::hierarchical(config, 1)
    }

    /// Creates a probe filter for a machine with `cores_per_node` cores per
    /// NUMA node. With more than one core per node the filter is two-level:
    /// every array access first reads the entry's node-presence vector
    /// (counted in [`PfStats::node_vector_accesses`]) before the exact
    /// per-core sharer map.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets or ways, or if
    /// `cores_per_node` is zero.
    pub fn hierarchical(config: &ProbeFilterConfig, cores_per_node: u32) -> Self {
        let num_sets = config.num_sets() as usize;
        let ways = config.ways as usize;
        assert!(num_sets > 0, "probe filter must have at least one set");
        assert!(ways > 0, "probe filter must have at least one way");
        assert!(cores_per_node > 0, "a node hosts at least one core");
        let empty = Slot {
            entry: PfEntry::new(LineAddr::new(0), CoreId::new(0)),
            last_touch: 0,
            valid: false,
        };
        ProbeFilter {
            slab: vec![empty; num_sets * ways],
            num_sets,
            ways,
            replacement: config.replacement,
            cores_per_node,
            tick: 0,
            stats: PfStats::default(),
        }
    }

    /// Cores per NUMA node this filter tracks (1 = flat).
    pub fn cores_per_node(&self) -> u32 {
        self.cores_per_node
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() % self.num_sets as u64) as usize
    }

    /// Start of `line`'s set within the slab.
    fn set_base(&self, line: LineAddr) -> usize {
        self.set_index(line) * self.ways
    }

    /// Charges one full array access; on a hierarchical filter the level-1
    /// node vector is read first, charged separately.
    fn touch_array(&mut self) {
        self.stats.array_accesses.incr();
        if self.cores_per_node > 1 {
            self.stats.node_vector_accesses.incr();
        }
    }

    /// Looks up the entry for `line`, updating recency and hit/miss counts.
    pub fn lookup(&mut self, line: LineAddr) -> Option<PfEntry> {
        self.tick += 1;
        let tick = self.tick;
        self.touch_array();
        let base = self.set_base(line);
        let ways = self.ways;
        if let Some(slot) = self.slab[base..base + ways]
            .iter_mut()
            .find(|s| s.valid && s.entry.line == line)
        {
            slot.last_touch = tick;
            self.stats.hits.incr();
            Some(slot.entry.clone())
        } else {
            self.stats.misses.incr();
            None
        }
    }

    /// Checks for an entry without touching recency or statistics.
    pub fn peek(&self, line: LineAddr) -> Option<PfEntry> {
        let base = self.set_base(line);
        self.slab[base..base + self.ways]
            .iter()
            .find(|s| s.valid && s.entry.line == line)
            .map(|s| s.entry.clone())
    }

    /// The level-1 view of `line`'s entry, if present: the nodes holding at
    /// least one copy. Statistics-free, like [`ProbeFilter::peek`].
    pub fn node_presence(&self, line: LineAddr) -> Option<NodeSet> {
        self.peek(line)
            .map(|entry| entry.node_presence(self.cores_per_node))
    }

    /// Allocates an entry for `line` owned by `owner`, evicting the LRU
    /// entry of a full set.
    ///
    /// Returns the eviction the directory controller must process, if any.
    /// Allocating a line that already has an entry refreshes that entry
    /// instead (owner unchanged, requester added as a sharer by the caller).
    pub fn allocate(&mut self, line: LineAddr, owner: CoreId) -> Option<PfEviction> {
        self.tick += 1;
        let tick = self.tick;
        self.touch_array();
        let base = self.set_base(line);
        let ways = self.ways;

        if let Some(slot) = self.slab[base..base + ways]
            .iter_mut()
            .find(|s| s.valid && s.entry.line == line)
        {
            slot.last_touch = tick;
            return None;
        }

        self.stats.allocations.incr();
        let new_slot = Slot {
            entry: PfEntry::new(line, owner),
            last_touch: tick,
            valid: true,
        };

        // Reuse the first invalid slot if the set has one (a never-used way
        // or a deallocated entry).
        if let Some(slot) = self.slab[base..base + ways].iter_mut().find(|s| !s.valid) {
            *slot = new_slot;
            return None;
        }

        // Set full: evict a victim. The eviction costs an extra array read
        // (victim read-out) plus the write of the replacement, which the
        // energy model charges via `array_accesses`.
        self.touch_array();
        let victim_idx = match self.replacement {
            PfReplacement::Lru => self.slab[base..base + ways]
                .iter()
                .enumerate()
                .min_by_key(|(i, s)| (s.last_touch, *i))
                .map(|(i, _)| i)
                .expect("set is non-empty"),
            PfReplacement::Random => {
                // SplitMix64 hash of the allocation tick: deterministic
                // across runs but uncorrelated with the access pattern.
                let mut z = tick.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                ((z ^ (z >> 31)) % ways as u64) as usize
            }
        };
        let victim = std::mem::replace(&mut self.slab[base + victim_idx], new_slot).entry;
        self.stats.evictions.incr();
        Some(PfEviction { entry: victim })
    }

    /// Adds `core` to the sharer set of an existing entry; returns false if
    /// no entry exists.
    pub fn add_sharer(&mut self, line: LineAddr, core: CoreId) -> bool {
        let base = self.set_base(line);
        let ways = self.ways;
        if let Some(slot) = self.slab[base..base + ways]
            .iter_mut()
            .find(|s| s.valid && s.entry.line == line)
        {
            slot.entry.sharers.insert(core);
            true
        } else {
            false
        }
    }

    /// Replaces the owner (and optionally collapses the sharer set to just
    /// the new owner, as happens after a GetX).
    pub fn set_owner(&mut self, line: LineAddr, owner: CoreId, exclusive: bool) -> bool {
        let base = self.set_base(line);
        let ways = self.ways;
        if let Some(slot) = self.slab[base..base + ways]
            .iter_mut()
            .find(|s| s.valid && s.entry.line == line)
        {
            slot.entry.owner = owner;
            if exclusive {
                slot.entry.sharers = SharerSet::only(owner);
            } else {
                slot.entry.sharers.insert(owner);
            }
            true
        } else {
            false
        }
    }

    /// Removes `core` from the sharer set of `line`'s entry; if the sharer
    /// set becomes empty the entry is deallocated. Returns true if an entry
    /// was deallocated.
    ///
    /// This implements the baseline's eviction-notification optimisation:
    /// when a cache tells the directory it dropped its copy, the directory
    /// can free the entry once no copies remain.
    pub fn remove_sharer(&mut self, line: LineAddr, core: CoreId) -> bool {
        let base = self.set_base(line);
        let ways = self.ways;
        if let Some(slot) = self.slab[base..base + ways]
            .iter_mut()
            .find(|s| s.valid && s.entry.line == line)
        {
            slot.entry.sharers.remove(core);
            let emptied = slot.entry.sharers.is_empty();
            if emptied {
                slot.valid = false;
            }
            self.touch_array();
            if emptied {
                self.stats.deallocations.incr();
                return true;
            }
        }
        false
    }

    /// Explicitly removes the entry for `line`, if present.
    pub fn deallocate(&mut self, line: LineAddr) -> bool {
        let base = self.set_base(line);
        let ways = self.ways;
        if let Some(slot) = self.slab[base..base + ways]
            .iter_mut()
            .find(|s| s.valid && s.entry.line == line)
        {
            slot.valid = false;
            self.stats.deallocations.incr();
            true
        } else {
            false
        }
    }

    /// Number of valid entries currently resident.
    pub fn occupancy(&self) -> usize {
        self.slab.iter().filter(|s| s.valid).count()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.slab.len()
    }

    /// Activity statistics.
    pub fn stats(&self) -> &PfStats {
        &self.stats
    }

    /// Exports the complete dynamic state of the filter for checkpointing:
    /// every slab position (the valid/invalid *pattern* is semantic —
    /// first-invalid reuse depends on it), the allocation tick and the
    /// statistics. [`ProbeFilter::restore_state`] of the export onto a
    /// fresh same-geometry filter reproduces it bit-for-bit.
    pub fn export_state(&self) -> ProbeFilterState {
        ProbeFilterState {
            slots: self
                .slab
                .iter()
                .map(|s| {
                    if s.valid {
                        Some(PfSlotState {
                            entry: s.entry.clone(),
                            last_touch: s.last_touch,
                        })
                    } else {
                        None
                    }
                })
                .collect(),
            tick: self.tick,
            stats: self.stats,
        }
    }

    /// Restores state previously captured with [`ProbeFilter::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the export's slot count does not match this filter's
    /// geometry.
    pub fn restore_state(&mut self, state: &ProbeFilterState) {
        assert_eq!(
            state.slots.len(),
            self.slab.len(),
            "snapshot slot count does not match probe-filter geometry"
        );
        for (slot, restored) in self.slab.iter_mut().zip(&state.slots) {
            match restored {
                Some(s) => {
                    slot.entry = s.entry.clone();
                    slot.last_touch = s.last_touch;
                    slot.valid = true;
                }
                None => {
                    slot.entry = PfEntry::new(LineAddr::new(0), CoreId::new(0));
                    slot.last_touch = 0;
                    slot.valid = false;
                }
            }
        }
        self.tick = state.tick;
        self.stats = state.stats;
    }
}

/// One valid slab slot of a checkpointed [`ProbeFilter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PfSlotState {
    /// The directory entry.
    pub entry: PfEntry,
    /// Recency stamp (drives LRU victim choice).
    pub last_touch: u64,
}

/// The complete dynamic state of a [`ProbeFilter`], as captured by
/// [`ProbeFilter::export_state`]. One element per slab position, `None` for
/// invalid slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFilterState {
    /// Every slab position in storage order.
    pub slots: Vec<Option<PfSlotState>>,
    /// The allocation/recency tick.
    pub tick: u64,
    /// Activity statistics at capture time.
    pub stats: PfStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProbeFilter {
        // 2 sets x 2 ways, LRU so victim choices are easy to reason about.
        let mut cfg = ProbeFilterConfig::new(4 * 64, 2);
        cfg.replacement = allarm_types::config::PfReplacement::Lru;
        ProbeFilter::new(&cfg)
    }

    /// A tiny filter with the default (pseudo-random) replacement.
    fn tiny_random() -> ProbeFilter {
        ProbeFilter::new(&ProbeFilterConfig::new(4 * 64, 2))
    }

    #[test]
    fn allocate_then_lookup() {
        let mut pf = tiny();
        let line = LineAddr::new(3);
        assert!(pf.lookup(line).is_none());
        assert!(pf.allocate(line, CoreId::new(2)).is_none());
        let entry = pf.lookup(line).unwrap();
        assert_eq!(entry.owner, CoreId::new(2));
        assert!(entry.sharers.contains(CoreId::new(2)));
        assert_eq!(pf.stats().hits.get(), 1);
        assert_eq!(pf.stats().misses.get(), 1);
        assert_eq!(pf.stats().allocations.get(), 1);
    }

    #[test]
    fn full_set_evicts_lru() {
        let mut pf = tiny();
        // Lines 0, 2, 4 map to set 0.
        pf.allocate(LineAddr::new(0), CoreId::new(0));
        pf.allocate(LineAddr::new(2), CoreId::new(0));
        // Touch line 0 so line 2 is LRU.
        pf.lookup(LineAddr::new(0));
        let evicted = pf.allocate(LineAddr::new(4), CoreId::new(1)).unwrap();
        assert_eq!(evicted.entry.line, LineAddr::new(2));
        assert_eq!(pf.stats().evictions.get(), 1);
        assert!(pf.peek(LineAddr::new(0)).is_some());
        assert!(pf.peek(LineAddr::new(2)).is_none());
    }

    #[test]
    fn reallocating_existing_line_does_not_evict() {
        let mut pf = tiny();
        pf.allocate(LineAddr::new(0), CoreId::new(0));
        pf.allocate(LineAddr::new(2), CoreId::new(0));
        assert!(pf.allocate(LineAddr::new(0), CoreId::new(5)).is_none());
        // Owner is unchanged by a refresh.
        assert_eq!(pf.peek(LineAddr::new(0)).unwrap().owner, CoreId::new(0));
        assert_eq!(pf.stats().allocations.get(), 2);
        assert_eq!(pf.stats().evictions.get(), 0);
    }

    #[test]
    fn sharer_management() {
        let mut pf = tiny();
        let line = LineAddr::new(1);
        pf.allocate(line, CoreId::new(0));
        assert!(pf.add_sharer(line, CoreId::new(3)));
        let entry = pf.peek(line).unwrap();
        assert_eq!(entry.sharers.count(), 2);
        // GetX by core 3: owner changes and sharers collapse.
        assert!(pf.set_owner(line, CoreId::new(3), true));
        let entry = pf.peek(line).unwrap();
        assert_eq!(entry.owner, CoreId::new(3));
        assert_eq!(entry.sharers.count(), 1);
        assert!(!pf.add_sharer(LineAddr::new(999), CoreId::new(0)));
        assert!(!pf.set_owner(LineAddr::new(999), CoreId::new(0), true));
    }

    #[test]
    fn remove_sharer_deallocates_when_last_copy_gone() {
        let mut pf = tiny();
        let line = LineAddr::new(1);
        pf.allocate(line, CoreId::new(0));
        pf.add_sharer(line, CoreId::new(1));
        assert!(!pf.remove_sharer(line, CoreId::new(0)));
        assert!(pf.peek(line).is_some());
        assert!(pf.remove_sharer(line, CoreId::new(1)));
        assert!(pf.peek(line).is_none());
        assert_eq!(pf.stats().deallocations.get(), 1);
        assert_eq!(pf.occupancy(), 0);
    }

    #[test]
    fn deallocated_slot_is_reused_without_eviction() {
        let mut pf = tiny();
        pf.allocate(LineAddr::new(0), CoreId::new(0));
        pf.allocate(LineAddr::new(2), CoreId::new(0));
        assert!(pf.deallocate(LineAddr::new(0)));
        // Set 0 now has a free slot: allocating line 4 must not evict.
        assert!(pf.allocate(LineAddr::new(4), CoreId::new(1)).is_none());
        assert_eq!(pf.stats().evictions.get(), 0);
        assert!(!pf.deallocate(LineAddr::new(0)));
    }

    #[test]
    fn occupancy_and_capacity() {
        let mut pf = tiny();
        assert_eq!(pf.capacity(), 4);
        assert_eq!(pf.occupancy(), 0);
        pf.allocate(LineAddr::new(0), CoreId::new(0));
        pf.allocate(LineAddr::new(1), CoreId::new(0));
        assert_eq!(pf.occupancy(), 2);
        // Over-filling never exceeds capacity.
        for i in 0..32u64 {
            pf.allocate(LineAddr::new(i), CoreId::new(0));
        }
        assert_eq!(pf.occupancy(), 4);
    }

    #[test]
    fn geometry_from_table1_config() {
        let pf = ProbeFilter::new(&ProbeFilterConfig::new(512 * 1024, 8));
        assert_eq!(pf.capacity(), 8192);
    }

    #[test]
    fn hit_rate_reporting() {
        let mut pf = tiny();
        pf.allocate(LineAddr::new(0), CoreId::new(0));
        pf.lookup(LineAddr::new(0));
        pf.lookup(LineAddr::new(1));
        assert_eq!(pf.stats().lookups(), 2);
        assert!((pf.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn random_replacement_is_deterministic_and_evicts_some_resident_entry() {
        let mut a = tiny_random();
        let mut b = tiny_random();
        for pf in [&mut a, &mut b] {
            pf.allocate(LineAddr::new(0), CoreId::new(0));
            pf.allocate(LineAddr::new(2), CoreId::new(0));
        }
        let va = a.allocate(LineAddr::new(4), CoreId::new(1)).unwrap();
        let vb = b.allocate(LineAddr::new(4), CoreId::new(1)).unwrap();
        assert_eq!(va, vb, "same history must evict the same victim");
        assert!(va.entry.line == LineAddr::new(0) || va.entry.line == LineAddr::new(2));
        assert!(a.peek(LineAddr::new(4)).is_some());
    }

    #[test]
    fn hierarchical_filter_counts_node_vector_reads() {
        // Flat filter: no level-1 vector, no level-1 accesses.
        let mut flat = tiny();
        flat.allocate(LineAddr::new(0), CoreId::new(0));
        flat.lookup(LineAddr::new(0));
        assert_eq!(flat.cores_per_node(), 1);
        assert_eq!(flat.stats().node_vector_accesses.get(), 0);

        // Two-level filter: every array access reads the node vector first.
        let mut cfg = ProbeFilterConfig::new(4 * 64, 2);
        cfg.replacement = allarm_types::config::PfReplacement::Lru;
        let mut hier = ProbeFilter::hierarchical(&cfg, 4);
        hier.allocate(LineAddr::new(0), CoreId::new(0));
        hier.lookup(LineAddr::new(0));
        assert_eq!(hier.cores_per_node(), 4);
        assert_eq!(
            hier.stats().node_vector_accesses.get(),
            hier.stats().array_accesses.get()
        );
    }

    #[test]
    fn node_presence_projects_sharers_onto_nodes() {
        let mut pf = ProbeFilter::hierarchical(&ProbeFilterConfig::new(4096, 4), 2);
        let line = LineAddr::new(9);
        assert!(pf.node_presence(line).is_none());
        pf.allocate(line, CoreId::new(0));
        pf.add_sharer(line, CoreId::new(1)); // same node as core 0
        pf.add_sharer(line, CoreId::new(5)); // node 2
        let nodes = pf.node_presence(line).unwrap();
        assert_eq!(nodes.count(), 2);
        assert!(nodes.contains(allarm_types::ids::NodeId::new(0)));
        assert!(nodes.contains(allarm_types::ids::NodeId::new(2)));
        // The exact core set is still tracked underneath.
        assert_eq!(pf.peek(line).unwrap().sharers.count(), 3);
    }

    #[test]
    fn peek_does_not_affect_stats() {
        let mut pf = tiny();
        pf.allocate(LineAddr::new(0), CoreId::new(0));
        let before = *pf.stats();
        pf.peek(LineAddr::new(0));
        pf.peek(LineAddr::new(5));
        assert_eq!(*pf.stats(), before);
    }

    /// The grow-only nested-`Vec` storage the flat slab replaced, kept as
    /// an executable specification: a set was a `Vec<Slot>` that only ever
    /// pushed or overwrote in place, so a pre-initialised invalid slab
    /// must reproduce it operation for operation.
    struct NestedModel {
        sets: Vec<Vec<Slot>>,
        ways: usize,
        replacement: PfReplacement,
        cores_per_node: u32,
        tick: u64,
        stats: PfStats,
    }

    impl NestedModel {
        fn new(num_sets: usize, ways: usize, replacement: PfReplacement, cpn: u32) -> Self {
            NestedModel {
                sets: vec![Vec::new(); num_sets],
                ways,
                replacement,
                cores_per_node: cpn,
                tick: 0,
                stats: PfStats::default(),
            }
        }

        fn set_index(&self, line: LineAddr) -> usize {
            (line.raw() % self.sets.len() as u64) as usize
        }

        fn touch_array(&mut self) {
            self.stats.array_accesses.incr();
            if self.cores_per_node > 1 {
                self.stats.node_vector_accesses.incr();
            }
        }

        fn find_mut(&mut self, line: LineAddr) -> Option<&mut Slot> {
            let set = self.set_index(line);
            self.sets[set]
                .iter_mut()
                .find(|s| s.valid && s.entry.line == line)
        }

        fn lookup(&mut self, line: LineAddr) -> Option<PfEntry> {
            self.tick += 1;
            let tick = self.tick;
            self.touch_array();
            let hit = self.find_mut(line).map(|slot| {
                slot.last_touch = tick;
                slot.entry.clone()
            });
            match hit {
                Some(entry) => {
                    self.stats.hits.incr();
                    Some(entry)
                }
                None => {
                    self.stats.misses.incr();
                    None
                }
            }
        }

        fn allocate(&mut self, line: LineAddr, owner: CoreId) -> Option<PfEviction> {
            self.tick += 1;
            let tick = self.tick;
            self.touch_array();
            if let Some(slot) = self.find_mut(line) {
                slot.last_touch = tick;
                return None;
            }
            self.stats.allocations.incr();
            let new_slot = Slot {
                entry: PfEntry::new(line, owner),
                last_touch: tick,
                valid: true,
            };
            let set = self.set_index(line);
            if let Some(slot) = self.sets[set].iter_mut().find(|s| !s.valid) {
                *slot = new_slot;
                return None;
            }
            if self.sets[set].len() < self.ways {
                self.sets[set].push(new_slot);
                return None;
            }
            self.touch_array();
            let victim_idx = match self.replacement {
                PfReplacement::Lru => self.sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, s)| (s.last_touch, *i))
                    .map(|(i, _)| i)
                    .expect("set is non-empty"),
                PfReplacement::Random => {
                    let mut z = tick.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((z ^ (z >> 31)) % self.sets[set].len() as u64) as usize
                }
            };
            let victim = std::mem::replace(&mut self.sets[set][victim_idx], new_slot).entry;
            self.stats.evictions.incr();
            Some(PfEviction { entry: victim })
        }

        fn add_sharer(&mut self, line: LineAddr, core: CoreId) -> bool {
            if let Some(slot) = self.find_mut(line) {
                slot.entry.sharers.insert(core);
                true
            } else {
                false
            }
        }

        fn set_owner(&mut self, line: LineAddr, owner: CoreId, exclusive: bool) -> bool {
            if let Some(slot) = self.find_mut(line) {
                slot.entry.owner = owner;
                if exclusive {
                    slot.entry.sharers = SharerSet::only(owner);
                } else {
                    slot.entry.sharers.insert(owner);
                }
                true
            } else {
                false
            }
        }

        fn remove_sharer(&mut self, line: LineAddr, core: CoreId) -> bool {
            let mut emptied_opt = None;
            if let Some(slot) = self.find_mut(line) {
                slot.entry.sharers.remove(core);
                let emptied = slot.entry.sharers.is_empty();
                if emptied {
                    slot.valid = false;
                }
                emptied_opt = Some(emptied);
            }
            if let Some(emptied) = emptied_opt {
                self.touch_array();
                if emptied {
                    self.stats.deallocations.incr();
                    return true;
                }
            }
            false
        }

        fn deallocate(&mut self, line: LineAddr) -> bool {
            if let Some(slot) = self.find_mut(line) {
                slot.valid = false;
                self.stats.deallocations.incr();
                true
            } else {
                false
            }
        }

        fn occupancy(&self) -> usize {
            self.sets
                .iter()
                .flat_map(|s| s.iter())
                .filter(|s| s.valid)
                .count()
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Drives the flat-slab filter and the grow-only nested-`Vec`
    /// reference through the same seeded operation stream and demands
    /// identical return values, stats and occupancy — covering the
    /// position-dependent pieces (first-invalid reuse, LRU and random
    /// victim selection) across both replacement policies and both the
    /// flat and hierarchical sharer-tracking modes.
    #[test]
    fn flat_slab_matches_nested_vec_reference_model() {
        for replacement in [PfReplacement::Lru, PfReplacement::Random] {
            for cores_per_node in [1u32, 4] {
                for seed in 1..=3u64 {
                    let mut cfg = ProbeFilterConfig::new(16 * 64, 4);
                    cfg.replacement = replacement;
                    let mut flat = ProbeFilter::hierarchical(&cfg, cores_per_node);
                    let mut model =
                        NestedModel::new(flat.num_sets, flat.ways, replacement, cores_per_node);
                    let mut rng = seed;
                    for _ in 0..5_000 {
                        let r = splitmix64(&mut rng);
                        let line = LineAddr::new(r % 64); // 4x conflict pressure
                        let core = CoreId::new(((r >> 8) % 8) as u16);
                        match (r >> 16) % 6 {
                            0 => assert_eq!(flat.lookup(line), model.lookup(line)),
                            1 | 2 => {
                                assert_eq!(flat.allocate(line, core), model.allocate(line, core));
                            }
                            3 => assert_eq!(
                                flat.add_sharer(line, core),
                                model.add_sharer(line, core)
                            ),
                            4 => {
                                let exclusive = (r >> 32) & 1 == 1;
                                assert_eq!(
                                    flat.set_owner(line, core, exclusive),
                                    model.set_owner(line, core, exclusive)
                                );
                            }
                            _ => assert_eq!(
                                flat.remove_sharer(line, core),
                                model.remove_sharer(line, core)
                            ),
                        }
                        if r.is_multiple_of(97) {
                            assert_eq!(flat.deallocate(line), model.deallocate(line));
                        }
                    }
                    assert_eq!(
                        *flat.stats(),
                        model.stats,
                        "{replacement:?} cpn {cores_per_node} seed {seed}"
                    );
                    assert_eq!(flat.occupancy(), model.occupancy());
                    for addr in 0..64u64 {
                        assert_eq!(
                            flat.peek(LineAddr::new(addr)),
                            model
                                .sets
                                .iter()
                                .flat_map(|s| s.iter())
                                .find(|s| s.valid && s.entry.line == LineAddr::new(addr))
                                .map(|s| s.entry.clone())
                        );
                    }
                }
            }
        }
    }
}

//! The per-node directory controller.
//!
//! Every node's memory controller owns a [`DirectoryController`]: it receives
//! coherence requests for lines homed on its node, consults the probe
//! filter, and orchestrates probes, invalidations, DRAM accesses and data
//! returns. The controller implements both the baseline Hammer-with-probe-
//! filter flow and the ALLARM modification (allocate only on remote miss,
//! with a parallel probe of the local core), selected by its
//! [`AllocationPolicy`].

use crate::policy::AllocationPolicy;
use crate::probe_filter::{PfEviction, ProbeFilter};
use crate::request::{CoherenceRequest, RequestKind};
use allarm_cache::{CoherenceState, ProbeOutcome};
use allarm_noc::MessageClass;
use allarm_types::addr::LineAddr;
use allarm_types::config::{ProbeFilterConfig, SharerTracking};
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::stats::Counter;
use allarm_types::Nanos;

/// The machine resources a directory controller needs to reach: every
/// core's private caches, the on-chip network, and the DRAM behind each
/// memory controller.
///
/// The full-system simulator in `allarm-core` implements this over its
/// component collections; unit tests implement it over miniature in-memory
/// fakes.
pub trait SystemAccess {
    /// Probes `core`'s private hierarchy for `line`.
    ///
    /// If `downgrade` is true a dirty/exclusive copy is demoted to a shared
    /// state; if `invalidate` is true the copy is removed.
    fn probe_cache(
        &mut self,
        core: CoreId,
        line: LineAddr,
        downgrade: bool,
        invalidate: bool,
    ) -> ProbeOutcome;

    /// Sends a message, recording its traffic, and returns its latency.
    fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos;

    /// Latency of a message without recording traffic (for critical-path
    /// what-if computations).
    fn message_latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos;

    /// Reads a line from `node`'s DRAM, returning the access latency.
    fn dram_read(&mut self, node: NodeId) -> Nanos;

    /// Writes a line back to `node`'s DRAM, returning the access latency.
    fn dram_write(&mut self, node: NodeId) -> Nanos;

    /// The affinity domain a core belongs to.
    fn node_of_core(&self, core: CoreId) -> NodeId;

    /// The node's *designated* core — the one core per affinity domain the
    /// ALLARM policy is enabled for (Section II-E of the paper: one core,
    /// or one shared last-level cache, per domain). On one-core nodes this
    /// is simply the node's core.
    fn local_core_of(&self, node: NodeId) -> CoreId;

    /// Total number of cores in the machine (used for Hammer-style
    /// broadcast).
    fn num_cores(&self) -> usize;

    /// Latency of probing a core's cache array (the on-die SRAM lookup).
    fn cache_access_latency(&self) -> Nanos;

    /// Probes `node`'s shared LLC slice for `line`, removing the copy when
    /// `invalidate` is true. Returns whether the slice held the line.
    ///
    /// The default is the LLC-less machine: no slice, never resident. A
    /// non-invalidating probe must not observably mutate the slice (no
    /// recency or statistics updates) — the sharded kernel calls it from
    /// the directory phase, where cross-shard ordering is not defined.
    fn probe_llc(&mut self, node: NodeId, line: LineAddr, invalidate: bool) -> bool {
        let _ = (node, line, invalidate);
        false
    }
}

/// What the directory tells the requesting core when a request completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryResponse {
    /// Critical-path latency of the transaction, from the request message
    /// leaving the requester to the data (or grant) arriving back.
    pub latency: Nanos,
    /// The MOESI state the requester installs the line in.
    pub fill_state: CoherenceState,
    /// For ALLARM remote misses: whether the probe of the local core stayed
    /// off the critical path (`Some(true)`), was on it (`Some(false)`), or
    /// was not performed at all (`None`). Drives Fig. 3g.
    pub local_probe_hidden: Option<bool>,
}

/// Directory-controller activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Requests received.
    pub requests: Counter,
    /// Requests from the directory's own affinity domain.
    pub requests_local: Counter,
    /// Requests from other affinity domains.
    pub requests_remote: Counter,
    /// Misses for which ALLARM skipped probe-filter allocation.
    pub allarm_allocation_skips: Counter,
    /// Probe-filter evictions processed (back-invalidations of a victim).
    pub pf_evictions: Counter,
    /// Coherence messages sent while processing probe-filter evictions
    /// (invalidations, acks and writebacks). `messages / evictions` is the
    /// quantity plotted in Fig. 3d.
    pub eviction_messages: Counter,
    /// Cache copies actually invalidated by probe-filter evictions.
    pub eviction_invalidations: Counter,
    /// Dirty copies written back because of probe-filter evictions.
    pub eviction_writebacks: Counter,
    /// ALLARM probes of the local core on remote misses.
    pub local_probes: Counter,
    /// Local probes that hit (the local core held the line).
    pub local_probe_hits: Counter,
    /// Local probes that stayed off the critical path (Fig. 3g numerator).
    pub local_probes_hidden: Counter,
    /// Lines served from DRAM.
    pub dram_fills: Counter,
    /// Lines served by a cache-to-cache transfer.
    pub cache_transfers: Counter,
    /// Invalidations sent to satisfy GetX/upgrade requests.
    pub ownership_invalidations: Counter,
}

impl DirectoryStats {
    /// Average number of coherence messages per probe-filter eviction
    /// (Fig. 3d). Zero when no evictions occurred.
    pub fn messages_per_eviction(&self) -> f64 {
        allarm_types::stats::ratio(self.eviction_messages.get(), self.pf_evictions.get())
    }

    /// Fraction of requests that came from the local core (Fig. 2).
    pub fn local_fraction(&self) -> f64 {
        allarm_types::stats::ratio(self.requests_local.get(), self.requests.get())
    }

    /// Fraction of local probes that stayed off the critical path (Fig. 3g).
    pub fn hidden_probe_fraction(&self) -> f64 {
        allarm_types::stats::ratio(self.local_probes_hidden.get(), self.local_probes.get())
    }

    /// Accumulates another block of counters into this one.
    pub fn merge(&mut self, other: &DirectoryStats) {
        self.requests += other.requests;
        self.requests_local += other.requests_local;
        self.requests_remote += other.requests_remote;
        self.allarm_allocation_skips += other.allarm_allocation_skips;
        self.pf_evictions += other.pf_evictions;
        self.eviction_messages += other.eviction_messages;
        self.eviction_invalidations += other.eviction_invalidations;
        self.eviction_writebacks += other.eviction_writebacks;
        self.local_probes += other.local_probes;
        self.local_probe_hits += other.local_probe_hits;
        self.local_probes_hidden += other.local_probes_hidden;
        self.dram_fills += other.dram_fills;
        self.cache_transfers += other.cache_transfers;
        self.ownership_invalidations += other.ownership_invalidations;
    }
}

/// The complete dynamic state of a [`DirectoryController`], as captured by
/// [`DirectoryController::export_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryControllerState {
    /// The probe-filter array contents.
    pub probe_filter: crate::probe_filter::ProbeFilterState,
    /// Controller counters at capture time.
    pub stats: DirectoryStats,
}

/// A directory controller plus its probe filter, for one home node.
#[derive(Debug, Clone)]
pub struct DirectoryController {
    home: NodeId,
    probe_filter: ProbeFilter,
    policy: AllocationPolicy,
    sharer_tracking: SharerTracking,
    pf_latency: Nanos,
    stats: DirectoryStats,
}

impl DirectoryController {
    /// Creates a controller for the directory homed on `home`, on a
    /// one-core-per-node machine.
    pub fn new(home: NodeId, config: &ProbeFilterConfig, policy: AllocationPolicy) -> Self {
        DirectoryController::hierarchical(home, config, policy, 1)
    }

    /// Creates a controller for a machine hosting `cores_per_node` cores on
    /// each NUMA node. The probe filter becomes two-level (node-presence
    /// vector over the exact core map — see
    /// [`ProbeFilter::hierarchical`]), and probes / back-invalidations are
    /// steered at node granularity: one invalidation message and one
    /// combined ack per *node*, with the node's member caches probed there
    /// in parallel. With `cores_per_node == 1` this is exactly [`Self::new`].
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_node` is zero.
    pub fn hierarchical(
        home: NodeId,
        config: &ProbeFilterConfig,
        policy: AllocationPolicy,
        cores_per_node: u32,
    ) -> Self {
        DirectoryController {
            home,
            probe_filter: ProbeFilter::hierarchical(config, cores_per_node),
            policy,
            sharer_tracking: config.sharer_tracking,
            pf_latency: config.access_latency,
            stats: DirectoryStats::default(),
        }
    }

    /// The node this directory is responsible for.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// The allocation policy in force.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// The probe filter backing this directory.
    pub fn probe_filter(&self) -> &ProbeFilter {
        &self.probe_filter
    }

    /// Controller statistics (the probe-filter array's own counters are on
    /// [`DirectoryController::probe_filter`]).
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Exports this controller's complete dynamic state (probe-filter
    /// contents plus the controller's counters) for checkpointing.
    pub fn export_state(&self) -> DirectoryControllerState {
        DirectoryControllerState {
            probe_filter: self.probe_filter.export_state(),
            stats: self.stats,
        }
    }

    /// Restores state captured with [`DirectoryController::export_state`]
    /// onto a controller built with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if the export's probe-filter geometry does not match.
    pub fn restore_state(&mut self, state: &DirectoryControllerState) {
        self.probe_filter.restore_state(&state.probe_filter);
        self.stats = state.stats;
    }

    /// Handles one coherence request, driving probes/invalidations/DRAM
    /// through `sys`, and returns the response the requester sees.
    pub fn handle_request(
        &mut self,
        req: CoherenceRequest,
        sys: &mut dyn SystemAccess,
    ) -> DirectoryResponse {
        self.stats.requests.incr();
        let local = req.is_local_to(self.home);
        if local {
            self.stats.requests_local.incr();
        } else {
            self.stats.requests_remote.incr();
        }

        // The request message travels from the requester to the home node,
        // then the probe filter is consulted (it is *always* consulted,
        // which is what makes switching into ALLARM mode at run time safe —
        // Section II-C).
        let mut latency = sys.send(req.requester_node, self.home, MessageClass::Request);
        latency += self.pf_latency;

        let response = match self.probe_filter.lookup(req.line) {
            Some(_) => self.handle_hit(req, sys),
            None => self.handle_miss(req, sys),
        };

        DirectoryResponse {
            latency: latency + response.latency,
            ..response
        }
    }

    /// Processes a cache's notification that it dropped its copy of `line`
    /// (a clean-exclusive eviction notice or a dirty writeback). Updates the
    /// probe filter and absorbs the writeback; returns the latency of the
    /// writeback path (not on any core's critical path).
    pub fn note_cache_eviction(
        &mut self,
        line: LineAddr,
        core: CoreId,
        dirty: bool,
        sys: &mut dyn SystemAccess,
    ) -> Nanos {
        let src = sys.node_of_core(core);
        let class = if dirty {
            MessageClass::WriteBack
        } else {
            MessageClass::EvictNotify
        };
        let mut latency = sys.send(src, self.home, class);
        if dirty {
            latency += sys.dram_write(self.home);
        }
        // If the core's node still holds the line in its shared LLC slice,
        // the node-level presence must survive the private eviction — keep
        // the core tracked so ownership invalidations and back-invalidations
        // keep reaching the slice (slice-resident ⇒ probe-filter-tracked).
        if !sys.probe_llc(src, line, false) {
            self.probe_filter.remove_sharer(line, core);
        }
        latency
    }

    fn handle_hit(
        &mut self,
        req: CoherenceRequest,
        sys: &mut dyn SystemAccess,
    ) -> DirectoryResponse {
        let entry = self
            .probe_filter
            .peek(req.line)
            .expect("handle_hit is only called after a successful lookup");
        match req.kind {
            RequestKind::GetS => {
                let owner = entry.owner;
                if owner != req.requester && entry.sharers.contains(owner) {
                    // Probe the owner and launch the DRAM read speculatively
                    // in parallel (as deployed Hammer directories do): if the
                    // owner still holds the line it supplies it
                    // cache-to-cache, otherwise the memory copy is used and
                    // the probe cost is overlapped with the DRAM access.
                    let owner_node = sys.node_of_core(owner);
                    let probe = sys.send(self.home, owner_node, MessageClass::Probe);
                    let outcome = sys.probe_cache(owner, req.line, true, false);
                    match outcome {
                        ProbeOutcome::Hit { dirty, .. } => {
                            self.stats.cache_transfers.incr();
                            let transfer =
                                sys.send(owner_node, req.requester_node, MessageClass::ProbeData);
                            self.probe_filter.add_sharer(req.line, req.requester);
                            if dirty {
                                // The owner keeps the line in Owned state and
                                // remains the owner of record.
                            }
                            return DirectoryResponse {
                                latency: probe + sys.cache_access_latency() + transfer,
                                fill_state: CoherenceState::Shared,
                                local_probe_hidden: None,
                            };
                        }
                        ProbeOutcome::Miss => {
                            // Stale entry: the owner dropped the line without
                            // the directory noticing (silent clean drop). The
                            // speculative memory read supplies the data; the
                            // probe round trip overlaps with it.
                            let ack = sys.send(owner_node, self.home, MessageClass::ProbeAck);
                            // Same invariant as note_cache_eviction: the
                            // owner's node slice may still hold the line even
                            // though the private copy was silently dropped.
                            if !sys.probe_llc(owner_node, req.line, false) {
                                self.probe_filter.remove_sharer(req.line, owner);
                            }
                            let dram = sys.dram_read(self.home);
                            self.stats.dram_fills.incr();
                            let probe_path = probe + sys.cache_access_latency() + ack;
                            let data = sys.send(self.home, req.requester_node, MessageClass::Data);
                            // Re-establish tracking for the requester. Other
                            // sharers may remain in the entry, in which case
                            // the requester only gets a shared copy.
                            let fill_state = match self.probe_filter.peek(req.line) {
                                Some(remaining) => {
                                    self.probe_filter.add_sharer(req.line, req.requester);
                                    if remaining.sharers.is_empty() {
                                        CoherenceState::Exclusive
                                    } else {
                                        CoherenceState::Shared
                                    }
                                }
                                None => {
                                    self.probe_filter.allocate(req.line, req.requester);
                                    CoherenceState::Exclusive
                                }
                            };
                            return DirectoryResponse {
                                latency: probe_path.max(dram) + data,
                                fill_state,
                                local_probe_hidden: None,
                            };
                        }
                    }
                }
                // The requester is (or was) the owner of record, or the owner
                // is unknown: serve from memory and refresh the entry.
                let dram = sys.dram_read(self.home);
                self.stats.dram_fills.incr();
                let data = sys.send(self.home, req.requester_node, MessageClass::Data);
                self.probe_filter.add_sharer(req.line, req.requester);
                let state = if entry.sharers.count() <= 1 {
                    CoherenceState::Exclusive
                } else {
                    CoherenceState::Shared
                };
                DirectoryResponse {
                    latency: dram + data,
                    fill_state: state,
                    local_probe_hidden: None,
                }
            }
            RequestKind::GetX | RequestKind::Upgrade => {
                let response =
                    self.invalidate_for_ownership(req, entry.sharers.iter().collect(), sys);
                self.probe_filter.set_owner(req.line, req.requester, true);
                response
            }
        }
    }

    /// The caches that must lose their copy for `requester` to take
    /// ownership, grouped by NUMA node in ascending core order. Grouping is
    /// what makes tracking hierarchical on multi-core nodes: the directory
    /// sends one invalidation (and collects one combined ack) per *node*,
    /// and the node fans it out to its member caches locally. With one core
    /// per node every group is a singleton and the flow is the classic
    /// per-core one.
    fn invalidation_targets(
        &self,
        sharers: Vec<CoreId>,
        exclude: CoreId,
        sys: &dyn SystemAccess,
    ) -> Vec<(NodeId, Vec<CoreId>)> {
        let targets: Box<dyn Iterator<Item = CoreId>> = match self.sharer_tracking {
            SharerTracking::SharerVector => Box::new(sharers.into_iter()),
            SharerTracking::HammerBroadcast => {
                Box::new((0..sys.num_cores() as u16).map(CoreId::new))
            }
        };
        let mut groups: Vec<(NodeId, Vec<CoreId>)> = Vec::new();
        for core in targets.filter(|c| *c != exclude) {
            let node = sys.node_of_core(core);
            match groups.last_mut() {
                Some((n, cores)) if *n == node => cores.push(core),
                _ => groups.push((node, vec![core])),
            }
        }
        groups
    }

    /// Invalidates every copy other than the requester's and (for GetX)
    /// delivers the data. Used for both probe-filter hits on writes and the
    /// write-miss allocation path.
    fn invalidate_for_ownership(
        &mut self,
        req: CoherenceRequest,
        sharers: Vec<CoreId>,
        sys: &mut dyn SystemAccess,
    ) -> DirectoryResponse {
        let groups = self.invalidation_targets(sharers, req.requester, sys);

        // All invalidations proceed in parallel; the critical path is the
        // slowest round trip. Within a node the member caches are probed in
        // parallel off one message, so the node costs a single array
        // latency however many cores it hosts.
        let mut inval_path = Nanos::ZERO;
        let mut dirty_source: Option<NodeId> = None;
        for (target_node, cores) in groups {
            let inv = sys.send(self.home, target_node, MessageClass::Invalidate);
            let mut node_had_dirty = false;
            for target in cores {
                let outcome = sys.probe_cache(target, req.line, false, true);
                self.stats.ownership_invalidations.incr();
                if let ProbeOutcome::Hit { dirty: true, .. } = outcome {
                    node_had_dirty = true;
                }
            }
            // The node's shared LLC slice loses its clean copy off the same
            // invalidation message (no extra traffic, no extra latency — the
            // slice is looked up alongside the member caches).
            sys.probe_llc(target_node, req.line, true);
            let ack = sys.send(target_node, self.home, MessageClass::InvalidateAck);
            if node_had_dirty {
                dirty_source = Some(target_node);
            }
            inval_path = inval_path.max(inv + sys.cache_access_latency() + ack);
        }

        // The requester's own node slice may also hold a clean copy (the
        // requester is excluded from the target groups): it must die before
        // the requester takes Modified ownership, or a same-node reader
        // could later be served stale data from the slice.
        sys.probe_llc(req.requester_node, req.line, true);

        // Data delivery (GetX only). A dirty copy is forwarded
        // cache-to-cache; otherwise memory supplies it, overlapping with the
        // invalidations.
        let data_path = if req.kind.needs_data() {
            if let Some(src) = dirty_source {
                self.stats.cache_transfers.incr();
                sys.send(src, req.requester_node, MessageClass::ProbeData)
            } else {
                let dram = sys.dram_read(self.home);
                self.stats.dram_fills.incr();
                dram + sys.send(self.home, req.requester_node, MessageClass::Data)
            }
        } else {
            Nanos::ZERO
        };

        DirectoryResponse {
            latency: inval_path.max(data_path),
            fill_state: CoherenceState::Modified,
            local_probe_hidden: None,
        }
    }

    fn handle_miss(
        &mut self,
        req: CoherenceRequest,
        sys: &mut dyn SystemAccess,
    ) -> DirectoryResponse {
        // ALLARM is enabled for *one* core per affinity domain (Section
        // II-E): only the node's designated core may hold untracked lines,
        // because the remote-miss flow probes exactly that core. Misses
        // from a multi-core node's other local cores take the baseline
        // allocate path. With one core per node the designated core is the
        // only local core and this reduces to the node-level policy check.
        let allocate = self.policy.should_allocate(req.requester_node, self.home)
            || req.requester != sys.local_core_of(self.home);

        if !allocate {
            // ALLARM, local requester: no probe-filter entry, no coherence
            // traffic; the line is served straight from the local DRAM.
            self.stats.allarm_allocation_skips.incr();
            let dram = sys.dram_read(self.home);
            self.stats.dram_fills.incr();
            let data = sys.send(self.home, req.requester_node, MessageClass::Data);
            let fill_state = if req.kind.is_write() {
                CoherenceState::Modified
            } else {
                CoherenceState::Exclusive
            };
            return DirectoryResponse {
                latency: dram + data,
                fill_state,
                local_probe_hidden: None,
            };
        }

        // Allocate an entry (possibly displacing a victim).
        if let Some(eviction) = self.probe_filter.allocate(req.line, req.requester) {
            self.process_pf_eviction(eviction, sys);
        }

        if self.policy.is_allarm() {
            // Remote miss under ALLARM: the local core may hold the line
            // without a directory entry, so it must be probed. The probe and
            // the DRAM access are launched in parallel (Section II-D).
            self.allarm_remote_miss(req, sys)
        } else {
            // Baseline miss: nobody holds the line (the probe filter tracks
            // every cached line), so memory supplies it.
            let dram = sys.dram_read(self.home);
            self.stats.dram_fills.incr();
            let data = sys.send(self.home, req.requester_node, MessageClass::Data);
            let fill_state = if req.kind.is_write() {
                CoherenceState::Modified
            } else {
                CoherenceState::Exclusive
            };
            DirectoryResponse {
                latency: dram + data,
                fill_state,
                local_probe_hidden: None,
            }
        }
    }

    /// The ALLARM remote-miss flow: allocate (done by the caller), probe the
    /// local core, fetch from DRAM in parallel, and serve from whichever
    /// source actually holds the data.
    fn allarm_remote_miss(
        &mut self,
        req: CoherenceRequest,
        sys: &mut dyn SystemAccess,
    ) -> DirectoryResponse {
        let local_core = sys.local_core_of(self.home);
        self.stats.local_probes.incr();

        // The probe travels on-die (home -> home: zero network hops) and
        // looks up the local core's SRAM.
        let probe_msg = sys.send(self.home, self.home, MessageClass::Probe);
        let probe_latency = probe_msg + sys.cache_access_latency();
        let is_write = req.kind.is_write();
        let outcome = sys.probe_cache(local_core, req.line, !is_write, is_write);

        // The DRAM access is issued concurrently with the probe.
        let dram_latency = sys.dram_read(self.home);
        self.stats.dram_fills.incr();

        match outcome {
            ProbeOutcome::Hit { dirty, .. } => {
                self.stats.local_probe_hits.incr();
                self.stats.cache_transfers.incr();
                // The local core supplies the line; the prefetched DRAM copy
                // is discarded. The probe is on the critical path.
                let transfer = sys.send(self.home, req.requester_node, MessageClass::ProbeData);
                if is_write {
                    // The local copy was invalidated by the probe; the
                    // requester becomes the sole owner.
                    self.probe_filter.set_owner(req.line, req.requester, true);
                } else {
                    // The local core keeps a shared/owned copy and must be
                    // tracked alongside the requester.
                    self.probe_filter.add_sharer(req.line, local_core);
                    if dirty {
                        self.probe_filter.set_owner(req.line, local_core, false);
                        self.probe_filter.add_sharer(req.line, req.requester);
                    }
                }
                let fill_state = if is_write {
                    CoherenceState::Modified
                } else {
                    CoherenceState::Shared
                };
                DirectoryResponse {
                    latency: probe_latency + transfer,
                    fill_state,
                    local_probe_hidden: Some(false),
                }
            }
            ProbeOutcome::Miss => {
                // The common case the paper's analysis relies on: the local
                // core does not hold the line, the DRAM access dominates, and
                // the probe is completely hidden.
                let hidden = probe_latency <= dram_latency;
                if hidden {
                    self.stats.local_probes_hidden.incr();
                }
                let data = sys.send(self.home, req.requester_node, MessageClass::Data);
                let fill_state = if is_write {
                    CoherenceState::Modified
                } else {
                    CoherenceState::Exclusive
                };
                DirectoryResponse {
                    latency: probe_latency.max(dram_latency) + data,
                    fill_state,
                    local_probe_hidden: Some(hidden),
                }
            }
        }
    }

    /// Back-invalidates a probe-filter victim from every cache that may hold
    /// it. The invalidations are not on the requesting core's critical path
    /// (the directory retires them in the background), but every message and
    /// every lost cache line is accounted for — they are the cost the paper
    /// measures in Figs. 3b–3f.
    fn process_pf_eviction(&mut self, eviction: PfEviction, sys: &mut dyn SystemAccess) {
        self.stats.pf_evictions.incr();
        let line = eviction.entry.line;
        let sharers: Vec<CoreId> = eviction.entry.sharers.iter().collect();
        // No core is exempt from a back-invalidation, so exclude a core id
        // that cannot occur.
        let nobody = CoreId::new(u16::MAX);
        for (target_node, cores) in self.invalidation_targets(sharers, nobody, sys) {
            // One invalidation reaches the node; its member caches are
            // probed there; one combined ack returns. On one-core nodes
            // this is the classic two-messages-per-sharer cost of Fig. 3d;
            // hierarchical tracking amortizes it across the node's cores.
            sys.send(self.home, target_node, MessageClass::Invalidate);
            self.stats.eviction_messages.incr();
            let mut writebacks = 0u64;
            for target in cores {
                let outcome = sys.probe_cache(target, line, false, true);
                if let ProbeOutcome::Hit { dirty, .. } = outcome {
                    self.stats.eviction_invalidations.incr();
                    if dirty {
                        writebacks += 1;
                    }
                }
            }
            // Once the directory stops tracking the line, the node's shared
            // LLC slice may no longer serve it either.
            sys.probe_llc(target_node, line, true);
            sys.send(target_node, self.home, MessageClass::InvalidateAck);
            self.stats.eviction_messages.incr();
            for _ in 0..writebacks {
                // The victim's dirty data must be written back to memory.
                sys.send(target_node, self.home, MessageClass::WriteBack);
                self.stats.eviction_messages.incr();
                self.stats.eviction_writebacks.incr();
                sys.dram_write(self.home);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allarm_cache::CoreCaches;
    use allarm_noc::Network;
    use allarm_types::config::{MachineConfig, NocConfig};

    /// A miniature 4-core machine for exercising the controller directly.
    /// With `cores_per_node > 1` the four cores fold onto fewer nodes
    /// (blocked assignment), exercising the hierarchical flows.
    struct MiniSystem {
        caches: Vec<CoreCaches>,
        network: Network,
        cores_per_node: u16,
        dram_latency: Nanos,
        dram_reads: u64,
        dram_writes: u64,
    }

    impl MiniSystem {
        fn new() -> Self {
            MiniSystem::with_cores_per_node(1)
        }

        fn with_cores_per_node(cores_per_node: u16) -> Self {
            let cfg = MachineConfig::small_test();
            let mesh = 2 / cores_per_node.min(2) as u32;
            MiniSystem {
                caches: (0..4).map(|_| CoreCaches::new(&cfg.l1d, &cfg.l2)).collect(),
                network: Network::new(NocConfig::mesh(mesh.max(1), 2)),
                cores_per_node,
                dram_latency: Nanos::new(60),
                dram_reads: 0,
                dram_writes: 0,
            }
        }
    }

    impl SystemAccess for MiniSystem {
        fn probe_cache(
            &mut self,
            core: CoreId,
            line: LineAddr,
            downgrade: bool,
            invalidate: bool,
        ) -> ProbeOutcome {
            self.caches[core.index()].probe(line, downgrade, invalidate)
        }

        fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
            self.network.send(src, dst, class)
        }

        fn message_latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
            self.network.latency(src, dst, class)
        }

        fn dram_read(&mut self, node: NodeId) -> Nanos {
            let _ = node;
            self.dram_reads += 1;
            self.dram_latency
        }

        fn dram_write(&mut self, node: NodeId) -> Nanos {
            let _ = node;
            self.dram_writes += 1;
            self.dram_latency
        }

        fn node_of_core(&self, core: CoreId) -> NodeId {
            NodeId::new(core.raw() / self.cores_per_node)
        }

        fn local_core_of(&self, node: NodeId) -> CoreId {
            CoreId::new(node.raw() * self.cores_per_node)
        }

        fn num_cores(&self) -> usize {
            self.caches.len()
        }

        fn cache_access_latency(&self) -> Nanos {
            Nanos::new(1)
        }
    }

    fn controller(policy: AllocationPolicy) -> DirectoryController {
        // 2 entries: tiny, to force evictions; LRU so the victim is the
        // entry the test expects.
        let mut cfg = ProbeFilterConfig::new(2 * 64, 2);
        cfg.replacement = allarm_types::config::PfReplacement::Lru;
        DirectoryController::new(NodeId::new(0), &cfg, policy)
    }

    fn big_controller(policy: AllocationPolicy) -> DirectoryController {
        DirectoryController::new(NodeId::new(0), &ProbeFilterConfig::new(4096, 4), policy)
    }

    fn gets(line: u64, core: u16) -> CoherenceRequest {
        CoherenceRequest::new(
            LineAddr::new(line),
            RequestKind::GetS,
            CoreId::new(core),
            NodeId::new(core),
        )
    }

    fn getx(line: u64, core: u16) -> CoherenceRequest {
        CoherenceRequest::new(
            LineAddr::new(line),
            RequestKind::GetX,
            CoreId::new(core),
            NodeId::new(core),
        )
    }

    #[test]
    fn baseline_local_miss_allocates_entry() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        let resp = dir.handle_request(gets(100, 0), &mut sys);
        assert_eq!(resp.fill_state, CoherenceState::Exclusive);
        assert!(dir.probe_filter().peek(LineAddr::new(100)).is_some());
        assert_eq!(dir.stats().requests_local.get(), 1);
        assert_eq!(sys.dram_reads, 1);
        // Local request: only the DRAM latency and the (free) on-node
        // messages are on the path.
        assert_eq!(resp.latency, Nanos::new(60) + dir.pf_latency);
    }

    #[test]
    fn allarm_local_miss_skips_allocation() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Allarm);
        let resp = dir.handle_request(gets(100, 0), &mut sys);
        assert_eq!(resp.fill_state, CoherenceState::Exclusive);
        assert!(dir.probe_filter().peek(LineAddr::new(100)).is_none());
        assert_eq!(dir.stats().allarm_allocation_skips.get(), 1);
        assert_eq!(resp.local_probe_hidden, None);
        assert_eq!(sys.dram_reads, 1);
    }

    #[test]
    fn allarm_remote_miss_allocates_and_hides_probe() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Allarm);
        // Remote core 3 requests a line homed on node 0; the local core does
        // not hold it, so the probe is hidden behind DRAM.
        let resp = dir.handle_request(gets(100, 3), &mut sys);
        assert!(dir.probe_filter().peek(LineAddr::new(100)).is_some());
        assert_eq!(resp.local_probe_hidden, Some(true));
        assert_eq!(dir.stats().local_probes.get(), 1);
        assert_eq!(dir.stats().local_probes_hidden.get(), 1);
        assert_eq!(dir.stats().local_probe_hits.get(), 0);
        assert_eq!(resp.fill_state, CoherenceState::Exclusive);
    }

    #[test]
    fn allarm_remote_miss_with_local_copy_serves_cache_to_cache() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Allarm);
        // The local core (core 0) already holds the line privately, with no
        // probe-filter entry (it was served via the ALLARM local path).
        dir.handle_request(gets(100, 0), &mut sys);
        sys.caches[0].fill(LineAddr::new(100), CoherenceState::Modified);
        // Now remote core 2 reads the same line.
        let resp = dir.handle_request(gets(100, 2), &mut sys);
        assert_eq!(resp.local_probe_hidden, Some(false));
        assert_eq!(resp.fill_state, CoherenceState::Shared);
        assert_eq!(dir.stats().local_probe_hits.get(), 1);
        assert_eq!(dir.stats().cache_transfers.get(), 1);
        // The local core keeps an owned copy and is tracked as the owner.
        let entry = dir.probe_filter().peek(LineAddr::new(100)).unwrap();
        assert!(entry.sharers.contains(CoreId::new(0)));
        assert!(entry.sharers.contains(CoreId::new(2)));
        assert_eq!(entry.owner, CoreId::new(0));
        assert_eq!(
            sys.caches[0].state_of(LineAddr::new(100)),
            Some(CoherenceState::Owned)
        );
    }

    #[test]
    fn allarm_remote_write_invalidates_local_copy() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Allarm);
        dir.handle_request(gets(100, 0), &mut sys);
        sys.caches[0].fill(LineAddr::new(100), CoherenceState::Modified);
        let resp = dir.handle_request(getx(100, 2), &mut sys);
        assert_eq!(resp.fill_state, CoherenceState::Modified);
        // The local copy is gone and the requester is the sole tracked owner.
        assert_eq!(sys.caches[0].state_of(LineAddr::new(100)), None);
        let entry = dir.probe_filter().peek(LineAddr::new(100)).unwrap();
        assert_eq!(entry.owner, CoreId::new(2));
        assert_eq!(entry.sharers.count(), 1);
    }

    #[test]
    fn pf_hit_gets_probes_owner_for_cache_to_cache_transfer() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        // Core 1 fetches the line (remote miss, allocates, owner = core 1).
        let r1 = dir.handle_request(gets(200, 1), &mut sys);
        sys.caches[1].fill(LineAddr::new(200), r1.fill_state);
        // Core 2 reads it: the directory probes core 1, which supplies it.
        let r2 = dir.handle_request(gets(200, 2), &mut sys);
        assert_eq!(r2.fill_state, CoherenceState::Shared);
        assert_eq!(dir.stats().cache_transfers.get(), 1);
        let entry = dir.probe_filter().peek(LineAddr::new(200)).unwrap();
        assert!(entry.sharers.contains(CoreId::new(1)));
        assert!(entry.sharers.contains(CoreId::new(2)));
    }

    #[test]
    fn pf_hit_with_stale_owner_falls_back_to_dram() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        let r1 = dir.handle_request(gets(200, 1), &mut sys);
        // Core 1 never actually keeps the line (silent drop): don't fill.
        let _ = r1;
        let reads_before = sys.dram_reads;
        let r2 = dir.handle_request(gets(200, 2), &mut sys);
        assert_eq!(r2.fill_state, CoherenceState::Exclusive);
        assert_eq!(sys.dram_reads, reads_before + 1);
    }

    #[test]
    fn getx_invalidates_all_sharers() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        // Cores 1 and 2 both cache the line.
        let r1 = dir.handle_request(gets(300, 1), &mut sys);
        sys.caches[1].fill(LineAddr::new(300), r1.fill_state);
        let r2 = dir.handle_request(gets(300, 2), &mut sys);
        sys.caches[2].fill(LineAddr::new(300), r2.fill_state);
        // Core 3 writes it.
        let r3 = dir.handle_request(getx(300, 3), &mut sys);
        assert_eq!(r3.fill_state, CoherenceState::Modified);
        assert!(dir.stats().ownership_invalidations.get() >= 2);
        assert_eq!(sys.caches[1].state_of(LineAddr::new(300)), None);
        assert_eq!(sys.caches[2].state_of(LineAddr::new(300)), None);
        let entry = dir.probe_filter().peek(LineAddr::new(300)).unwrap();
        assert_eq!(entry.owner, CoreId::new(3));
        assert_eq!(entry.sharers.count(), 1);
    }

    #[test]
    fn upgrade_needs_no_data_message() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        let r1 = dir.handle_request(gets(300, 1), &mut sys);
        sys.caches[1].fill(LineAddr::new(300), r1.fill_state);
        let data_before = sys.network.stats().messages_of(MessageClass::Data)
            + sys.network.stats().messages_of(MessageClass::ProbeData);
        let req = CoherenceRequest::new(
            LineAddr::new(300),
            RequestKind::Upgrade,
            CoreId::new(1),
            NodeId::new(1),
        );
        let resp = dir.handle_request(req, &mut sys);
        assert_eq!(resp.fill_state, CoherenceState::Modified);
        let data_after = sys.network.stats().messages_of(MessageClass::Data)
            + sys.network.stats().messages_of(MessageClass::ProbeData);
        assert_eq!(data_before, data_after);
    }

    #[test]
    fn pf_eviction_back_invalidates_sharers() {
        let mut sys = MiniSystem::new();
        // Tiny probe filter: 2 sets x 2 ways... actually 2-entry config:
        let mut dir = controller(AllocationPolicy::Baseline);
        // Fill lines that all land in the same set until one is evicted.
        // With 2 entries (1 set would need ways=2); use lines 0, 2, 4 which
        // share set 0 of a 2-set filter.
        let r = dir.handle_request(gets(0, 1), &mut sys);
        sys.caches[1].fill(LineAddr::new(0), r.fill_state);
        let r = dir.handle_request(gets(2, 2), &mut sys);
        sys.caches[2].fill(LineAddr::new(2), r.fill_state);
        let evictions_before = dir.stats().pf_evictions.get();
        let _ = dir.handle_request(gets(4, 3), &mut sys);
        assert_eq!(dir.stats().pf_evictions.get(), evictions_before + 1);
        // The victim (line 0, cached by core 1) was invalidated in core 1's
        // cache even though core 1 did nothing wrong — the collateral damage
        // ALLARM avoids.
        assert_eq!(sys.caches[1].state_of(LineAddr::new(0)), None);
        assert!(dir.stats().eviction_messages.get() >= 2);
        assert_eq!(dir.stats().eviction_invalidations.get(), 1);
        assert!(dir.stats().messages_per_eviction() >= 2.0);
    }

    #[test]
    fn eviction_of_dirty_copy_forces_writeback() {
        let mut sys = MiniSystem::new();
        let mut dir = controller(AllocationPolicy::Baseline);
        let r = dir.handle_request(getx(0, 1), &mut sys);
        sys.caches[1].fill(LineAddr::new(0), r.fill_state);
        dir.handle_request(gets(2, 2), &mut sys);
        let writes_before = sys.dram_writes;
        dir.handle_request(gets(4, 3), &mut sys);
        assert_eq!(dir.stats().eviction_writebacks.get(), 1);
        assert_eq!(sys.dram_writes, writes_before + 1);
    }

    #[test]
    fn eviction_notice_deallocates_entry() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        let r = dir.handle_request(gets(500, 1), &mut sys);
        sys.caches[1].fill(LineAddr::new(500), r.fill_state);
        assert!(dir.probe_filter().peek(LineAddr::new(500)).is_some());
        dir.note_cache_eviction(LineAddr::new(500), CoreId::new(1), false, &mut sys);
        assert!(dir.probe_filter().peek(LineAddr::new(500)).is_none());
    }

    #[test]
    fn dirty_eviction_notice_writes_back() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        let r = dir.handle_request(getx(500, 1), &mut sys);
        sys.caches[1].fill(LineAddr::new(500), r.fill_state);
        let writes_before = sys.dram_writes;
        let latency = dir.note_cache_eviction(LineAddr::new(500), CoreId::new(1), true, &mut sys);
        assert_eq!(sys.dram_writes, writes_before + 1);
        assert!(latency >= Nanos::new(60));
    }

    #[test]
    fn local_remote_fractions_are_tracked() {
        let mut sys = MiniSystem::new();
        let mut dir = big_controller(AllocationPolicy::Baseline);
        dir.handle_request(gets(1, 0), &mut sys);
        dir.handle_request(gets(2, 1), &mut sys);
        dir.handle_request(gets(3, 2), &mut sys);
        dir.handle_request(gets(4, 0), &mut sys);
        assert_eq!(dir.stats().requests.get(), 4);
        assert_eq!(dir.stats().requests_local.get(), 2);
        assert_eq!(dir.stats().requests_remote.get(), 2);
        assert!((dir.stats().local_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hammer_broadcast_sends_more_eviction_messages() {
        let mut sys_vec = MiniSystem::new();
        let mut sys_bc = MiniSystem::new();
        let mut cfg = ProbeFilterConfig::new(2 * 64, 2);
        cfg.replacement = allarm_types::config::PfReplacement::Lru;
        let mut dir_vec =
            DirectoryController::new(NodeId::new(0), &cfg, AllocationPolicy::Baseline);
        cfg.sharer_tracking = SharerTracking::HammerBroadcast;
        let mut dir_bc = DirectoryController::new(NodeId::new(0), &cfg, AllocationPolicy::Baseline);

        for dir_sys in [(&mut dir_vec, &mut sys_vec), (&mut dir_bc, &mut sys_bc)] {
            let (dir, sys) = dir_sys;
            let r = dir.handle_request(gets(0, 1), sys);
            sys.caches[1].fill(LineAddr::new(0), r.fill_state);
            dir.handle_request(gets(2, 2), sys);
            dir.handle_request(gets(4, 3), sys);
        }
        assert!(dir_bc.stats().eviction_messages.get() > dir_vec.stats().eviction_messages.get());
    }

    #[test]
    fn accessors() {
        let dir = big_controller(AllocationPolicy::Allarm);
        assert_eq!(dir.home(), NodeId::new(0));
        assert_eq!(dir.policy(), AllocationPolicy::Allarm);
        assert_eq!(dir.stats().requests.get(), 0);
    }

    /// A request on the 2-node x 2-core machine; the requester node is
    /// derived from the hierarchical mapping.
    fn gets2(line: u64, core: u16) -> CoherenceRequest {
        CoherenceRequest::new(
            LineAddr::new(line),
            RequestKind::GetS,
            CoreId::new(core),
            NodeId::new(core / 2),
        )
    }

    #[test]
    fn allarm_skips_allocation_only_for_the_designated_core() {
        // 2 nodes x 2 cores: node 0 hosts cores 0 (designated) and 1.
        let mut sys = MiniSystem::with_cores_per_node(2);
        let mut dir = DirectoryController::hierarchical(
            NodeId::new(0),
            &ProbeFilterConfig::new(4096, 4),
            AllocationPolicy::Allarm,
            2,
        );
        // The designated core's local miss stays untracked...
        dir.handle_request(gets2(100, 0), &mut sys);
        assert!(dir.probe_filter().peek(LineAddr::new(100)).is_none());
        assert_eq!(dir.stats().allarm_allocation_skips.get(), 1);
        // ...but the same node's other core allocates like the baseline:
        // the remote-miss flow only ever probes the designated core, so
        // lines cached elsewhere on the node must be tracked.
        dir.handle_request(gets2(101, 1), &mut sys);
        assert!(dir.probe_filter().peek(LineAddr::new(101)).is_some());
        assert_eq!(dir.stats().allarm_allocation_skips.get(), 1);
    }

    #[test]
    fn hierarchical_eviction_amortizes_messages_across_a_node() {
        // 2 nodes x 2 cores, a 2-entry probe filter homed on node 0. Cores
        // 2 and 3 (both node 1) share line 0; evicting its entry must cost
        // one invalidation + one ack for the *node*, not per core.
        let mut sys = MiniSystem::with_cores_per_node(2);
        let mut cfg = ProbeFilterConfig::new(2 * 64, 2);
        cfg.replacement = allarm_types::config::PfReplacement::Lru;
        let mut dir =
            DirectoryController::hierarchical(NodeId::new(0), &cfg, AllocationPolicy::Baseline, 2);
        let r = dir.handle_request(gets2(0, 2), &mut sys);
        sys.caches[2].fill(LineAddr::new(0), r.fill_state);
        let r = dir.handle_request(gets2(0, 3), &mut sys);
        sys.caches[3].fill(LineAddr::new(0), r.fill_state);
        assert_eq!(
            dir.probe_filter()
                .peek(LineAddr::new(0))
                .unwrap()
                .sharers
                .count(),
            2
        );
        // Fill the set (lines 0 and 2 map to set 0) and displace line 0.
        dir.handle_request(gets2(2, 0), &mut sys);
        dir.handle_request(gets2(4, 0), &mut sys);
        assert_eq!(dir.stats().pf_evictions.get(), 1);
        // Two sharers, one node: 1 invalidate + 1 ack.
        assert_eq!(dir.stats().eviction_messages.get(), 2);
        assert_eq!(dir.stats().eviction_invalidations.get(), 2);
        assert_eq!(sys.caches[2].state_of(LineAddr::new(0)), None);
        assert_eq!(sys.caches[3].state_of(LineAddr::new(0)), None);
        // The two-level filter recorded its node-vector activity.
        assert!(dir.probe_filter().stats().node_vector_accesses.get() > 0);
    }
}

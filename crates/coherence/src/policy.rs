//! Probe-filter allocation policies: the baseline and ALLARM.

use allarm_types::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Decides whether a request that *misses* in the probe filter allocates a
/// new directory entry.
///
/// This single decision is the paper's contribution. The baseline sparse
/// directory allocates an entry for every miss, so thread-private data —
/// which under first-touch NUMA allocation is homed on the requester's own
/// node — occupies directory capacity and, when evicted, triggers
/// back-invalidations. ALLARM (ALLocAte on Remote Miss) skips allocation
/// when the requester is in the directory's own affinity domain, on the
/// (statistical, not correctness-critical) assumption that such requests are
/// to private data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Allocate a probe-filter entry on every miss (conventional sparse
    /// directory; the paper's baseline).
    #[default]
    Baseline,
    /// Allocate only when the requester is in a *different* affinity domain
    /// from the directory (the paper's proposal).
    Allarm,
}

impl AllocationPolicy {
    /// Should a probe-filter entry be allocated for a miss from
    /// `requester_node` at the directory homed on `home`?
    ///
    /// # Examples
    ///
    /// ```
    /// use allarm_coherence::AllocationPolicy;
    /// use allarm_types::ids::NodeId;
    ///
    /// let home = NodeId::new(0);
    /// assert!(AllocationPolicy::Baseline.should_allocate(home, home));
    /// assert!(!AllocationPolicy::Allarm.should_allocate(home, home));
    /// assert!(AllocationPolicy::Allarm.should_allocate(NodeId::new(9), home));
    /// ```
    pub fn should_allocate(self, requester_node: NodeId, home: NodeId) -> bool {
        match self {
            AllocationPolicy::Baseline => true,
            AllocationPolicy::Allarm => requester_node != home,
        }
    }

    /// True if this is the ALLARM policy (used by reports).
    pub fn is_allarm(self) -> bool {
        matches!(self, AllocationPolicy::Allarm)
    }

    /// Short name used in reports and figure labels.
    pub fn name(self) -> &'static str {
        match self {
            AllocationPolicy::Baseline => "baseline",
            AllocationPolicy::Allarm => "allarm",
        }
    }

    /// Both policies, in the order the figures present them.
    pub const ALL: [AllocationPolicy; 2] = [AllocationPolicy::Baseline, AllocationPolicy::Allarm];
}

impl fmt::Display for AllocationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_always_allocates() {
        let home = NodeId::new(3);
        assert!(AllocationPolicy::Baseline.should_allocate(home, home));
        assert!(AllocationPolicy::Baseline.should_allocate(NodeId::new(7), home));
    }

    #[test]
    fn allarm_allocates_only_on_remote_miss() {
        let home = NodeId::new(3);
        assert!(!AllocationPolicy::Allarm.should_allocate(home, home));
        assert!(AllocationPolicy::Allarm.should_allocate(NodeId::new(0), home));
        assert!(AllocationPolicy::Allarm.should_allocate(NodeId::new(15), home));
    }

    #[test]
    fn names_and_flags() {
        assert_eq!(AllocationPolicy::Baseline.name(), "baseline");
        assert_eq!(AllocationPolicy::Allarm.to_string(), "allarm");
        assert!(AllocationPolicy::Allarm.is_allarm());
        assert!(!AllocationPolicy::Baseline.is_allarm());
        assert_eq!(AllocationPolicy::default(), AllocationPolicy::Baseline);
        assert_eq!(AllocationPolicy::ALL.len(), 2);
    }
}

//! Per-shard directory slices and the cross-shard coherence message
//! boundary.
//!
//! The parallel simulation kernel partitions the machine by home node. A
//! [`DirectoryShard`] owns the directory controllers (and their probe
//! filters and occupancy clocks) of one contiguous block of home nodes;
//! everything a core wants from a directory crosses the shard boundary as
//! an explicit, timestamped [`CoherenceEvent`]. Each shard drains its
//! event queue in the deterministic `(timestamp, source core, sequence)`
//! order defined by [`allarm_engine::MergeKey`], so the protocol-visible
//! order of transactions at every directory — and therefore every counter
//! and latency in the final report — is independent of how many shards
//! (OS threads) the simulation runs on.
//!
//! Determinism across shard *counts* additionally relies on a structural
//! property of the protocol: every cache line has exactly one home node, and
//! a directory only ever touches cache state for lines it homes. Two shards
//! working concurrently therefore never operate on the same line, and their
//! per-cache side effects (line-local probe state changes plus monotonic
//! counters) commute.

use crate::controller::{DirectoryController, SystemAccess};
use crate::policy::AllocationPolicy;
use crate::request::CoherenceRequest;
use allarm_cache::CoherenceState;
use allarm_engine::MergeKey;
use allarm_types::addr::LineAddr;
use allarm_types::config::ProbeFilterConfig;
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::Nanos;
use std::ops::Range;

/// Time a directory controller is occupied by one coherence transaction
/// (tag pipeline, protocol state machine and response scheduling), excluding
/// the per-message work of probe-filter eviction processing which is charged
/// separately.
pub const DIRECTORY_SERVICE_TIME: Nanos = Nanos(12);

/// Controller time charged per coherence message sent while processing a
/// probe-filter eviction (back-invalidations, acks, writebacks).
pub const EVICTION_MESSAGE_TIME: Nanos = Nanos(4);

/// Controller time charged per probe-filter eviction on top of its
/// messages (victim selection and entry teardown).
pub const EVICTION_BASE_TIME: Nanos = Nanos(8);

/// One unit of work crossing the shard boundary toward a home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceOp {
    /// A core's coherence request (miss or upgrade) for a line homed on the
    /// destination shard.
    Request {
        /// The request itself (line, kind, requester).
        request: CoherenceRequest,
        /// When the request reaches the home directory: the issuing core's
        /// clock plus its private-hierarchy latency.
        arrival: Nanos,
    },
    /// Notification that a core dropped its copy of a line (an L2 capacity
    /// victim): a dirty writeback or a clean eviction notice.
    EvictNotice {
        /// The line displaced out of the core's private hierarchy.
        line: LineAddr,
        /// The core that lost the line.
        core: CoreId,
        /// True if the victim held dirty data that must be written back.
        dirty: bool,
    },
}

/// A timestamped coherence message bound for a home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceEvent {
    /// The home node whose directory must process this event.
    pub home: NodeId,
    /// Deterministic processing order: `(timestamp, source core, seq)`.
    pub key: MergeKey,
    /// The work to perform.
    pub op: CoherenceOp,
}

/// What the home directory sends back to a requesting core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceReply {
    /// The core the reply is for.
    pub core: CoreId,
    /// The [`MergeKey`] of the request this reply answers. A core holding
    /// several outstanding misses commits its replies in this (total,
    /// thread-count-independent) order.
    pub key: MergeKey,
    /// Latency added on top of the core's private-hierarchy walk: the time
    /// spent queued behind earlier transactions at the controller plus the
    /// transaction's own critical path.
    pub latency: Nanos,
    /// The MOESI state the requester installs the line in.
    pub fill_state: CoherenceState,
    /// True if the reply carries data (fill); false for an upgrade grant.
    pub carries_data: bool,
}

/// The checkpointed state of one home node's directory: its controller
/// (probe filter + counters) and its occupancy clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryNodeState {
    /// The controller's dynamic state.
    pub controller: crate::controller::DirectoryControllerState,
    /// The controller occupancy clock (queueing model).
    pub busy_until: Nanos,
}

/// The directory slice of one shard: the controllers, probe filters and
/// occupancy clocks of a contiguous block of home nodes.
///
/// # Examples
///
/// ```
/// use allarm_coherence::{AllocationPolicy, DirectoryShard};
/// use allarm_types::config::ProbeFilterConfig;
/// use allarm_types::ids::NodeId;
///
/// let shard = DirectoryShard::new(
///     4..8,
///     &ProbeFilterConfig::new(4096, 4),
///     AllocationPolicy::Allarm,
/// );
/// assert!(shard.owns(NodeId::new(5)));
/// assert!(!shard.owns(NodeId::new(3)));
/// assert_eq!(shard.controllers().len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DirectoryShard {
    first_node: usize,
    controllers: Vec<DirectoryController>,
    /// Per-home-node controller occupancy: a request arriving while the
    /// controller is still working on earlier transactions (including
    /// probe-filter eviction back-invalidations) queues behind them.
    busy_until: Vec<Nanos>,
}

impl DirectoryShard {
    /// Creates the directory slice for home nodes `nodes`, all using the
    /// same probe-filter configuration and allocation policy, on a
    /// one-core-per-node machine.
    pub fn new(nodes: Range<usize>, config: &ProbeFilterConfig, policy: AllocationPolicy) -> Self {
        DirectoryShard::hierarchical(nodes, config, policy, 1)
    }

    /// Creates the directory slice for a machine hosting `cores_per_node`
    /// cores on each NUMA node (two-level probe filters; see
    /// [`DirectoryController::hierarchical`]).
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_node` is zero.
    pub fn hierarchical(
        nodes: Range<usize>,
        config: &ProbeFilterConfig,
        policy: AllocationPolicy,
        cores_per_node: u32,
    ) -> Self {
        DirectoryShard {
            first_node: nodes.start,
            controllers: nodes
                .clone()
                .map(|n| {
                    DirectoryController::hierarchical(
                        NodeId::new(n as u16),
                        config,
                        policy,
                        cores_per_node,
                    )
                })
                .collect(),
            busy_until: vec![Nanos::ZERO; nodes.len()],
        }
    }

    /// True if this shard's slice contains `node`'s directory.
    pub fn owns(&self, node: NodeId) -> bool {
        let n = node.index();
        n >= self.first_node && n < self.first_node + self.controllers.len()
    }

    /// The controllers of this slice, in home-node order.
    pub fn controllers(&self) -> &[DirectoryController] {
        &self.controllers
    }

    /// Consumes the shard, returning its controllers in home-node order
    /// (for end-of-run statistics merging).
    pub fn into_controllers(self) -> Vec<DirectoryController> {
        self.controllers
    }

    /// Exports the complete dynamic state of this slice: each controller
    /// (probe filter + counters) and its occupancy clock, in home-node
    /// order starting at the slice's first node.
    pub fn export_state(&self) -> Vec<DirectoryNodeState> {
        self.controllers
            .iter()
            .zip(&self.busy_until)
            .map(|(c, &busy)| DirectoryNodeState {
                controller: c.export_state(),
                busy_until: busy,
            })
            .collect()
    }

    /// Restores the state of the directory homed on `node`, which must be
    /// owned by this slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside this slice or the probe-filter geometry
    /// does not match.
    pub fn restore_node_state(&mut self, node: NodeId, state: &DirectoryNodeState) {
        assert!(
            self.owns(node),
            "restore for node {} routed to shard {}..{}",
            node.index(),
            self.first_node,
            self.first_node + self.controllers.len(),
        );
        let idx = node.index() - self.first_node;
        self.controllers[idx].restore_state(&state.controller);
        self.busy_until[idx] = state.busy_until;
    }

    /// Drains a batch of events through this shard's directories, in
    /// deterministic [`MergeKey`] order, and returns the replies owed to
    /// requesting cores (in the same order).
    ///
    /// The batch may arrive unsorted (it is typically concatenated from
    /// several source shards); sorting happens here so no caller can
    /// accidentally feed a nondeterministic order.
    ///
    /// # Panics
    ///
    /// Panics if an event's home node is outside this shard's slice.
    pub fn process(
        &mut self,
        events: &mut [CoherenceEvent],
        sys: &mut dyn SystemAccess,
    ) -> Vec<CoherenceReply> {
        events.sort_by_key(|e| e.key);
        let mut replies = Vec::new();
        for &event in events.iter() {
            assert!(
                self.owns(event.home),
                "event for node {} routed to shard {}..{}",
                event.home.index(),
                self.first_node,
                self.first_node + self.controllers.len(),
            );
            let idx = event.home.index() - self.first_node;
            match event.op {
                CoherenceOp::Request { request, arrival } => {
                    replies.push(self.handle_request(idx, request, arrival, event.key, sys));
                }
                CoherenceOp::EvictNotice { line, core, dirty } => {
                    // Writebacks retire in the background; their latency is
                    // not on any core's critical path.
                    self.controllers[idx].note_cache_eviction(line, core, dirty, sys);
                }
            }
        }
        replies
    }

    /// One request transaction: the protocol flow plus the controller-
    /// occupancy model. The back-invalidation work of probe-filter
    /// evictions keeps the controller busy for every message it has to send
    /// and collect, which is how eviction pressure degrades every later
    /// request to the same directory.
    fn handle_request(
        &mut self,
        idx: usize,
        request: CoherenceRequest,
        arrival: Nanos,
        key: MergeKey,
        sys: &mut dyn SystemAccess,
    ) -> CoherenceReply {
        let dir = &mut self.controllers[idx];
        let evictions_before = dir.stats().pf_evictions.get();
        let messages_before = dir.stats().eviction_messages.get();
        let response = dir.handle_request(request, sys);

        let queue_delay = self.busy_until[idx].saturating_sub(arrival);
        let eviction_work = EVICTION_MESSAGE_TIME
            * (dir.stats().eviction_messages.get() - messages_before)
            + EVICTION_BASE_TIME * (dir.stats().pf_evictions.get() - evictions_before);
        let service = DIRECTORY_SERVICE_TIME + eviction_work;
        self.busy_until[idx] = arrival + queue_delay + service;

        CoherenceReply {
            core: request.requester,
            key,
            latency: queue_delay + response.latency,
            fill_state: response.fill_state,
            carries_data: request.kind.needs_data(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestKind;
    use allarm_cache::{CoreCaches, ProbeOutcome};
    use allarm_noc::{MessageClass, Network};
    use allarm_types::config::{MachineConfig, NocConfig};

    /// A miniature 4-core machine backing the shard under test.
    struct MiniSystem {
        caches: Vec<CoreCaches>,
        network: Network,
        dram_accesses: u64,
    }

    impl MiniSystem {
        fn new() -> Self {
            let cfg = MachineConfig::small_test();
            MiniSystem {
                caches: (0..4).map(|_| CoreCaches::new(&cfg.l1d, &cfg.l2)).collect(),
                network: Network::new(NocConfig::mesh(2, 2)),
                dram_accesses: 0,
            }
        }
    }

    impl SystemAccess for MiniSystem {
        fn probe_cache(
            &mut self,
            core: CoreId,
            line: LineAddr,
            downgrade: bool,
            invalidate: bool,
        ) -> ProbeOutcome {
            self.caches[core.index()].probe(line, downgrade, invalidate)
        }
        fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
            self.network.send(src, dst, class)
        }
        fn message_latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
            self.network.latency(src, dst, class)
        }
        fn dram_read(&mut self, _node: NodeId) -> Nanos {
            self.dram_accesses += 1;
            Nanos::new(60)
        }
        fn dram_write(&mut self, _node: NodeId) -> Nanos {
            self.dram_accesses += 1;
            Nanos::new(60)
        }
        fn node_of_core(&self, core: CoreId) -> NodeId {
            NodeId::new(core.raw())
        }
        fn local_core_of(&self, node: NodeId) -> CoreId {
            CoreId::new(node.raw())
        }
        fn num_cores(&self) -> usize {
            self.caches.len()
        }
        fn cache_access_latency(&self) -> Nanos {
            Nanos::new(1)
        }
    }

    fn request_event(home: u16, line: u64, core: u16, time: u64, seq: u32) -> CoherenceEvent {
        CoherenceEvent {
            home: NodeId::new(home),
            key: MergeKey::new(Nanos::new(time), u32::from(core), seq),
            op: CoherenceOp::Request {
                request: CoherenceRequest::new(
                    LineAddr::new(line),
                    RequestKind::GetS,
                    CoreId::new(core),
                    NodeId::new(core),
                ),
                arrival: Nanos::new(time),
            },
        }
    }

    fn shard(nodes: Range<usize>) -> DirectoryShard {
        DirectoryShard::new(
            nodes,
            &ProbeFilterConfig::new(4096, 4),
            AllocationPolicy::Baseline,
        )
    }

    #[test]
    fn events_are_processed_in_merge_key_order_regardless_of_arrival() {
        // Two orderings of the same batch must leave identical state.
        let mut batch = vec![
            request_event(0, 100, 2, 50, 0),
            request_event(1, 201, 3, 10, 0),
            request_event(0, 100, 1, 10, 1),
            request_event(1, 201, 1, 10, 0),
        ];
        let mut reversed = batch.clone();
        reversed.reverse();

        let mut sys_a = MiniSystem::new();
        let mut shard_a = shard(0..2);
        let replies_a = shard_a.process(&mut batch, &mut sys_a);

        let mut sys_b = MiniSystem::new();
        let mut shard_b = shard(0..2);
        let replies_b = shard_b.process(&mut reversed, &mut sys_b);

        assert_eq!(replies_a, replies_b);
        assert_eq!(sys_a.dram_accesses, sys_b.dram_accesses);
        for (a, b) in shard_a.controllers().iter().zip(shard_b.controllers()) {
            assert_eq!(a.stats(), b.stats());
        }
        // (time, core, seq) orders core 1's time-10 events first, so core
        // 2's identical-line request at time 50 sees the allocated entry.
        assert_eq!(replies_a[0].core, CoreId::new(1));
        assert_eq!(replies_a.len(), 4);
    }

    #[test]
    fn queueing_charges_requests_behind_controller_occupancy() {
        // Two requests to the same controller at the same arrival time: the
        // second queues behind the first's service time. The control run
        // spaces the arrivals far apart, so the latency difference between
        // the two runs is exactly the queueing delay.
        let mut sys = MiniSystem::new();
        let mut s = shard(0..1);
        let queued = s.process(
            &mut [
                request_event(0, 100, 1, 10, 0),
                request_event(0, 164, 2, 10, 0),
            ],
            &mut sys,
        );

        let mut sys = MiniSystem::new();
        let mut s = shard(0..1);
        let spaced = s.process(
            &mut [
                request_event(0, 100, 1, 10, 0),
                request_event(0, 164, 2, 10_000, 0),
            ],
            &mut sys,
        );

        assert_eq!(queued.len(), 2);
        assert_eq!(queued[0], spaced[0]);
        assert_eq!(
            queued[1].latency,
            spaced[1].latency + DIRECTORY_SERVICE_TIME,
            "the back-to-back request must absorb the first's service time"
        );
    }

    #[test]
    fn evict_notices_free_directory_entries_without_replies() {
        let mut sys = MiniSystem::new();
        let mut s = shard(0..1);
        let replies = s.process(&mut [request_event(0, 100, 1, 10, 0)], &mut sys);
        assert_eq!(replies.len(), 1);
        assert!(s.controllers()[0]
            .probe_filter()
            .peek(LineAddr::new(100))
            .is_some());

        let notice = CoherenceEvent {
            home: NodeId::new(0),
            key: MergeKey::new(Nanos::new(20), 1, 1),
            op: CoherenceOp::EvictNotice {
                line: LineAddr::new(100),
                core: CoreId::new(1),
                dirty: false,
            },
        };
        let replies = s.process(&mut [notice], &mut sys);
        assert!(replies.is_empty());
        assert!(s.controllers()[0]
            .probe_filter()
            .peek(LineAddr::new(100))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "routed to shard")]
    fn misrouted_events_are_rejected() {
        let mut sys = MiniSystem::new();
        shard(0..2).process(&mut [request_event(3, 1, 1, 0, 0)], &mut sys);
    }
}

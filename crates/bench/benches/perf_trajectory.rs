//! The committed performance trajectory: a fixed-workload simulator
//! benchmark whose numbers are written to `BENCH_9.json` at the repo root,
//! so simulator-throughput regressions show up in review as a diff.
//!
//! Four groups:
//!
//! * `simulate_16c` — the labelled matrix (the iai-callgrind style):
//!   three benchmarks with distinct sharing behaviour × both allocation
//!   policies, on the paper's sixteen-core machine at a fixed access
//!   count. Unchanged across trajectory files, so points stay comparable.
//! * `simulate_64c_batched` — the miss-window batching profile: raytrace
//!   (the most miss-heavy generator) on the 64-core machine through the
//!   **sharded** kernel, at the default window and at the serial
//!   (depth-1) ablation. The pair makes the batching win — fewer barrier
//!   crossings per simulated nanosecond — a number the trajectory tracks.
//! * `fork_from_warm` — the checked-in `scale64_fork_sweep.toml` grid
//!   through the `BatchRunner`, once with its `[warmup]` stanza honoured
//!   (the shared prefix is simulated once per policy and every grid point
//!   forks from the warm image) and once fully cold. The reports are
//!   asserted identical outside the timed region; the pair of numbers is
//!   the wall-clock win fork-from-warm buys on a real sweep.
//! * `simulate_256c_llc` — the NUCA profile: raytrace on the 256-core
//!   (64-node torus) machine through the sharded kernel, with the shared
//!   per-node LLC slices on and off. The pair prices the slice lookup on
//!   the miss path against the directory traffic it absorbs, and tracks
//!   how the kernel scales to the largest committed machine.
//!
//! The workloads are materialized **outside** the timed region — the
//! numbers measure the coherence simulator, not the trace generator.
//! The heavyweight groups set an iteration floor (`min_iters`): one run
//! already exceeds the harness's per-sample duration target, and a floor
//! of one leaves every scheduling hiccup in a single sample (BENCH_7
//! recorded `iters: 1` with a ~15% min/max spread).
//! Skipping the file write: pass any filter (`cargo bench -p allarm-bench
//! --bench perf_trajectory -- barnes`), which marks the run partial.

use allarm_bench::load_scenario_doc;
use allarm_core::{AllocationPolicy, BatchRunner, MachineConfig, SimulationBuilder};
use allarm_harness::{benchmark_main, black_box, stats_to_json, Group};
use allarm_types::config::LlcConfig;
use allarm_types::MissWindowConfig;
use allarm_workloads::{Benchmark, TraceGenerator};

/// Accesses per thread: fixed, so trajectory points stay comparable
/// across commits.
const ACCESSES: usize = 2_000;

/// Accesses per thread for the 64-core batching group — 64 threads make
/// each sample ~2× the 16-core points at this length.
const ACCESSES_64C: usize = 1_000;

/// Accesses per thread for the 256-core NUCA group: 256 threads at this
/// length match the 64-core group's total access count per sample.
const ACCESSES_256C: usize = 500;

const MATRIX: [(Benchmark, &str); 3] = [
    (Benchmark::Barnes, "barnes"),
    (Benchmark::OceanContiguous, "ocean_contiguous"),
    (Benchmark::Raytrace, "raytrace"),
];

fn trajectory() {
    let mut stats = Vec::new();
    let mut complete = true;

    let mut group = Group::new("simulate_16c").sample_count(5).min_iters(2);
    for (benchmark, label) in MATRIX {
        let workload = TraceGenerator::new(16, ACCESSES, 2014).generate(benchmark);
        for policy in AllocationPolicy::ALL {
            let simulator = SimulationBuilder::new(MachineConfig::date2014())
                .policy(policy)
                .build()
                .expect("the Table I machine is valid");
            let name = format!("{label}.{}", format!("{policy:?}").to_lowercase());
            match group.bench(&name, || {
                black_box(simulator.run(&workload).runtime);
            }) {
                Some(s) => stats.push(s),
                None => complete = false, // filtered: don't commit a partial file
            }
        }
    }
    group.finish();

    let mut group = Group::new("simulate_64c_batched")
        .sample_count(5)
        .min_iters(3);
    let workload = TraceGenerator::new(64, ACCESSES_64C, 2014).generate(Benchmark::Raytrace);
    for (window, label) in [
        (MissWindowConfig::default_window(), "raytrace.window8"),
        (MissWindowConfig::serial(), "raytrace.serial"),
    ] {
        let mut machine = MachineConfig::scale64();
        machine.miss_window = window;
        let simulator = SimulationBuilder::new(machine)
            .policy(AllocationPolicy::Allarm)
            .sim_threads(4)
            .build()
            .expect("the 64-core machine is valid");
        match group.bench(label, || {
            black_box(simulator.run(&workload).runtime);
        }) {
            Some(s) => stats.push(s),
            None => complete = false,
        }
    }
    group.finish();

    let mut group = Group::new("fork_from_warm").sample_count(5).min_iters(2);
    let doc_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scenarios/scale64_fork_sweep.toml"
    );
    let doc = load_scenario_doc(doc_path).expect("the checked-in fork sweep loads");
    let warm = doc.expand();
    let cold: Vec<_> = warm
        .iter()
        .map(|s| s.clone().with_warmup_accesses(0))
        .collect();
    let runner = BatchRunner::with_threads(1);
    // The win is only worth tracking if warm-forked sweeps report the same
    // numbers a cold sweep does — assert that once, outside the timed region.
    let warm_results = runner.run(&warm).expect("the fork sweep runs");
    let cold_results = runner.run(&cold).expect("the cold sweep runs");
    assert!(
        warm_results
            .entries
            .iter()
            .zip(&cold_results.entries)
            .all(|(w, c)| w.report == c.report),
        "fork-from-warm changed a report; the trajectory pair would be meaningless"
    );
    for (scenarios, label) in [(&warm, "sweep6.warm_forked"), (&cold, "sweep6.cold")] {
        match group.bench(label, || {
            black_box(runner.run(scenarios).expect("sweep runs").entries.len());
        }) {
            Some(s) => stats.push(s),
            None => complete = false,
        }
    }
    group.finish();

    let mut group = Group::new("simulate_256c_llc").sample_count(5).min_iters(2);
    let workload = TraceGenerator::new(256, ACCESSES_256C, 2014).generate(Benchmark::Raytrace);
    for (llc, label) in [(true, "raytrace.llc_on"), (false, "raytrace.llc_off")] {
        let mut machine = MachineConfig::scale256();
        machine.noc = allarm_types::config::NocConfig::torus(8, 8);
        if llc {
            machine.llc = LlcConfig::shared_slice(4 * 1024 * 1024, 16);
        }
        let simulator = SimulationBuilder::new(machine)
            .policy(AllocationPolicy::Allarm)
            .sim_threads(4)
            .build()
            .expect("the 256-core machine is valid");
        match group.bench(label, || {
            black_box(simulator.run(&workload).runtime);
        }) {
            Some(s) => stats.push(s),
            None => complete = false,
        }
    }
    group.finish();

    if complete {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
        std::fs::write(path, stats_to_json("perf_trajectory", &stats))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[perf_trajectory] wrote {path}");
    } else {
        eprintln!("[perf_trajectory] filtered run: BENCH_9.json not rewritten");
    }
}

benchmark_main!(trajectory);

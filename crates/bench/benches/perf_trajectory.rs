//! The committed performance trajectory: a fixed-workload simulator
//! benchmark whose numbers are written to `BENCH_6.json` at the repo root,
//! so simulator-throughput regressions show up in review as a diff.
//!
//! A labelled matrix (the iai-callgrind style): three benchmarks with
//! distinct sharing behaviour × both allocation policies, on the paper's
//! sixteen-core machine at a fixed access count. The workloads are
//! materialized **outside** the timed region — the numbers measure the
//! coherence simulator, not the trace generator. Skipping the file write:
//! pass any filter (`cargo bench -p allarm-bench --bench perf_trajectory
//! -- barnes`), which marks the run partial.

use allarm_core::{AllocationPolicy, MachineConfig, SimulationBuilder};
use allarm_harness::{benchmark_main, black_box, stats_to_json, Group};
use allarm_workloads::{Benchmark, TraceGenerator};

/// Accesses per thread: fixed, so trajectory points stay comparable
/// across commits.
const ACCESSES: usize = 2_000;

const MATRIX: [(Benchmark, &str); 3] = [
    (Benchmark::Barnes, "barnes"),
    (Benchmark::OceanContiguous, "ocean_contiguous"),
    (Benchmark::Raytrace, "raytrace"),
];

fn trajectory() {
    let mut group = Group::new("simulate_16c").sample_count(5);
    let mut stats = Vec::new();
    let mut complete = true;
    for (benchmark, label) in MATRIX {
        let workload = TraceGenerator::new(16, ACCESSES, 2014).generate(benchmark);
        for policy in AllocationPolicy::ALL {
            let simulator = SimulationBuilder::new(MachineConfig::date2014())
                .policy(policy)
                .build()
                .expect("the Table I machine is valid");
            let name = format!("{label}.{}", format!("{policy:?}").to_lowercase());
            match group.bench(&name, || {
                black_box(simulator.run(&workload).runtime);
            }) {
                Some(s) => stats.push(s),
                None => complete = false, // filtered: don't commit a partial file
            }
        }
    }
    group.finish();

    if complete {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");
        std::fs::write(path, stats_to_json("perf_trajectory", &stats))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[perf_trajectory] wrote {path}");
    } else {
        eprintln!("[perf_trajectory] filtered run: BENCH_6.json not rewritten");
    }
}

benchmark_main!(trajectory);

//! Criterion micro-benchmarks of the simulator's building blocks: the
//! probe-filter array, a core's cache hierarchy, the mesh network and trace
//! generation. These quantify the cost of the harness itself, independent of
//! any paper figure.

use allarm_cache::{CoherenceState, CoreCaches};
use allarm_coherence::ProbeFilter;
use allarm_noc::{MessageClass, Network};
use allarm_types::addr::LineAddr;
use allarm_types::config::{MachineConfig, NocConfig, ProbeFilterConfig};
use allarm_types::ids::{CoreId, NodeId};
use allarm_workloads::{Benchmark, TraceGenerator};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_probe_filter(c: &mut Criterion) {
    c.bench_function("probe_filter/allocate_lookup_8k_entries", |b| {
        b.iter(|| {
            let mut pf = ProbeFilter::new(&ProbeFilterConfig::new(512 * 1024, 8));
            for i in 0..16_384u64 {
                pf.allocate(LineAddr::new(i), CoreId::new((i % 16) as u16));
            }
            for i in 0..16_384u64 {
                black_box(pf.lookup(LineAddr::new(i)));
            }
            black_box(pf.stats().evictions.get())
        })
    });
}

fn bench_cache_hierarchy(c: &mut Criterion) {
    let cfg = MachineConfig::date2014();
    c.bench_function("cache/fill_and_access_l2_working_set", |b| {
        b.iter(|| {
            let mut caches = CoreCaches::new(&cfg.l1d, &cfg.l2);
            for i in 0..8_192u64 {
                caches.access(LineAddr::new(i), i % 4 == 0);
                caches.fill(LineAddr::new(i), CoherenceState::Exclusive);
            }
            black_box(caches.l2_stats().misses.get())
        })
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("noc/send_10k_messages_4x4_mesh", |b| {
        b.iter(|| {
            let mut net = Network::new(NocConfig::mesh(4, 4));
            for i in 0..10_000u16 {
                let src = NodeId::new(i % 16);
                let dst = NodeId::new((i * 7 + 3) % 16);
                net.send(src, dst, MessageClass::Data);
            }
            black_box(net.stats().total_bytes())
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("workloads/generate_16x10k_ocean", |b| {
        b.iter(|| {
            let workload = TraceGenerator::new(16, 10_000, 7).generate(Benchmark::OceanContiguous);
            black_box(workload.total_accesses())
        })
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(10);
    targets = bench_probe_filter, bench_cache_hierarchy, bench_network, bench_trace_generation
);
criterion_main!(components);

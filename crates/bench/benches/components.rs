//! Micro-benchmarks of the simulator's building blocks: the probe-filter
//! array, a core's cache hierarchy, the mesh network and trace generation.
//! These quantify the cost of the harness itself, independent of any paper
//! figure.
//!
//! Uses the workspace's own grouped harness (`allarm-harness`) — criterion
//! is unavailable offline.

use allarm_cache::{CoherenceState, CoreCaches};
use allarm_coherence::ProbeFilter;
use allarm_harness::{benchmark_main, black_box, Group};
use allarm_noc::{MessageClass, Network};
use allarm_types::addr::LineAddr;
use allarm_types::config::{MachineConfig, NocConfig, ProbeFilterConfig};
use allarm_types::ids::{CoreId, NodeId};
use allarm_workloads::{Benchmark, TraceGenerator};

fn probe_filter() {
    let mut group = Group::new("probe_filter").sample_count(10);
    group.bench("allocate_lookup_8k_entries", || {
        let mut pf = ProbeFilter::new(&ProbeFilterConfig::new(512 * 1024, 8));
        for i in 0..16_384u64 {
            pf.allocate(LineAddr::new(i), CoreId::new((i % 16) as u16));
        }
        for i in 0..16_384u64 {
            black_box(pf.lookup(LineAddr::new(i)));
        }
        black_box(pf.stats().evictions.get());
    });
    group.finish();
}

fn cache_hierarchy() {
    let cfg = MachineConfig::date2014();
    let mut group = Group::new("cache").sample_count(10);
    group.bench("fill_and_access_l2_working_set", || {
        let mut caches = CoreCaches::new(&cfg.l1d, &cfg.l2);
        for i in 0..8_192u64 {
            caches.access(LineAddr::new(i), i % 4 == 0);
            caches.fill(LineAddr::new(i), CoherenceState::Exclusive);
        }
        black_box(caches.l2_stats().misses.get());
    });
    group.finish();
}

fn network() {
    let mut group = Group::new("noc").sample_count(10);
    group.bench("send_10k_messages_4x4_mesh", || {
        let mut net = Network::new(NocConfig::mesh(4, 4));
        for i in 0..10_000u16 {
            let src = NodeId::new(black_box(i % 16));
            let dst = NodeId::new(black_box((i * 7 + 3) % 16));
            net.send(src, dst, MessageClass::Data);
        }
        black_box(net.stats().total_bytes());
    });
    group.finish();
}

fn trace_generation() {
    let mut group = Group::new("workloads").sample_count(10);
    group.bench("generate_16x10k_ocean", || {
        let workload = TraceGenerator::new(16, 10_000, 7).generate(Benchmark::OceanContiguous);
        black_box(workload.total_accesses());
    });
    group.finish();
}

benchmark_main!(probe_filter, cache_hierarchy, network, trace_generation);

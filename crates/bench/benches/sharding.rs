//! Benchmarks of the sharded intra-run kernel: one paper-machine
//! simulation at increasing `sim_threads`, plus the heap-backed core
//! scheduler at machine sizes past the paper's sixteen cores.
//!
//! Every `sim_threads` variant replays the identical workload and — by the
//! kernel's determinism guarantee — produces the identical report, so the
//! numbers differ only in wall-clock time. On a multi-core host the shard
//! columns drop below the serial column; on a single-hardware-thread host
//! they rise (pure barrier overhead), which is itself worth measuring.
//!
//! Uses the workspace's own grouped harness (`allarm-harness`) — criterion
//! is unavailable offline.

use allarm_core::{AllocationPolicy, MachineConfig, SimulationBuilder};
use allarm_engine::CoreScheduler;
use allarm_harness::{benchmark_main, black_box, Group};
use allarm_types::Nanos;
use allarm_workloads::{Benchmark, TraceGenerator};

/// Accesses per thread for the kernel benchmarks; override with
/// `ALLARM_BENCH_ACCESSES` to bench at figure scale.
fn accesses() -> usize {
    std::env::var("ALLARM_BENCH_ACCESSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000)
}

fn sharded_kernel() {
    let workload = TraceGenerator::new(16, accesses(), 2014).generate(Benchmark::OceanContiguous);
    let mut group = Group::new("sharded_kernel").sample_count(5);
    for sim_threads in [1usize, 2, 4, 8] {
        let simulator = SimulationBuilder::new(MachineConfig::date2014())
            .policy(AllocationPolicy::Allarm)
            .sim_threads(sim_threads)
            .build()
            .expect("the Table I machine is valid");
        let name = format!("ocean_16c_sim_threads_{sim_threads}");
        group.bench(&name, || {
            black_box(simulator.run(&workload).runtime);
        });
    }
    group.finish();
}

fn scheduler_scaling() {
    let mut group = Group::new("core_scheduler").sample_count(10);
    for cores in [16usize, 64, 256, 1024] {
        let name = format!("laggard_selection_{cores}_cores");
        group.bench(&name, || {
            // A full simulation's worth of pick/advance cycles: the
            // heap-backed scheduler keeps this O(log n) per pick where the
            // former linear scan paid O(n).
            let mut scheduler = CoreScheduler::new(cores);
            let mut state = 0x2014_u64;
            for _ in 0..50_000 {
                let actor = scheduler.next_actor().expect("no actor finished");
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                scheduler.advance(actor, Nanos::new(1 + (state >> 33) % 200));
            }
            black_box(scheduler.makespan());
        });
    }
    group.finish();
}

benchmark_main!(sharded_kernel, scheduler_scaling);

//! Criterion benchmarks of the figure-regeneration experiments themselves,
//! at a reduced trace length so `cargo bench` finishes quickly. One target
//! per figure family; the full-scale tables are produced by the binaries in
//! `src/bin/` (see DESIGN.md for the index).

use allarm_core::{
    compare_benchmark, multiprocess_sweep, pf_size_sweep, ExperimentConfig, FIG3H_COVERAGES,
    FIG4_COVERAGES,
};
use allarm_workloads::Benchmark;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A trimmed-down experiment: the full Table I machine but short traces, so
/// one baseline+ALLARM pair runs in tens of milliseconds.
fn bench_config() -> ExperimentConfig {
    ExperimentConfig::paper().with_accesses_per_thread(4_000)
}

fn bench_fig2_and_fig3_single_benchmark(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig3_comparison");
    for bench in [Benchmark::OceanContiguous, Benchmark::Blackscholes, Benchmark::Dedup] {
        group.bench_function(bench.name(), |b| {
            b.iter(|| black_box(compare_benchmark(bench, &cfg).speedup()))
        });
    }
    group.finish();
}

fn bench_fig3h_sweep(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("fig3h_pf_sweep/barnes", |b| {
        b.iter(|| black_box(pf_size_sweep(Benchmark::Barnes, &cfg, &FIG3H_COVERAGES).len()))
    });
}

fn bench_fig4_multiprocess(c: &mut Criterion) {
    let cfg = bench_config();
    c.bench_function("fig4_multiprocess/ocean-cont", |b| {
        b.iter(|| {
            black_box(multiprocess_sweep(Benchmark::OceanContiguous, &cfg, &FIG4_COVERAGES).len())
        })
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2_and_fig3_single_benchmark, bench_fig3h_sweep, bench_fig4_multiprocess
);
criterion_main!(figures);

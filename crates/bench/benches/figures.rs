//! Benchmarks of the figure-regeneration experiments themselves, at a
//! reduced trace length so `cargo bench` finishes quickly. One target per
//! figure family; the full-scale tables are produced by the binaries in
//! `src/bin/`.
//!
//! Uses the workspace's own grouped harness (`allarm-harness`) — criterion
//! is unavailable offline.

use allarm_core::{
    compare_benchmark, multiprocess_sweep, pf_size_sweep, ExperimentConfig, FIG3H_COVERAGES,
    FIG4_COVERAGES,
};
use allarm_harness::{benchmark_main, black_box, Group};
use allarm_workloads::Benchmark;

/// A trimmed-down experiment: the full Table I machine but short traces, so
/// one baseline+ALLARM pair runs in tens of milliseconds.
fn bench_config() -> ExperimentConfig {
    ExperimentConfig::paper().with_accesses_per_thread(4_000)
}

fn fig3_comparison() {
    let cfg = bench_config();
    let mut group = Group::new("fig3_comparison").sample_count(10);
    for bench in [
        Benchmark::OceanContiguous,
        Benchmark::Blackscholes,
        Benchmark::Dedup,
    ] {
        group.bench(bench.name(), || {
            black_box(compare_benchmark(bench, &cfg).speedup());
        });
    }
    group.finish();
}

fn fig3h_sweep() {
    let cfg = bench_config();
    let mut group = Group::new("fig3h_pf_sweep").sample_count(10);
    group.bench("barnes", || {
        black_box(pf_size_sweep(Benchmark::Barnes, &cfg, &FIG3H_COVERAGES).len());
    });
    group.finish();
}

fn fig4_multiprocess() {
    let cfg = bench_config();
    let mut group = Group::new("fig4_multiprocess").sample_count(10);
    group.bench("ocean-cont", || {
        black_box(multiprocess_sweep(Benchmark::OceanContiguous, &cfg, &FIG4_COVERAGES).len());
    });
    group.finish();
}

benchmark_main!(fig3_comparison, fig3h_sweep, fig4_multiprocess);

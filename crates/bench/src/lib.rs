//! Shared helpers for the figure-regeneration binaries and benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the ALLARM
//! paper. Since the Scenario/Builder redesign each figure is a declarative
//! [`ScenarioGrid`] — constructed here and also checked in as TOML under
//! `scenarios/` — executed in parallel by the [`allarm_core::BatchRunner`].

#![warn(missing_docs)]

use allarm_core::{
    AllocationPolicy, BatchRunner, Comparison, ExperimentConfig, Scenario, ScenarioGrid,
};
use allarm_types::config::{LlcConfig, NocConfig};
use allarm_workloads::{Benchmark, TraceFormat, WorkloadSpec};

// Scenario-document loading lives in `allarm_core::doc` (one shared parse
// and error path for `scenario_run`, `trace_tool`, and the HTTP server);
// re-exported here so the figure binaries keep their historical imports.
pub use allarm_core::doc::{load_scenario_doc, parse_scenario_doc, ScenarioDoc};

/// Reads the experiment scale from the `ALLARM_ACCESSES` environment
/// variable (main-phase accesses per thread) and the intra-run parallelism
/// from `ALLARM_SIM_THREADS` (worker threads per simulation; `0` = all
/// hardware threads; results are byte-identical either way), falling back
/// to the paper configuration's defaults. Set a smaller access count for
/// quick smoke runs:
///
/// ```text
/// ALLARM_ACCESSES=20000 cargo run --release -p allarm-bench --bin fig3a_speedup
/// ALLARM_SIM_THREADS=4 cargo run --release -p allarm-bench --bin all_figures
/// ```
pub fn figure_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper();
    if let Ok(value) = std::env::var("ALLARM_ACCESSES") {
        if let Ok(accesses) = value.parse::<usize>() {
            cfg = cfg.with_accesses_per_thread(accesses);
        }
    }
    if let Ok(value) = std::env::var("ALLARM_SIM_THREADS") {
        if let Ok(sim_threads) = value.parse::<usize>() {
            cfg = cfg.with_sim_threads(sim_threads);
        }
    }
    cfg
}

/// The grid behind Fig. 2 and Fig. 3a–3g: every benchmark of the
/// multi-threaded evaluation under both allocation policies. Also checked
/// in as `scenarios/fig3_comparison.toml`.
pub fn fig3_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    ScenarioGrid::new(cfg.scenario(Benchmark::Barnes, AllocationPolicy::Baseline))
        .benchmarks(Benchmark::ALL.to_vec())
        .policies(AllocationPolicy::ALL.to_vec())
}

/// The grid behind Fig. 3h: every benchmark × the three probe-filter
/// coverages × both policies. Also checked in as
/// `scenarios/fig3h_pf_sweep.toml`.
pub fn fig3h_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    fig3_grid(cfg).pf_coverages(allarm_core::FIG3H_COVERAGES.to_vec())
}

/// A beyond-the-paper grid: PARSEC `streamcluster` (not part of the
/// original evaluation) under both policies. Also checked in as
/// `scenarios/streamcluster_comparison.toml`.
pub fn streamcluster_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    ScenarioGrid::new(cfg.scenario(Benchmark::Streamcluster, AllocationPolicy::Baseline))
        .policies(AllocationPolicy::ALL.to_vec())
}

/// The scaled-machine comparison grid: the 64-core machine (16 NUMA nodes
/// × 4 cores) running a sharing-heavy trio — the scaled `raytrace`
/// profile plus two SPLASH2 stalwarts — under both policies. Built from
/// [`ExperimentConfig::scale64`] and also checked in as
/// `scenarios/scale64_comparison.toml`.
pub fn scale64_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    ScenarioGrid::new(cfg.scenario(Benchmark::Raytrace, AllocationPolicy::Baseline))
        .benchmarks(vec![
            Benchmark::Barnes,
            Benchmark::OceanContiguous,
            Benchmark::Raytrace,
        ])
        .policies(AllocationPolicy::ALL.to_vec())
}

/// The scaled-machine directory-pressure sweep: `raytrace` on the 64-core
/// machine across descending per-node probe-filter coverages
/// ([`allarm_core::SCALE64_COVERAGES`]) under both policies — four cores
/// contending for each node's directory is exactly where sparse-directory
/// pressure grows. Also checked in as `scenarios/scale64_pf_sweep.toml`.
pub fn scale64_pf_sweep_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    ScenarioGrid::new(cfg.scenario(Benchmark::Raytrace, AllocationPolicy::Baseline))
        .pf_coverages(allarm_core::SCALE64_COVERAGES.to_vec())
        .policies(AllocationPolicy::ALL.to_vec())
}

/// The 256-core comparison grid: 64 NUMA nodes × 4 cores wired as an 8×8
/// torus, every node fronting its directory with a shared 4 MiB LLC slice
/// — the NUCA machine the LLC work targets — running the scale64 trio
/// under both allocation policies. Built from
/// [`ExperimentConfig::scale256`] and also checked in as
/// `scenarios/scale256_comparison.toml`.
pub fn scale256_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    let mut base = cfg.scenario(Benchmark::Raytrace, AllocationPolicy::Baseline);
    base.machine = base
        .machine
        .with_noc(NocConfig::torus(8, 8))
        .with_llc(LlcConfig::shared_slice(4 * 1024 * 1024, 16));
    ScenarioGrid::new(base)
        .benchmarks(vec![
            Benchmark::Barnes,
            Benchmark::OceanContiguous,
            Benchmark::Raytrace,
        ])
        .policies(AllocationPolicy::ALL.to_vec())
}

/// The 256-core directory-pressure sweep: `raytrace` across the
/// [`allarm_core::SCALE256_COVERAGES`] per-node probe-filter coverages on
/// a 4×4 concentrated mesh (four nodes per router) with the shared LLC
/// slices enabled — the third fabric family exercised end to end. Also
/// checked in as `scenarios/scale256_pf_sweep.toml`.
pub fn scale256_pf_sweep_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    let mut base = cfg.scenario(Benchmark::Raytrace, AllocationPolicy::Baseline);
    base.machine = base
        .machine
        .with_noc(NocConfig::cmesh(4, 4, 4))
        .with_llc(LlcConfig::shared_slice(4 * 1024 * 1024, 16));
    ScenarioGrid::new(base)
        .pf_coverages(allarm_core::SCALE256_COVERAGES.to_vec())
        .policies(AllocationPolicy::ALL.to_vec())
}

/// The benchmark the checked-in sample trace records.
pub const TRACE_SAMPLE_BENCHMARK: Benchmark = Benchmark::Blackscholes;
/// Worker threads of the sample-trace workload (kept small so the
/// committed file stays a few tens of kilobytes).
pub const TRACE_SAMPLE_THREADS: usize = 2;
/// Main-phase references per thread of the sample-trace workload.
pub const TRACE_SAMPLE_ACCESSES: usize = 1_000;
/// File name of the committed sample trace, relative to `scenarios/` (the
/// checked-in grid names it relative to itself).
pub const TRACE_SAMPLE_FILE: &str = "tracefile_sample.trace";

/// The generator side of the trace round trip: the grid whose base
/// workload `trace_tool record` dumps to produce the committed sample
/// trace, and whose direct runs the trace replay must reproduce
/// byte-identically. Also checked in as `scenarios/tracefile_source.toml`.
pub fn tracefile_source_grid() -> ScenarioGrid {
    let mut base = Scenario::paper(TRACE_SAMPLE_BENCHMARK, AllocationPolicy::Baseline);
    base.workload = WorkloadSpec::threads(
        TRACE_SAMPLE_BENCHMARK,
        TRACE_SAMPLE_THREADS,
        TRACE_SAMPLE_ACCESSES,
    );
    ScenarioGrid::new(base).policies(AllocationPolicy::ALL.to_vec())
}

/// The replay side: the same machine and policies as
/// [`tracefile_source_grid`], but driven by the committed sample trace
/// through [`WorkloadSpec::TraceFile`]. Also checked in as
/// `scenarios/tracefile_comparison.toml`; the CI round-trip gate diffs its
/// JSONL output against the source grid's.
pub fn tracefile_comparison_grid() -> ScenarioGrid {
    let mut grid = tracefile_source_grid();
    grid.base.workload = WorkloadSpec::trace_file(TRACE_SAMPLE_FILE, TraceFormat::Binary);
    grid
}

/// File name of the committed frame-chunked (`binary-v2`) sample trace,
/// relative to `scenarios/`. Records the same workload as
/// [`TRACE_SAMPLE_FILE`]; the frame directory makes it seekable and
/// streamable.
pub const TRACE_SAMPLE_V2_FILE: &str = "tracefile_sample_v2.btrace";

/// The streaming-replay side: the same machine and policies as
/// [`tracefile_source_grid`], but driven by the committed frame-chunked
/// v2 sample through the pull-based [`allarm_workloads::TraceSource`]
/// path — the simulator replays it frame by frame without materializing
/// the workload. Also checked in as
/// `scenarios/tracefile_v2_comparison.toml`; the CI round-trip gate
/// diffs its JSONL output against both the source grid's and the v1
/// replay's.
pub fn tracefile_v2_comparison_grid() -> ScenarioGrid {
    let mut grid = tracefile_source_grid();
    grid.base.workload = WorkloadSpec::trace_file(TRACE_SAMPLE_V2_FILE, TraceFormat::BinaryV2);
    grid
}

/// The serving-shaped comparison grid: the beyond-the-paper `kv-store`
/// profile (skewed Zipfian GET/PUT traffic over a large shared value
/// store, with a drifting hot set) under both allocation policies — the
/// datacenter-workload counterpoint to the paper's HPC suite. Also
/// checked in as `scenarios/kv_store_comparison.toml`.
pub fn kv_store_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    ScenarioGrid::new(cfg.scenario(Benchmark::KvStore, AllocationPolicy::Baseline))
        .policies(AllocationPolicy::ALL.to_vec())
}

/// Tenants packed into the consolidation grid: a dozen single-threaded
/// processes on the 16-core paper machine — six times the process count
/// of the paper's Fig. 4 experiment.
pub const CONSOLIDATION_TENANTS: usize = 12;

/// The benchmark mix consolidation tenants rotate through — a serving
/// tenant between two HPC tenants, the heterogeneous node the north star
/// implies.
pub const CONSOLIDATION_MIX: [Benchmark; 3] = [
    Benchmark::KvStore,
    Benchmark::Barnes,
    Benchmark::OceanContiguous,
];

/// The consolidation comparison grid: [`CONSOLIDATION_TENANTS`]
/// single-threaded tenants rotating through [`CONSOLIDATION_MIX`], each
/// in its own address space and homed on its own core by first-touch,
/// under both policies. Generalizes Fig. 4's two-copy setup to a packed
/// multi-tenant node where the baseline probe filter drowns in
/// never-probed private entries. Also checked in as
/// `scenarios/consolidation_comparison.toml`.
pub fn consolidation_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    let mut base = cfg.scenario(Benchmark::Barnes, AllocationPolicy::Baseline);
    base.workload = WorkloadSpec::consolidation(
        CONSOLIDATION_MIX.to_vec(),
        CONSOLIDATION_TENANTS,
        cfg.accesses_per_thread,
    );
    base.name = format!("consolidation-{CONSOLIDATION_TENANTS}t/baseline");
    ScenarioGrid::new(base).policies(AllocationPolicy::ALL.to_vec())
}

/// The grid behind Fig. 4: the SPLASH2 subset as two-process workloads ×
/// five probe-filter coverages × both policies. Also checked in as
/// `scenarios/fig4_multiprocess.toml`.
pub fn fig4_grid(cfg: &ExperimentConfig) -> ScenarioGrid {
    ScenarioGrid::new(cfg.multiprocess_scenario(Benchmark::Barnes, AllocationPolicy::Baseline))
        .benchmarks(Benchmark::MULTIPROCESS.to_vec())
        .pf_coverages(allarm_core::FIG4_COVERAGES.to_vec())
        .policies(AllocationPolicy::ALL.to_vec())
}

/// Runs the baseline-vs-ALLARM comparison for every benchmark of the
/// multi-threaded evaluation (the runs behind Fig. 2 and Fig. 3a–3g). All
/// 16 scenarios execute in parallel across OS threads.
pub fn all_comparisons(cfg: &ExperimentConfig) -> Vec<(Benchmark, Comparison)> {
    let scenarios = fig3_grid(cfg).expand();
    eprintln!(
        "[allarm-bench] running {} scenarios on {} threads...",
        scenarios.len(),
        BatchRunner::new().num_threads()
    );
    let results = BatchRunner::new()
        .run(&scenarios)
        .unwrap_or_else(|e| panic!("invalid figure configuration: {e}"));
    let comparisons = results.paired();
    assert_eq!(
        comparisons.len(),
        Benchmark::ALL.len(),
        "one baseline/allarm pair per benchmark"
    );
    Benchmark::ALL.iter().copied().zip(comparisons).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn figure_config_defaults_to_paper_scale() {
        // The env var is not set under `cargo test`, so the default applies.
        let cfg = figure_config();
        assert_eq!(cfg.threads, 16);
        assert!(cfg.accesses_per_thread >= 1_000);
    }

    #[test]
    fn figure_grids_have_the_expected_sizes() {
        let cfg = ExperimentConfig::quick_test();
        assert_eq!(fig3_grid(&cfg).len(), 16); // 8 benchmarks x 2 policies
        assert_eq!(fig3h_grid(&cfg).len(), 48); // x 3 coverages
        assert_eq!(fig4_grid(&cfg).len(), 40); // 4 benchmarks x 5 coverages x 2
        fig3_grid(&cfg).validate().unwrap();
    }

    #[test]
    fn scale64_grids_run_the_multicore_node_machine() {
        let cfg = ExperimentConfig::scale64();
        let grid = scale64_grid(&cfg);
        assert_eq!(grid.len(), 6); // 3 benchmarks x 2 policies
        grid.validate().unwrap();
        assert_eq!(grid.base.machine.num_cores, 64);
        assert_eq!(grid.base.machine.cores_per_node.get(), 4);
        assert_eq!(grid.base.workload.cores_required().unwrap(), 64);

        let sweep = scale64_pf_sweep_grid(&cfg);
        assert_eq!(sweep.len(), 8); // 4 coverages x 2 policies
        sweep.validate().unwrap();
        assert_eq!(sweep.pf_coverages, allarm_core::SCALE64_COVERAGES.to_vec());
    }

    #[test]
    fn scale256_grids_run_the_nuca_machine_on_the_new_fabrics() {
        use allarm_types::config::FabricKind;
        let cfg = ExperimentConfig::scale256();

        let grid = scale256_grid(&cfg);
        assert_eq!(grid.len(), 6); // 3 benchmarks x 2 policies
        grid.validate().unwrap();
        assert_eq!(grid.base.machine.num_cores, 256);
        assert_eq!(grid.base.machine.num_nodes(), 64);
        assert_eq!(grid.base.machine.noc.fabric, FabricKind::Torus);
        assert!(grid.base.machine.llc.enabled);
        assert_eq!(grid.base.workload.cores_required().unwrap(), 256);

        let sweep = scale256_pf_sweep_grid(&cfg);
        assert_eq!(sweep.len(), 8); // 4 coverages x 2 policies
        sweep.validate().unwrap();
        assert_eq!(sweep.base.machine.noc.fabric, FabricKind::CMesh);
        assert_eq!(sweep.base.machine.noc.concentration.get(), 4);
        assert!(sweep.base.machine.llc.enabled);
        assert_eq!(sweep.pf_coverages, allarm_core::SCALE256_COVERAGES.to_vec());
    }

    #[test]
    fn doc_loading_is_reexported_from_core() {
        // The shared loader moved to `allarm_core::doc`; the re-export must
        // keep classifying grids structurally.
        let cfg = ExperimentConfig::quick_test();
        let grid = fig3_grid(&cfg);
        let doc = parse_scenario_doc(&grid.to_toml().unwrap(), true).unwrap();
        assert_eq!(doc, ScenarioDoc::Grid(Box::new(grid)));
        assert_eq!(doc.expand().len(), 16);
    }

    #[test]
    fn tracefile_grids_mirror_each_other() {
        let source = tracefile_source_grid();
        assert_eq!(source.len(), 2);
        source.validate().unwrap();
        assert_eq!(
            source.base.workload,
            allarm_workloads::WorkloadSpec::threads(
                TRACE_SAMPLE_BENCHMARK,
                TRACE_SAMPLE_THREADS,
                TRACE_SAMPLE_ACCESSES
            )
        );

        let replay = tracefile_comparison_grid();
        assert_eq!(replay.len(), 2);
        assert_eq!(replay.base.machine, source.base.machine);
        assert_eq!(replay.base.seed, source.base.seed);
        assert_eq!(
            replay.base.workload,
            allarm_workloads::WorkloadSpec::trace_file(TRACE_SAMPLE_FILE, TraceFormat::Binary)
        );
    }

    #[test]
    fn tracefile_v2_grid_streams_the_committed_sample() {
        let source = tracefile_source_grid();
        let replay = tracefile_v2_comparison_grid();
        assert_eq!(replay.len(), 2);
        assert_eq!(replay.base.machine, source.base.machine);
        assert_eq!(replay.base.seed, source.base.seed);
        assert_eq!(
            replay.base.workload,
            WorkloadSpec::trace_file(TRACE_SAMPLE_V2_FILE, TraceFormat::BinaryV2)
        );
        // Unlike the v1 replay, the v2 file supports real prefix truncation.
        assert!(replay.base.workload.supports_length_override());

        // Resolved against the committed sample, the grid validates and
        // opens as a streaming source carrying the exact reference stream
        // the source grid's generator produces.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
        let mut grid = tracefile_v2_comparison_grid();
        grid.base.workload = grid.base.workload.resolved_against(&dir);
        grid.validate().unwrap();
        let trace = grid.base.workload.streaming_source().unwrap().unwrap();
        let recorded = source.base.workload.materialize(source.base.seed);
        assert_eq!(
            trace.checksum(),
            recorded.checksum(),
            "scenarios/{TRACE_SAMPLE_V2_FILE} has drifted from the generator — \
             regenerate it with `trace_tool record --format binary-v2`"
        );
        assert_eq!(grid.base.workload.materialize(source.base.seed), recorded);
    }

    #[test]
    fn serving_and_consolidation_grids_cover_the_new_profiles() {
        let cfg = ExperimentConfig::quick_test();

        let kv = kv_store_grid(&cfg);
        assert_eq!(kv.len(), 2);
        kv.validate().unwrap();
        assert_eq!(kv.base.workload.benchmark(), Some(Benchmark::KvStore));

        let grid = consolidation_grid(&cfg);
        assert_eq!(grid.len(), 2);
        grid.validate().unwrap();
        assert_eq!(
            grid.base.workload.cores_required().unwrap(),
            CONSOLIDATION_TENANTS
        );
        // The tenant rotation mixes benchmarks, so the spec reports no
        // single benchmark and a benchmark axis cannot be layered on top.
        assert_eq!(grid.base.workload.benchmark(), None);
        let swept = consolidation_grid(&cfg).benchmarks(vec![Benchmark::Barnes]);
        assert!(swept.validate().is_err());
    }

    #[test]
    fn tracefile_comparison_grid_validates_against_the_committed_sample() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
        let mut grid = tracefile_comparison_grid();
        grid.base.workload = grid.base.workload.resolved_against(&dir);
        grid.validate().unwrap();
        assert_eq!(
            grid.base.workload.cores_required().unwrap(),
            TRACE_SAMPLE_THREADS
        );
        // The committed trace is exactly what the source grid's workload
        // generates, so the replayed stream checksums identically.
        let source = tracefile_source_grid();
        let recorded = source.base.workload.materialize(source.base.seed);
        assert_eq!(
            grid.base.workload.materialize(source.base.seed),
            recorded,
            "scenarios/{TRACE_SAMPLE_FILE} has drifted from the generator — \
             regenerate it with `trace_tool record`"
        );
    }
}

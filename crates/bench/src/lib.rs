//! Shared helpers for the figure-regeneration binaries and criterion
//! benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the ALLARM
//! paper (see DESIGN.md for the index). They share the experiment scale
//! handling and the per-benchmark comparison loop defined here.

#![warn(missing_docs)]

use allarm_core::{compare_benchmark, Comparison, ExperimentConfig};
use allarm_workloads::Benchmark;

/// Reads the experiment scale from the `ALLARM_ACCESSES` environment
/// variable (main-phase accesses per thread), falling back to the paper
/// configuration's default. Set a smaller value for quick smoke runs:
///
/// ```text
/// ALLARM_ACCESSES=20000 cargo run --release -p allarm-bench --bin fig3a_speedup
/// ```
pub fn figure_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper();
    if let Ok(value) = std::env::var("ALLARM_ACCESSES") {
        if let Ok(accesses) = value.parse::<usize>() {
            cfg = cfg.with_accesses_per_thread(accesses);
        }
    }
    cfg
}

/// Runs the baseline-vs-ALLARM comparison for every benchmark of the
/// multi-threaded evaluation (the runs behind Fig. 2 and Fig. 3a–3g),
/// printing a progress line per benchmark to stderr.
pub fn all_comparisons(cfg: &ExperimentConfig) -> Vec<(Benchmark, Comparison)> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            eprintln!("[allarm-bench] running {bench} (baseline + allarm)...");
            (bench, compare_benchmark(bench, cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_config_defaults_to_paper_scale() {
        // The env var is not set under `cargo test`, so the default applies.
        let cfg = figure_config();
        assert_eq!(cfg.threads, 16);
        assert!(cfg.accesses_per_thread >= 1_000);
    }
}

//! Figure 3h: speedup while shrinking the probe filter (512/256/128 kB),
//! every bar normalised to the baseline with a 512 kB probe filter.

use allarm_bench::figure_config;
use allarm_core::report::{format_coverage, render_table, FigureSeries};
use allarm_core::{pf_size_sweep, FIG3H_COVERAGES};
use allarm_workloads::Benchmark;

fn main() {
    let cfg = figure_config();
    let mut series: Vec<FigureSeries> = FIG3H_COVERAGES
        .iter()
        .map(|c| FigureSeries::new(format_coverage(*c)))
        .collect();
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for bench in Benchmark::ALL {
        eprintln!("[allarm-bench] sweeping {bench}...");
        let points = pf_size_sweep(bench, &cfg, &FIG3H_COVERAGES);
        let reference = points[0].baseline.runtime.as_f64();
        let values: Vec<f64> = points
            .iter()
            .map(|p| reference / p.allarm.runtime.as_f64())
            .collect();
        rows.push((bench.name().to_string(), values));
    }
    for (name, values) in &rows {
        for (i, v) in values.iter().enumerate() {
            series[i].push(name.clone(), *v);
        }
    }
    print!(
        "{}",
        render_table(
            "Fig. 3h: ALLARM speedup vs probe-filter size (normalised to 512kB baseline)",
            &series
        )
    );
}

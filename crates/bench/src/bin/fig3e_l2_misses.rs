//! Figure 3e: L2 misses under ALLARM, normalised to baseline.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut series = FigureSeries::without_geomean("normalised");
    for (bench, cmp) in all_comparisons(&cfg) {
        series.push(bench.name(), cmp.normalized_l2_misses());
    }
    print!(
        "{}",
        render_table("Fig. 3e: normalised L2 misses", &[series])
    );
}

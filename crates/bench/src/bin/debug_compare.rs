//! Developer diagnostic: dump the full baseline and ALLARM reports for one
//! benchmark side by side. Not part of the published figures; useful when
//! tuning workload profiles or chasing a latency asymmetry.

use allarm_bench::figure_config;
use allarm_core::compare_benchmark;
use allarm_workloads::Benchmark;

fn main() {
    let bench = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::from_name(&name))
        .unwrap_or(Benchmark::Dedup);
    let cfg = figure_config();
    let cmp = compare_benchmark(bench, &cfg);

    println!("== {} ==", bench.name());
    for report in [&cmp.baseline, &cmp.allarm] {
        println!("--- {} ---", report.policy);
        println!("runtime            {}", report.runtime);
        println!("total accesses     {}", report.total_accesses);
        println!("l1/l2 hits         {} / {}", report.l1_hits, report.l2_hits);
        println!("l2 misses          {}", report.l2_misses);
        println!("dir requests       {}", report.directory_requests);
        println!(
            "  local/remote     {} / {}",
            report.local_requests, report.remote_requests
        );
        println!(
            "pf alloc/evict     {} / {}",
            report.pf_allocations, report.pf_evictions
        );
        println!(
            "eviction msgs/inv  {} / {}",
            report.eviction_messages, report.eviction_invalidations
        );
        println!("allarm skips       {}", report.allarm_allocation_skips);
        println!(
            "noc bytes/msgs     {} / {}",
            report.noc_bytes, report.noc_messages
        );
        println!(
            "dram reads/writes  {} / {}",
            report.dram_reads, report.dram_writes
        );
        println!(
            "local probes       {} (hits {}, hidden {})",
            report.local_probes, report.local_probe_hits, report.local_probes_hidden
        );
        println!(
            "energy noc/pf (uJ) {:.1} / {:.1}",
            report.energy.noc_pj / 1e6,
            report.energy.probe_filter_pj / 1e6
        );
    }
    println!("speedup            {:.4}", cmp.speedup());
    println!("norm evictions     {:.4}", cmp.normalized_evictions());
    println!("norm traffic       {:.4}", cmp.normalized_traffic());
    println!("norm l2 misses     {:.4}", cmp.normalized_l2_misses());
}

//! Figure 3c: network traffic (bytes) under ALLARM, normalised to baseline.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut series = FigureSeries::new("normalised");
    for (bench, cmp) in all_comparisons(&cfg) {
        series.push(bench.name(), cmp.normalized_traffic());
    }
    print!(
        "{}",
        render_table("Fig. 3c: normalised network traffic (bytes)", &[series])
    );
}

//! Simulation-as-a-service: serves the scenario-document API over HTTP.
//!
//! Binds a hand-rolled HTTP/1.1 server (no external dependencies — see
//! `crates/server`) over the `allarm_core` job scheduler. POST a scenario
//! document, poll the job, stream its JSONL rows as they land:
//!
//! ```text
//! cargo run --release -p allarm-bench --bin allarm_serve
//! curl -X POST --data-binary @scenarios/fig3_comparison.toml \
//!     'http://127.0.0.1:8642/v1/jobs?accesses=2000'
//! curl http://127.0.0.1:8642/v1/jobs/0
//! curl -N http://127.0.0.1:8642/v1/jobs/0/results > results.jsonl
//! curl -X DELETE http://127.0.0.1:8642/v1/jobs/0
//! curl http://127.0.0.1:8642/metrics
//! ```
//!
//! A job's streamed results are byte-identical to what `scenario_run
//! --output` writes for the same document (and the same
//! `accesses`/`sim_threads` overrides).

use allarm_server::{Server, ServerConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: allarm_serve [--addr <host:port>] [--workers <n>] \
     [--sim-threads <n>] [--queue-depth <n>]";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:8642".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let numeric = |what: &str, next: Option<String>| -> Result<usize, ExitCode> {
            next.and_then(|n| n.parse().ok()).ok_or_else(|| {
                eprintln!("{what} needs a number\n{USAGE}");
                ExitCode::FAILURE
            })
        };
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr needs a host:port\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match numeric("--workers", args.next()) {
                Ok(n) => config.scheduler.workers = n,
                Err(code) => return code,
            },
            "--sim-threads" => match numeric("--sim-threads", args.next()) {
                Ok(n) => config.scheduler.sim_threads_per_job = n,
                Err(code) => return code,
            },
            "--queue-depth" => match numeric("--queue-depth", args.next()) {
                Ok(n) => config.scheduler.max_queue_depth = n,
                Err(code) => return code,
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let scheduler = config.scheduler.clone();
    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[allarm_serve] listening on http://{} ({} worker(s), {} sim thread(s) per job, \
         queue depth {})",
        server.local_addr(),
        scheduler.workers,
        scheduler.sim_threads_per_job,
        scheduler.max_queue_depth,
    );
    eprintln!("[allarm_serve] POST a scenario document to /v1/jobs, stream /v1/jobs/<id>/results");

    // The accept loop runs on its own thread; this one just parks.
    loop {
        std::thread::park();
    }
}

//! Figure 3g: fraction of remote requests whose ALLARM local probe stayed
//! off the critical path.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut series = FigureSeries::without_geomean("hidden");
    for (bench, cmp) in all_comparisons(&cfg) {
        series.push(bench.name(), cmp.hidden_probe_fraction());
    }
    print!(
        "{}",
        render_table(
            "Fig. 3g: fraction of local probes off the critical path",
            &[series]
        )
    );
}

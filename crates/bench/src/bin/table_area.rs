//! The probe-filter area table (Section III-A5): area in mm² as the probe
//! filter shrinks, i.e. the SRAM that ALLARM lets the designer hand back to
//! the last-level cache.

use allarm_energy::{area::PAPER_AREA_POINTS, probe_filter_area_mm2};

fn main() {
    println!("# Probe-filter area vs capacity (McPAT-style model)");
    println!(
        "{:<12} {:>12} {:>16}",
        "PF config", "area (mm2)", "saving vs 512kB"
    );
    let full = probe_filter_area_mm2(512 * 1024);
    for (capacity, _) in PAPER_AREA_POINTS.iter().rev() {
        let area = probe_filter_area_mm2(*capacity);
        println!(
            "{:<12} {:>12.2} {:>16.2}",
            format!("{}kB", capacity / 1024),
            area,
            full - area
        );
    }
}

//! Runs a declarative scenario document: the front door of the redesigned
//! API. Accepts a single `Scenario` or a `ScenarioGrid` in TOML or JSON,
//! expands it, executes the set in parallel, and prints one summary row per
//! run (or full JSONL reports with `--json`). `--output` streams results to
//! disk as they complete — JSONL, or CSV when the path ends in `.csv` —
//! `--resume` continues an interrupted `--output` sweep by skipping the
//! grid indices already recorded in the file — after verifying the
//! recorded rows still match the batch, so resuming under different
//! settings (e.g. another `--accesses`) fails cleanly instead of mixing
//! rows — `--sim-threads` shards every run across worker threads
//! (byte-identical results; see the README's parallelism section), and
//! `--accesses` overrides the per-thread trace length (for smoke runs of
//! checked-in grids; binary-v2 trace replays truncate to a prefix, while
//! v1 replays keep their recorded length and a loud warning says so).
//!
//! Checkpointing composes with the resume machinery: `--checkpoint-every
//! <accesses>` drops a versioned snapshot (`<output>.snap`) of the
//! in-flight run every N replayed accesses, and `--restore <snap>`
//! continues a `--resume` sweep from *inside* the interrupted row instead
//! of replaying it from scratch. Before anything is written, the
//! snapshot's resume cursor is verified against the rows actually
//! recorded in the output file — a stale or mismatched snapshot fails
//! with the file untouched. `--verify-forks` makes fork-from-warm grids
//! (a `[warmup]` stanza) re-run every forked point cold and assert the
//! reports are identical.
//!
//! ```text
//! cargo run --release -p allarm-bench --bin scenario_run -- scenarios/fig3_comparison.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- --json my_scenario.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- \
//!     --sim-threads 4 --output results.csv scenarios/fig3_comparison.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- \
//!     --resume --output results.jsonl scenarios/scale64_pf_sweep.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- \
//!     --checkpoint-every 50000 --output results.jsonl scenarios/scale64_pf_sweep.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- \
//!     --resume --restore results.jsonl.snap --output results.jsonl scenarios/scale64_pf_sweep.toml
//! ```

use allarm_bench::load_scenario_doc;
use allarm_core::{
    verify_resume_rows, BatchRunner, CsvFileSink, JsonlFileSink, JsonlSink, ResultSink, ResumeScan,
    SimSnapshot,
};
use std::collections::HashSet;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: scenario_run [--json] [--output <path>] [--resume] \
     [--sim-threads <n>] [--accesses <n>] [--checkpoint-every <n>] \
     [--restore <snap>] [--verify-forks] <scenario.toml|scenario.json>";

fn main() -> ExitCode {
    let mut json = false;
    let mut output: Option<String> = None;
    let mut resume = false;
    let mut sim_threads: Option<usize> = None;
    let mut accesses: Option<usize> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut restore_path: Option<String> = None;
    let mut verify_forks = false;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--resume" => resume = true,
            "--verify-forks" => verify_forks = true,
            "--checkpoint-every" => {
                match args.next().and_then(|n| n.parse().ok()).filter(|&n| n > 0) {
                    Some(n) => checkpoint_every = Some(n),
                    None => {
                        eprintln!("--checkpoint-every needs a positive access count\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--restore" => match args.next() {
                Some(p) => restore_path = Some(p),
                None => {
                    eprintln!("--restore needs a snapshot path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--output" => match args.next() {
                Some(p) => output = Some(p),
                None => {
                    eprintln!("--output needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--sim-threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => sim_threads = Some(n),
                None => {
                    eprintln!("--sim-threads needs a number (0 = all hardware threads)\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--accesses" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => accesses = Some(n),
                None => {
                    eprintln!("--accesses needs a per-thread access count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if resume && output.is_none() {
        eprintln!("--resume needs --output (the file to continue)\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if checkpoint_every.is_some() && output.is_none() {
        eprintln!("--checkpoint-every needs --output (the snapshot lands next to it)\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if restore_path.is_some() && !(resume && output.is_some()) {
        eprintln!(
            "--restore needs --resume and --output (a snapshot continues an \
             interrupted sweep, and its cursor is checked against the recorded rows)\n{USAGE}"
        );
        return ExitCode::FAILURE;
    }

    // Format sniffing (case-insensitive .json check) and trace-path
    // resolution live in the shared loader.
    let doc = match load_scenario_doc(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Document-level validation catches grid-axis problems (e.g. a
    // benchmark sweep over a trace replay) that per-scenario validation
    // inside the runner cannot see.
    if let Err(e) = doc.validate() {
        eprintln!("{path}: {e}");
        return ExitCode::FAILURE;
    }

    let mut scenarios = doc.expand();
    if let Some(n) = sim_threads {
        for scenario in &mut scenarios {
            scenario.sim_threads = allarm_core::SimThreads(n);
        }
    }
    if let Some(n) = accesses {
        // `with_accesses` truncates generated workloads and binary-v2 trace
        // replays; v1 replays keep their recorded length. Say so out loud —
        // a smoke run that silently replayed 50M accesses instead of the
        // requested 10k used to be this flag's worst failure mode.
        for scenario in &mut scenarios {
            if scenario.workload.supports_length_override() {
                scenario.workload = scenario.workload.with_accesses(n);
            } else {
                eprintln!(
                    "[scenario_run] warning: --accesses {n} has no effect on `{}` — its \
                     workload replays a v1 binary trace at full recorded length; convert \
                     it with `trace_tool convert --format binary-v2` to make the trace \
                     truncatable",
                    scenario.name
                );
            }
        }
    }
    let mut runner = BatchRunner::new().with_verify_forks(verify_forks);
    if let Some(every) = checkpoint_every {
        // `--checkpoint-every` was rejected above without `--output`.
        let output = output.as_deref().expect("checked above");
        runner = runner.with_checkpoint_every(every, format!("{output}.snap"));
    }
    // A corrupt, truncated or version-skewed snapshot is refused here, before
    // the output file is even opened; the `SnapError` names the bad section.
    let restore = match &restore_path {
        Some(p) => match SimSnapshot::read_from(p) {
            Ok(snap) => {
                eprintln!(
                    "[scenario_run] restoring row {} (`{}`) from {p} at {} accesses",
                    snap.header().row_index,
                    snap.header().scenario,
                    snap.accesses_done(),
                );
                Some(Arc::new(snap))
            }
            Err(e) => {
                eprintln!("{p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    eprintln!(
        "[scenario_run] {} scenario(s) on {} threads{}",
        scenarios.len(),
        runner.num_threads(),
        match sim_threads {
            Some(n) => format!(" (x {n} intra-run)"),
            None => String::new(),
        }
    );

    if let Some(output) = output {
        return run_to_file(&runner, &scenarios, &path, &output, resume, restore);
    }

    if json {
        let mut sink = JsonlSink::new();
        if let Err(e) = runner.run_with_sink(&scenarios, &mut sink) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", sink.into_string());
        return ExitCode::SUCCESS;
    }

    let results = match runner.run(&scenarios) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<40} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "runtime ns", "l2 misses", "pf evict", "noc bytes", "local"
    );
    for entry in &results.entries {
        println!(
            "{:<40} {:>12} {:>10} {:>10} {:>12} {:>10.3}",
            entry.scenario.name,
            entry.report.runtime.as_u64(),
            entry.report.l2_misses,
            entry.report.pf_evictions,
            entry.report.noc_bytes,
            entry.report.local_fraction(),
        );
    }
    ExitCode::SUCCESS
}

/// Streams the batch into a file-backed sink: CSV when the path ends in
/// `.csv`, JSONL otherwise. With `resume`, the partially-written output is
/// first *scanned and verified* against the batch — a file recorded under
/// different settings (an `--accesses` override, an edited document, the
/// wrong file) fails here with the output untouched — then the recorded
/// indices are skipped and new rows append after them. With `restore`, the
/// snapshot's resume cursor must additionally agree with the scan before
/// the file is reopened: a snapshot taken after N rows only restores into
/// a file holding exactly N rows.
fn run_to_file(
    runner: &BatchRunner,
    scenarios: &[allarm_core::Scenario],
    doc_path: &str,
    output: &str,
    resume: bool,
    restore: Option<Arc<SimSnapshot>>,
) -> ExitCode {
    fn run_into<S: ResultSink>(
        created: Result<(S, HashSet<usize>), String>,
        finish: impl FnOnce(S) -> std::io::Result<()>,
        runner: &BatchRunner,
        scenarios: &[allarm_core::Scenario],
        doc_path: &str,
        output: &str,
        restore: Option<Arc<SimSnapshot>>,
    ) -> Result<(), String> {
        let (mut sink, completed) = created?;
        if !completed.is_empty() {
            eprintln!(
                "[scenario_run] resuming {output}: {} of {} row(s) already recorded",
                completed.len(),
                scenarios.len()
            );
        }
        let restore = restore.map(|snap| (snap.header().row_index as usize, snap));
        runner
            .run_with_sink_restored(scenarios, &mut sink, &completed, restore)
            .map_err(|e| format!("{doc_path}: {e}"))?;
        finish(sink).map_err(|e| format!("writing {output}: {e}"))
    }

    /// Scan (read-only) → verify the recorded rows against the batch →
    /// verify the restore snapshot's cursor against the recorded rows →
    /// reopen for append. A verification failure leaves the output file
    /// byte-identical to how the interruption left it.
    fn resumed<S>(
        scanned: std::io::Result<ResumeScan>,
        reopen: impl FnOnce(&ResumeScan) -> std::io::Result<S>,
        scenarios: &[allarm_core::Scenario],
        output: &str,
        restore: Option<&SimSnapshot>,
    ) -> Result<(S, HashSet<usize>), String> {
        let scan = scanned.map_err(|e| format!("cannot read {output}: {e}"))?;
        verify_resume_rows(scenarios, scan.rows())
            .map_err(|e| format!("cannot resume {output}: {e}"))?;
        if let Some(snap) = restore {
            let header = snap.header();
            if !header.is_batch_checkpoint() {
                return Err(format!(
                    "cannot restore into {output}: the snapshot does not carry a resume \
                     cursor (was it written by --checkpoint-every?); nothing was written"
                ));
            }
            if header.row_index as usize != scan.rows().len() {
                return Err(format!(
                    "cannot restore into {output}: the snapshot was taken after {} recorded \
                     row(s) but the file holds {} — a stale snapshot or the wrong output \
                     file; nothing was written",
                    header.row_index,
                    scan.rows().len()
                ));
            }
        }
        let sink = reopen(&scan).map_err(|e| format!("cannot open {output}: {e}"))?;
        Ok((sink, scan.completed()))
    }

    fn fresh<S>(created: std::io::Result<S>, output: &str) -> Result<(S, HashSet<usize>), String> {
        created
            .map(|s| (s, HashSet::new()))
            .map_err(|e| format!("cannot open {output}: {e}"))
    }

    let result = if output.ends_with(".csv") {
        run_into(
            if resume {
                resumed(
                    CsvFileSink::scan(output),
                    |scan| CsvFileSink::resume_scanned(output, scan),
                    scenarios,
                    output,
                    restore.as_deref(),
                )
            } else {
                fresh(CsvFileSink::create(output), output)
            },
            CsvFileSink::finish,
            runner,
            scenarios,
            doc_path,
            output,
            restore,
        )
    } else {
        run_into(
            if resume {
                resumed(
                    JsonlFileSink::scan(output),
                    |scan| JsonlFileSink::resume_scanned(output, scan),
                    scenarios,
                    output,
                    restore.as_deref(),
                )
            } else {
                fresh(JsonlFileSink::create(output), output)
            },
            JsonlFileSink::finish,
            runner,
            scenarios,
            doc_path,
            output,
            restore,
        )
    };
    match result {
        Ok(()) => {
            eprintln!("[scenario_run] wrote {output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

//! Runs a declarative scenario document: the front door of the redesigned
//! API. Accepts a single `Scenario` or a `ScenarioGrid` in TOML or JSON,
//! expands it, executes the set in parallel, and prints one summary row per
//! run (or full JSONL reports with `--json`).
//!
//! ```text
//! cargo run --release -p allarm-bench --bin scenario_run -- scenarios/fig3_comparison.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- --json my_scenario.toml
//! ```

use allarm_bench::parse_scenario_doc;
use allarm_core::{BatchRunner, JsonlSink};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}` (supported: --json)");
                return ExitCode::FAILURE;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: scenario_run [--json] <scenario.toml|scenario.json>");
        return ExitCode::FAILURE;
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let is_toml = !path.ends_with(".json");
    let doc = match parse_scenario_doc(&text, is_toml) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let scenarios = doc.expand();
    let runner = BatchRunner::new();
    eprintln!(
        "[scenario_run] {} scenario(s) on {} threads",
        scenarios.len(),
        runner.num_threads()
    );

    if json {
        let mut sink = JsonlSink::new();
        if let Err(e) = runner.run_with_sink(&scenarios, &mut sink) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", sink.into_string());
        return ExitCode::SUCCESS;
    }

    let results = match runner.run(&scenarios) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<40} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "runtime ns", "l2 misses", "pf evict", "noc bytes", "local"
    );
    for entry in &results.entries {
        println!(
            "{:<40} {:>12} {:>10} {:>10} {:>12} {:>10.3}",
            entry.scenario.name,
            entry.report.runtime.as_u64(),
            entry.report.l2_misses,
            entry.report.pf_evictions,
            entry.report.noc_bytes,
            entry.report.local_fraction(),
        );
    }
    ExitCode::SUCCESS
}

//! Runs a declarative scenario document: the front door of the redesigned
//! API. Accepts a single `Scenario` or a `ScenarioGrid` in TOML or JSON,
//! expands it, executes the set in parallel, and prints one summary row per
//! run (or full JSONL reports with `--json`). `--output` streams results to
//! disk as they complete — JSONL, or CSV when the path ends in `.csv` —
//! `--resume` continues an interrupted `--output` sweep by skipping the
//! grid indices already recorded in the file — after verifying the
//! recorded rows still match the batch, so resuming under different
//! settings (e.g. another `--accesses`) fails cleanly instead of mixing
//! rows — `--sim-threads` shards every run across worker threads
//! (byte-identical results; see the README's parallelism section), and
//! `--accesses` overrides the per-thread trace length (for smoke runs of
//! checked-in grids; trace-file replays keep their recorded length).
//!
//! ```text
//! cargo run --release -p allarm-bench --bin scenario_run -- scenarios/fig3_comparison.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- --json my_scenario.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- \
//!     --sim-threads 4 --output results.csv scenarios/fig3_comparison.toml
//! cargo run --release -p allarm-bench --bin scenario_run -- \
//!     --resume --output results.jsonl scenarios/scale64_pf_sweep.toml
//! ```

use allarm_bench::load_scenario_doc;
use allarm_core::{
    verify_resume_rows, BatchRunner, CsvFileSink, JsonlFileSink, JsonlSink, ResultSink, ResumeScan,
};
use std::collections::HashSet;
use std::process::ExitCode;

const USAGE: &str = "usage: scenario_run [--json] [--output <path>] [--resume] \
     [--sim-threads <n>] [--accesses <n>] <scenario.toml|scenario.json>";

fn main() -> ExitCode {
    let mut json = false;
    let mut output: Option<String> = None;
    let mut resume = false;
    let mut sim_threads: Option<usize> = None;
    let mut accesses: Option<usize> = None;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--resume" => resume = true,
            "--output" => match args.next() {
                Some(p) => output = Some(p),
                None => {
                    eprintln!("--output needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--sim-threads" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => sim_threads = Some(n),
                None => {
                    eprintln!("--sim-threads needs a number (0 = all hardware threads)\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--accesses" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => accesses = Some(n),
                None => {
                    eprintln!("--accesses needs a per-thread access count\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if resume && output.is_none() {
        eprintln!("--resume needs --output (the file to continue)\n{USAGE}");
        return ExitCode::FAILURE;
    }

    // Format sniffing (case-insensitive .json check) and trace-path
    // resolution live in the shared loader.
    let doc = match load_scenario_doc(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Document-level validation catches grid-axis problems (e.g. a
    // benchmark sweep over a trace replay) that per-scenario validation
    // inside the runner cannot see.
    if let Err(e) = doc.validate() {
        eprintln!("{path}: {e}");
        return ExitCode::FAILURE;
    }

    let mut scenarios = doc.expand();
    if let Some(n) = sim_threads {
        for scenario in &mut scenarios {
            scenario.sim_threads = allarm_core::SimThreads(n);
        }
    }
    if let Some(n) = accesses {
        for scenario in &mut scenarios {
            scenario.workload = scenario.workload.with_accesses(n);
        }
    }
    let runner = BatchRunner::new();
    eprintln!(
        "[scenario_run] {} scenario(s) on {} threads{}",
        scenarios.len(),
        runner.num_threads(),
        match sim_threads {
            Some(n) => format!(" (x {n} intra-run)"),
            None => String::new(),
        }
    );

    if let Some(output) = output {
        return run_to_file(&runner, &scenarios, &path, &output, resume);
    }

    if json {
        let mut sink = JsonlSink::new();
        if let Err(e) = runner.run_with_sink(&scenarios, &mut sink) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", sink.into_string());
        return ExitCode::SUCCESS;
    }

    let results = match runner.run(&scenarios) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<40} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "scenario", "runtime ns", "l2 misses", "pf evict", "noc bytes", "local"
    );
    for entry in &results.entries {
        println!(
            "{:<40} {:>12} {:>10} {:>10} {:>12} {:>10.3}",
            entry.scenario.name,
            entry.report.runtime.as_u64(),
            entry.report.l2_misses,
            entry.report.pf_evictions,
            entry.report.noc_bytes,
            entry.report.local_fraction(),
        );
    }
    ExitCode::SUCCESS
}

/// Streams the batch into a file-backed sink: CSV when the path ends in
/// `.csv`, JSONL otherwise. With `resume`, the partially-written output is
/// first *scanned and verified* against the batch — a file recorded under
/// different settings (an `--accesses` override, an edited document, the
/// wrong file) fails here with the output untouched — then the recorded
/// indices are skipped and new rows append after them.
fn run_to_file(
    runner: &BatchRunner,
    scenarios: &[allarm_core::Scenario],
    doc_path: &str,
    output: &str,
    resume: bool,
) -> ExitCode {
    fn run_into<S: ResultSink>(
        created: Result<(S, HashSet<usize>), String>,
        finish: impl FnOnce(S) -> std::io::Result<()>,
        runner: &BatchRunner,
        scenarios: &[allarm_core::Scenario],
        doc_path: &str,
        output: &str,
    ) -> Result<(), String> {
        let (mut sink, completed) = created?;
        if !completed.is_empty() {
            eprintln!(
                "[scenario_run] resuming {output}: {} of {} row(s) already recorded",
                completed.len(),
                scenarios.len()
            );
        }
        runner
            .run_with_sink_resuming(scenarios, &mut sink, &completed)
            .map_err(|e| format!("{doc_path}: {e}"))?;
        finish(sink).map_err(|e| format!("writing {output}: {e}"))
    }

    /// Scan (read-only) → verify the recorded rows against the batch →
    /// reopen for append. A verification failure leaves the output file
    /// byte-identical to how the interruption left it.
    fn resumed<S>(
        scanned: std::io::Result<ResumeScan>,
        reopen: impl FnOnce(&ResumeScan) -> std::io::Result<S>,
        scenarios: &[allarm_core::Scenario],
        output: &str,
    ) -> Result<(S, HashSet<usize>), String> {
        let scan = scanned.map_err(|e| format!("cannot read {output}: {e}"))?;
        verify_resume_rows(scenarios, scan.rows())
            .map_err(|e| format!("cannot resume {output}: {e}"))?;
        let sink = reopen(&scan).map_err(|e| format!("cannot open {output}: {e}"))?;
        Ok((sink, scan.completed()))
    }

    fn fresh<S>(created: std::io::Result<S>, output: &str) -> Result<(S, HashSet<usize>), String> {
        created
            .map(|s| (s, HashSet::new()))
            .map_err(|e| format!("cannot open {output}: {e}"))
    }

    let result = if output.ends_with(".csv") {
        run_into(
            if resume {
                resumed(
                    CsvFileSink::scan(output),
                    |scan| CsvFileSink::resume_scanned(output, scan),
                    scenarios,
                    output,
                )
            } else {
                fresh(CsvFileSink::create(output), output)
            },
            CsvFileSink::finish,
            runner,
            scenarios,
            doc_path,
            output,
        )
    } else {
        run_into(
            if resume {
                resumed(
                    JsonlFileSink::scan(output),
                    |scan| JsonlFileSink::resume_scanned(output, scan),
                    scenarios,
                    output,
                )
            } else {
                fresh(JsonlFileSink::create(output), output)
            },
            JsonlFileSink::finish,
            runner,
            scenarios,
            doc_path,
            output,
        )
    };
    match result {
        Ok(()) => {
            eprintln!("[scenario_run] wrote {output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

//! Figure 3d: average coherence messages per probe-filter eviction.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut series = FigureSeries::without_geomean("messages");
    for (bench, cmp) in all_comparisons(&cfg) {
        series.push(bench.name(), cmp.baseline_messages_per_eviction());
    }
    print!(
        "{}",
        render_table(
            "Fig. 3d: average messages per probe-filter eviction",
            &[series]
        )
    );
}

//! Inspects versioned simulator snapshot files (`allarm_core::snapshot`).
//!
//! `info` prints the identifying header — format version, machine shape,
//! policy, workload identity, and how far along the run was — plus the
//! section table (every section's name, version, and payload size) without
//! decoding any state section, though every section's frame and checksum
//! *is* verified, so a truncated or bit-flipped file is refused with an
//! error naming the offending section. Files written by a different
//! format version are refused the same way; the file is never modified.
//!
//! ```text
//! cargo run --release -p allarm-bench --bin snap_tool -- info results.jsonl.snap
//! ```

use allarm_core::snapshot::{read_header, read_section_table};
use allarm_core::SNAP_VERSION;
use std::process::ExitCode;

const USAGE: &str = "usage: snap_tool info <snapshot-file>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => info(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn info(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let header = match read_header(path) {
        Ok(header) => header,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("snapshot:       {path}");
    println!("format version: {SNAP_VERSION}");
    println!(
        "machine:        {} core(s), {} node(s), {} policy",
        header.num_cores, header.num_nodes, header.policy
    );
    println!("fingerprint:    {:016x}", header.config_fingerprint);
    println!("workload:       {}", header.workload_name);
    println!("checksum:       {:016x}", header.workload_checksum);
    println!(
        "progress:       {} of {} accesses",
        header.accesses_done, header.workload_total
    );
    if header.is_batch_checkpoint() {
        println!(
            "batch cursor:   row {} (`{}`)",
            header.row_index, header.scenario
        );
    } else {
        println!("batch cursor:   (not a batch checkpoint)");
    }
    match read_section_table(path) {
        Ok(sections) => {
            println!("sections:");
            for s in &sections {
                println!("  {:<12} v{:<3} {} byte(s)", s.name, s.version, s.len);
            }
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! Figure 3b: probe-filter evictions under ALLARM, normalised to baseline.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut norm = FigureSeries::without_geomean("normalised");
    let mut base = FigureSeries::without_geomean("baseline#");
    let mut allarm = FigureSeries::without_geomean("allarm#");
    for (bench, cmp) in all_comparisons(&cfg) {
        norm.push(bench.name(), cmp.normalized_evictions());
        base.push(bench.name(), cmp.baseline.pf_evictions as f64);
        allarm.push(bench.name(), cmp.allarm.pf_evictions as f64);
    }
    print!(
        "{}",
        render_table(
            "Fig. 3b: normalised probe-filter evictions",
            &[norm, base, allarm]
        )
    );
}

//! Figure 2: ratio of local to remote directory requests per benchmark.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut local = FigureSeries::without_geomean("local");
    let mut remote = FigureSeries::without_geomean("remote");
    for (bench, cmp) in all_comparisons(&cfg) {
        local.push(bench.name(), cmp.baseline.local_fraction());
        remote.push(bench.name(), cmp.baseline.remote_fraction());
    }
    print!(
        "{}",
        render_table(
            "Fig. 2: fraction of local vs remote directory requests",
            &[local, remote]
        )
    );
}

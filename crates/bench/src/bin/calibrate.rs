//! Calibration dump: every headline metric for every benchmark, side by
//! side with the paper's target values. Used while tuning the workload
//! profiles; kept in the tree because it is the fastest way to see the
//! whole reproduction at a glance.

use allarm_bench::figure_config;
use allarm_core::compare_benchmark;
use allarm_types::stats::geometric_mean;
use allarm_workloads::Benchmark;

fn main() {
    let cfg = figure_config();
    println!(
        "calibration run: {} threads x {} accesses, PF {} kB/node",
        cfg.threads,
        cfg.accesses_per_thread,
        cfg.machine.probe_filter.coverage_bytes / 1024
    );
    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "benchmark",
        "local",
        "speedup",
        "evict",
        "traffic",
        "l2miss",
        "msg/ev",
        "hidden",
        "noc-E",
        "pf-E"
    );

    let mut speedups = Vec::new();
    let mut evictions = Vec::new();
    let mut traffic = Vec::new();
    let mut l2 = Vec::new();
    let mut noc_e = Vec::new();
    let mut pf_e = Vec::new();

    for bench in Benchmark::ALL {
        let cmp = compare_benchmark(bench, &cfg);
        println!(
            "{:<16} {:>6.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.2} {:>8.3} {:>9.3} {:>10.3}",
            bench.name(),
            cmp.local_fraction(),
            cmp.speedup(),
            cmp.normalized_evictions(),
            cmp.normalized_traffic(),
            cmp.normalized_l2_misses(),
            cmp.baseline_messages_per_eviction(),
            cmp.hidden_probe_fraction(),
            cmp.normalized_noc_energy(),
            cmp.normalized_pf_energy(),
        );
        speedups.push(cmp.speedup());
        evictions.push(cmp.normalized_evictions());
        traffic.push(cmp.normalized_traffic());
        l2.push(cmp.normalized_l2_misses());
        noc_e.push(cmp.normalized_noc_energy());
        pf_e.push(cmp.normalized_pf_energy());
        // Raw counts help diagnose degenerate cases (e.g. zero evictions).
        eprintln!(
            "    [{}] baseline evictions={} allarm evictions={} dir requests={} l2 misses={}",
            bench.name(),
            cmp.baseline.pf_evictions,
            cmp.allarm.pf_evictions,
            cmp.baseline.directory_requests,
            cmp.baseline.l2_misses
        );
    }

    let gm = |v: &[f64]| geometric_mean(v).unwrap_or(f64::NAN);
    println!(
        "{:<16} {:>6} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8} {:>8} {:>9.3} {:>10.3}",
        "geomean",
        "-",
        gm(&speedups),
        gm(&evictions),
        gm(&traffic),
        gm(&l2),
        "-",
        "-",
        gm(&noc_e),
        gm(&pf_e),
    );
    println!();
    println!("paper targets: speedup ~1.13 (geomean), evictions ~0.54, traffic ~0.88,");
    println!("l2 misses ~0.91, NoC energy ~0.91, PF energy ~0.85, hidden ~0.81,");
    println!("fluidanimate <= 1.0 speedup, ocean-* largest speedups.");
}

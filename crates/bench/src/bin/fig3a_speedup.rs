//! Figure 3a: speedup of ALLARM over the baseline (16 threads).

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut series = FigureSeries::new("speedup");
    for (bench, cmp) in all_comparisons(&cfg) {
        series.push(bench.name(), cmp.speedup());
    }
    print!(
        "{}",
        render_table("Fig. 3a: speedup over baseline", &[series])
    );
}

//! Records and inspects on-disk trace files (`allarm_workloads::tracefile`).
//!
//! `record` materializes the workload of a scenario document — the first
//! expansion point's `(workload, seed)` — and dumps it to a trace file in
//! either format, ready for replay through `WorkloadSpec::TraceFile`.
//! `info` prints a header summary (name, threads, pinning, access counts,
//! checksum) without decoding the body.
//!
//! ```text
//! cargo run --release -p allarm-bench --bin trace_tool -- \
//!     record --format binary --out scenarios/tracefile_sample.trace scenarios/tracefile_source.toml
//! cargo run --release -p allarm-bench --bin trace_tool -- info scenarios/tracefile_sample.trace
//! ```
//!
//! Recording is deterministic (the workload is a pure function of the
//! document's spec and seed), so CI regenerates the committed sample trace
//! and diffs it byte-for-byte against the checked-in file.

use allarm_bench::load_scenario_doc;
use allarm_workloads::tracefile::{self, TraceFormat};
use std::process::ExitCode;

const USAGE: &str = "usage: trace_tool record [--format text|binary] --out <trace-file> \
     <scenario.toml|scenario.json>\n       trace_tool info <trace-file>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("info") => info(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn record(args: &[String]) -> ExitCode {
    let mut format = TraceFormat::Binary;
    let mut out: Option<String> = None;
    let mut doc_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => match iter.next().and_then(|f| TraceFormat::from_cli_name(f)) {
                Some(f) => format = f,
                None => {
                    eprintln!("--format needs `text` or `binary`\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match iter.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other if doc_path.is_none() => doc_path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(out), Some(doc_path)) = (out, doc_path) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let doc = match load_scenario_doc(&doc_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = doc.expand();
    let Some(scenario) = scenarios.first() else {
        eprintln!("{doc_path}: document expands to no scenarios");
        return ExitCode::FAILURE;
    };
    if let Err(e) = scenario.validate() {
        eprintln!("{doc_path}: {e}");
        return ExitCode::FAILURE;
    }
    let workload = scenario.workload();
    if let Err(e) = tracefile::write_trace_file(&out, &workload, format) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[trace_tool] recorded `{}` ({} thread(s), {} accesses, checksum {:016x}) to {out} as {}",
        workload.name,
        workload.threads.len(),
        workload.total_accesses(),
        workload.checksum(),
        format.name(),
    );
    ExitCode::SUCCESS
}

fn info(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let header = match tracefile::read_header(path) {
        Ok(header) => header,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("trace:          {path}");
    println!(
        "format:         {} (v{})",
        header.format.name(),
        header.version
    );
    println!("name:           {}", header.name);
    println!("threads:        {}", header.threads.len());
    println!("cores required: {}", header.cores_required());
    println!("total accesses: {}", header.total_accesses());
    match header.checksum {
        Some(c) => println!("checksum:       {c:016x}"),
        None => println!("checksum:       (none recorded; verified against the body on replay)"),
    }
    println!("{:>8} {:>6} {:>12}", "thread", "core", "accesses");
    for t in &header.threads {
        println!(
            "{:>8} {:>6} {:>12}",
            t.thread.raw(),
            t.core.raw(),
            t.accesses
        );
    }
    ExitCode::SUCCESS
}

//! Records, converts and inspects on-disk trace files
//! (`allarm_workloads::tracefile`).
//!
//! `record` materializes the workload of a scenario document — the first
//! expansion point's `(workload, seed)` — and dumps it to a trace file in
//! any format, ready for replay through `WorkloadSpec::TraceFile`.
//! `convert` re-encodes an existing trace (any ALLARM format) or ingests a
//! PIN/gem5-style text dump into v1/v2. `info` prints a header summary
//! (name, threads, pinning, access counts, checksum) without decoding the
//! body — for frame-chunked `binary-v2` traces it additionally reads the
//! frame directory, still never touching the records. `seek` jumps to an
//! arbitrary record index of a v2 trace through the directory and prints a
//! window of records, decoding only the frames it lands on.
//!
//! ```text
//! cargo run --release -p allarm-bench --bin trace_tool -- \
//!     record --format binary-v2 --out sample.btrace scenarios/tracefile_source.toml
//! cargo run --release -p allarm-bench --bin trace_tool -- \
//!     convert --format binary-v2 --out sample.btrace old_v1.trace
//! cargo run --release -p allarm-bench --bin trace_tool -- info sample.btrace
//! cargo run --release -p allarm-bench --bin trace_tool -- \
//!     seek --thread 2 --start 1000000 --count 4 sample.btrace
//! ```
//!
//! Recording is deterministic (the workload is a pure function of the
//! document's spec and seed), so CI regenerates the committed sample traces
//! and diffs them byte-for-byte against the checked-in files.
//!
//! ## Foreign dump ingestion
//!
//! `convert` accepts simulator/instrumentation text dumps with one access
//! per line: `<thread> <R|W> <hexaddr>` (also `r/w`, `ld/st`,
//! `load/store`, `read/write`; `0x` prefixes optional). A two-column line
//! is thread 0, a leading instruction-pointer column (`0x...:`, as
//! pinatrace prints) is skipped, and `#`-lines are comments. Threads are
//! pinned to cores 1:1 in thread order.

use allarm_bench::load_scenario_doc;
use allarm_workloads::tracefile::{self, TraceFormat, TraceSource, DEFAULT_FRAME_LEN};
use allarm_workloads::{MemAccess, ThreadTrace, Workload};
use std::io::BufRead;
use std::process::ExitCode;

const USAGE: &str = "usage: trace_tool record [--format text|binary|binary-v2] [--frame-len <n>] \
     --out <trace-file> <scenario.toml|scenario.json>\n       \
     trace_tool convert [--format text|binary|binary-v2] [--frame-len <n>] \
     --out <trace-file> <trace-or-dump-file>\n       \
     trace_tool info <trace-file>\n       \
     trace_tool seek [--thread <t>] [--start <record>] [--count <n>] <v2-trace-file>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("record") => record(&args[1..]),
        Some("convert") => convert(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("seek") => seek(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Shared flag parsing for `record` and `convert`: `--format`,
/// `--frame-len`, `--out`, and one positional input path.
struct OutputArgs {
    format: TraceFormat,
    frame_len: u64,
    out: String,
    input: String,
}

fn parse_output_args(args: &[String], default_format: TraceFormat) -> Result<OutputArgs, String> {
    let mut format = default_format;
    let mut frame_len = DEFAULT_FRAME_LEN;
    let mut out: Option<String> = None;
    let mut input: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => match iter.next().and_then(|f| TraceFormat::from_cli_name(f)) {
                Some(f) => format = f,
                None => return Err("--format needs `text`, `binary` or `binary-v2`".to_string()),
            },
            "--frame-len" => match iter.next().and_then(|n| n.parse().ok()).filter(|&n| n > 0) {
                Some(n) => frame_len = n,
                None => return Err("--frame-len needs a positive record count".to_string()),
            },
            "--out" => match iter.next() {
                Some(p) => out = Some(p.clone()),
                None => return Err("--out needs a path".to_string()),
            },
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other if input.is_none() => input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    match (out, input) {
        (Some(out), Some(input)) => Ok(OutputArgs {
            format,
            frame_len,
            out,
            input,
        }),
        _ => Err("an input path and --out are both required".to_string()),
    }
}

fn write_out(workload: &Workload, args: &OutputArgs, did: &str) -> ExitCode {
    let result =
        tracefile::write_trace_file_framed(&args.out, workload, args.format, args.frame_len);
    if let Err(e) = result {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[trace_tool] {did} `{}` ({} thread(s), {} accesses, checksum {:016x}) to {} as {}",
        workload.name,
        workload.threads.len(),
        workload.total_accesses(),
        workload.checksum(),
        args.out,
        args.format.name(),
    );
    ExitCode::SUCCESS
}

fn record(args: &[String]) -> ExitCode {
    let args = match parse_output_args(args, TraceFormat::Binary) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match load_scenario_doc(&args.input) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = doc.expand();
    let Some(scenario) = scenarios.first() else {
        eprintln!("{}: document expands to no scenarios", args.input);
        return ExitCode::FAILURE;
    };
    if let Err(e) = scenario.validate() {
        eprintln!("{}: {e}", args.input);
        return ExitCode::FAILURE;
    }
    let workload = scenario.workload();
    write_out(&workload, &args, "recorded")
}

fn convert(args: &[String]) -> ExitCode {
    let args = match parse_output_args(args, TraceFormat::BinaryV2) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // An ALLARM trace (any format) re-encodes through the normal reader,
    // preserving name, pinning and checksum; anything else is parsed as a
    // foreign text dump.
    let workload = match tracefile::read_header(&args.input) {
        Ok(_) => match tracefile::read_workload(&args.input) {
            Ok((_, workload)) => workload,
            Err(e) => {
                eprintln!("{}: {e}", args.input);
                return ExitCode::FAILURE;
            }
        },
        Err(_) => match parse_foreign_dump(&args.input) {
            Ok(workload) => workload,
            Err(e) => {
                eprintln!("{}: {e}", args.input);
                return ExitCode::FAILURE;
            }
        },
    };
    write_out(&workload, &args, "converted")
}

/// Parses a PIN/gem5-style text dump (see the module docs for the accepted
/// shapes) into a workload named after the file stem.
fn parse_foreign_dump(path: &str) -> Result<Workload, String> {
    use allarm_types::ids::{CoreId, ThreadId};
    use std::collections::BTreeMap;

    let file = std::fs::File::open(path).map_err(|e| format!("cannot open: {e}"))?;
    let mut threads: BTreeMap<u64, Vec<MemAccess>> = BTreeMap::new();
    for (lineno, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let mut tokens: Vec<&str> = line.split_whitespace().collect();
        // pinatrace prefixes each access with the instruction pointer
        // (`0x7f..:`); drop it.
        if tokens.len() >= 3 && tokens[0].ends_with(':') && looks_hex(tokens[0]) {
            tokens.remove(0);
        }
        let (tid, op, addr) = match tokens.as_slice() {
            [op, addr] => (0u64, *op, *addr),
            [tid, op, addr] => (
                tid.parse::<u64>()
                    .map_err(|_| format!("line {}: bad thread id `{tid}`", lineno + 1))?,
                *op,
                *addr,
            ),
            _ => {
                return Err(format!(
                    "line {}: expected `[thread] <R|W> <hexaddr>`, got `{line}`",
                    lineno + 1
                ))
            }
        };
        let write = match op.to_ascii_lowercase().as_str() {
            "r" | "ld" | "load" | "read" => false,
            "w" | "st" | "store" | "write" => true,
            other => return Err(format!("line {}: unknown op `{other}`", lineno + 1)),
        };
        let addr = addr.strip_prefix("0x").unwrap_or(addr);
        let vaddr = u64::from_str_radix(addr, 16)
            .map_err(|_| format!("line {}: bad address `{addr}`", lineno + 1))?;
        if tid >= u64::from(u16::MAX) {
            return Err(format!("line {}: thread id {tid} out of range", lineno + 1));
        }
        threads.entry(tid).or_default().push(if write {
            MemAccess::store(vaddr)
        } else {
            MemAccess::load(vaddr)
        });
    }
    if threads.is_empty() {
        return Err("no accesses found (is this a PIN/gem5-style dump?)".to_string());
    }
    let name = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    Ok(Workload {
        name,
        threads: threads
            .into_iter()
            .map(|(tid, accesses)| ThreadTrace {
                thread: ThreadId::new(tid as u16),
                core: CoreId::new(tid as u16),
                accesses,
            })
            .collect(),
    })
}

/// True if a `tok:`-style token is hex-like (an instruction pointer, not a
/// decimal thread id).
fn looks_hex(token: &str) -> bool {
    let t = token.trim_end_matches(':');
    let t = t.strip_prefix("0x").unwrap_or(t);
    !t.is_empty() && t.chars().all(|c| c.is_ascii_hexdigit())
}

fn info(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let header = match tracefile::read_header(path) {
        Ok(header) => header,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("trace:          {path}");
    println!(
        "format:         {} (v{})",
        header.format.name(),
        header.version
    );
    println!("name:           {}", header.name);
    println!("threads:        {}", header.threads.len());
    println!("cores required: {}", header.cores_required());
    println!("total accesses: {}", header.total_accesses());
    match header.checksum {
        Some(c) => println!("checksum:       {c:016x}"),
        None => println!("checksum:       (none recorded; verified against the body on replay)"),
    }
    // For the frame-chunked container, also verify and summarize the frame
    // directory — still without decoding a single record.
    let source = if header.format.is_streamable() {
        match TraceSource::open(path) {
            Ok(source) => {
                println!("frame length:   {} records", source.frame_len());
                Some(source)
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    match &source {
        Some(source) => {
            println!(
                "{:>8} {:>6} {:>12} {:>8}",
                "thread", "core", "accesses", "frames"
            );
            for (i, t) in header.threads.iter().enumerate() {
                println!(
                    "{:>8} {:>6} {:>12} {:>8}",
                    t.thread.raw(),
                    t.core.raw(),
                    t.accesses,
                    source.frames(i).len()
                );
            }
        }
        None => {
            println!("{:>8} {:>6} {:>12}", "thread", "core", "accesses");
            for t in &header.threads {
                println!(
                    "{:>8} {:>6} {:>12}",
                    t.thread.raw(),
                    t.core.raw(),
                    t.accesses
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn seek(args: &[String]) -> ExitCode {
    let mut thread = 0usize;
    let mut start = 0u64;
    let mut count = 8u64;
    let mut path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--thread" => match iter.next().and_then(|n| n.parse().ok()) {
                Some(n) => thread = n,
                None => {
                    eprintln!("--thread needs an index\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--start" => match iter.next().and_then(|n| n.parse().ok()) {
                Some(n) => start = n,
                None => {
                    eprintln!("--start needs a record index\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--count" => match iter.next().and_then(|n| n.parse().ok()).filter(|&n| n > 0) {
                Some(n) => count = n,
                None => {
                    eprintln!("--count needs a positive number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let source = match TraceSource::open(&path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let threads = source.threads();
    let Some(meta) = threads.get(thread) else {
        eprintln!(
            "{path}: no thread {thread} (the trace has {})",
            threads.len()
        );
        return ExitCode::FAILURE;
    };
    if start >= meta.accesses {
        eprintln!(
            "{path}: thread {thread} has {} record(s); cannot seek to {start}",
            meta.accesses
        );
        return ExitCode::FAILURE;
    }
    let mut feed = match source.open_thread(thread, start) {
        Ok(feed) => feed,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{:>12} {:>3} {:>18}", "record", "op", "vaddr");
    for idx in start..start.saturating_add(count).min(meta.accesses) {
        match feed.try_get(idx as usize) {
            Ok(Some(access)) => println!(
                "{:>12} {:>3} {:#18x}",
                idx,
                if access.write { "W" } else { "R" },
                access.vaddr.raw()
            ),
            Ok(None) => break,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

//! Figure 3f: dynamic energy of the NoC and probe filter, normalised to
//! baseline.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{render_table, FigureSeries};

fn main() {
    let cfg = figure_config();
    let mut noc = FigureSeries::new("NoC");
    let mut pf = FigureSeries::new("PF");
    for (bench, cmp) in all_comparisons(&cfg) {
        noc.push(bench.name(), cmp.normalized_noc_energy());
        pf.push(bench.name(), cmp.normalized_pf_energy());
    }
    print!(
        "{}",
        render_table("Fig. 3f: normalised dynamic energy", &[noc, pf])
    );
}

//! Figure 4: the multi-process experiment. Two single-threaded copies of a
//! SPLASH2 benchmark; speedup, probe-filter evictions and network traffic as
//! the probe filter shrinks from 512 kB to 32 kB, normalised to the baseline
//! at 512 kB.

use allarm_bench::figure_config;
use allarm_core::report::{format_coverage, render_sweep_table, FigureSeries};
use allarm_core::{multiprocess_sweep, SweepPoint, FIG4_COVERAGES};
use allarm_workloads::Benchmark;

fn print_panel(
    title: &str,
    benches: &[(Benchmark, Vec<SweepPoint>)],
    value: impl Fn(&SweepPoint, &SweepPoint) -> f64,
) {
    let labels: Vec<String> = FIG4_COVERAGES.iter().map(|c| format_coverage(*c)).collect();
    let series: Vec<FigureSeries> = benches
        .iter()
        .map(|(bench, points)| {
            let mut s = FigureSeries::without_geomean(bench.name());
            for (label, point) in labels.iter().zip(points) {
                s.push(label.clone(), value(point, &points[0]));
            }
            s
        })
        .collect();
    print!("{}", render_sweep_table(title, &labels, &series));
    println!();
}

fn main() {
    let cfg = figure_config();
    let benches: Vec<(Benchmark, Vec<SweepPoint>)> = Benchmark::MULTIPROCESS
        .iter()
        .map(|&bench| {
            eprintln!("[allarm-bench] multi-process sweep for {bench}...");
            (bench, multiprocess_sweep(bench, &cfg, &FIG4_COVERAGES))
        })
        .collect();

    // Baseline panels (Fig. 4a-4c).
    print_panel(
        "Fig. 4a: baseline speedup vs PF size",
        &benches,
        |p, reference| reference.baseline.runtime.as_f64() / p.baseline.runtime.as_f64(),
    );
    print_panel(
        "Fig. 4b: baseline normalised evictions",
        &benches,
        |p, reference| {
            allarm_types::stats::normalized(
                p.baseline.pf_evictions as f64,
                reference.baseline.pf_evictions as f64,
            )
        },
    );
    print_panel(
        "Fig. 4c: baseline normalised traffic",
        &benches,
        |p, reference| {
            allarm_types::stats::normalized(
                p.baseline.noc_bytes as f64,
                reference.baseline.noc_bytes as f64,
            )
        },
    );
    // ALLARM panels (Fig. 4d-4f), still normalised to the 512 kB baseline.
    print_panel(
        "Fig. 4d: ALLARM speedup vs PF size",
        &benches,
        |p, reference| reference.baseline.runtime.as_f64() / p.allarm.runtime.as_f64(),
    );
    print_panel(
        "Fig. 4e: ALLARM normalised evictions",
        &benches,
        |p, reference| {
            allarm_types::stats::normalized(
                p.allarm.pf_evictions as f64,
                reference.baseline.pf_evictions as f64,
            )
        },
    );
    print_panel(
        "Fig. 4f: ALLARM normalised traffic",
        &benches,
        |p, reference| {
            allarm_types::stats::normalized(
                p.allarm.noc_bytes as f64,
                reference.baseline.noc_bytes as f64,
            )
        },
    );
}

//! Regenerates every table and figure in one run and prints them in paper
//! order. The output of this binary is the basis of EXPERIMENTS.md.

use allarm_bench::{all_comparisons, figure_config};
use allarm_core::report::{format_coverage, render_sweep_table, render_table, FigureSeries};
use allarm_core::{multiprocess_sweep, pf_size_sweep, FIG3H_COVERAGES, FIG4_COVERAGES};
use allarm_energy::probe_filter_area_mm2;
use allarm_workloads::Benchmark;

fn main() {
    let cfg = figure_config();
    println!(
        "experiment scale: {} threads x {} accesses/thread, seed {}\n",
        cfg.threads, cfg.accesses_per_thread, cfg.seed
    );

    let comparisons = all_comparisons(&cfg);

    let mut fig2_local = FigureSeries::without_geomean("local");
    let mut fig2_remote = FigureSeries::without_geomean("remote");
    let mut fig3a = FigureSeries::new("speedup");
    let mut fig3b = FigureSeries::without_geomean("evictions");
    let mut fig3c = FigureSeries::new("traffic");
    let mut fig3d = FigureSeries::without_geomean("messages");
    let mut fig3e = FigureSeries::without_geomean("l2-misses");
    let mut fig3f_noc = FigureSeries::new("NoC");
    let mut fig3f_pf = FigureSeries::new("PF");
    let mut fig3g = FigureSeries::without_geomean("hidden");
    for (bench, cmp) in &comparisons {
        let name = bench.name();
        fig2_local.push(name, cmp.baseline.local_fraction());
        fig2_remote.push(name, cmp.baseline.remote_fraction());
        fig3a.push(name, cmp.speedup());
        fig3b.push(name, cmp.normalized_evictions());
        fig3c.push(name, cmp.normalized_traffic());
        fig3d.push(name, cmp.baseline_messages_per_eviction());
        fig3e.push(name, cmp.normalized_l2_misses());
        fig3f_noc.push(name, cmp.normalized_noc_energy());
        fig3f_pf.push(name, cmp.normalized_pf_energy());
        fig3g.push(name, cmp.hidden_probe_fraction());
    }
    println!(
        "{}",
        render_table(
            "Fig. 2: local vs remote directory requests",
            &[fig2_local, fig2_remote]
        )
    );
    println!(
        "{}",
        render_table("Fig. 3a: speedup over baseline", &[fig3a])
    );
    println!(
        "{}",
        render_table("Fig. 3b: normalised probe-filter evictions", &[fig3b])
    );
    println!(
        "{}",
        render_table("Fig. 3c: normalised network traffic", &[fig3c])
    );
    println!(
        "{}",
        render_table("Fig. 3d: messages per probe-filter eviction", &[fig3d])
    );
    println!(
        "{}",
        render_table("Fig. 3e: normalised L2 misses", &[fig3e])
    );
    println!(
        "{}",
        render_table("Fig. 3f: normalised dynamic energy", &[fig3f_noc, fig3f_pf])
    );
    println!(
        "{}",
        render_table("Fig. 3g: local probes off the critical path", &[fig3g])
    );

    // Fig. 3h.
    let mut fig3h: Vec<FigureSeries> = FIG3H_COVERAGES
        .iter()
        .map(|c| FigureSeries::new(format_coverage(*c)))
        .collect();
    for bench in Benchmark::ALL {
        eprintln!("[allarm-bench] fig 3h sweep for {bench}...");
        let points = pf_size_sweep(bench, &cfg, &FIG3H_COVERAGES);
        let reference = points[0].baseline.runtime.as_f64();
        for (i, p) in points.iter().enumerate() {
            fig3h[i].push(bench.name(), reference / p.allarm.runtime.as_f64());
        }
    }
    println!(
        "{}",
        render_table("Fig. 3h: ALLARM speedup vs probe-filter size", &fig3h)
    );

    // Fig. 4.
    let labels: Vec<String> = FIG4_COVERAGES.iter().map(|c| format_coverage(*c)).collect();
    let mut panels: Vec<(String, Vec<FigureSeries>)> = [
        "Fig. 4a: baseline speedup",
        "Fig. 4b: baseline normalised evictions",
        "Fig. 4c: baseline normalised traffic",
        "Fig. 4d: ALLARM speedup",
        "Fig. 4e: ALLARM normalised evictions",
        "Fig. 4f: ALLARM normalised traffic",
    ]
    .iter()
    .map(|t| (t.to_string(), Vec::new()))
    .collect();
    for bench in Benchmark::MULTIPROCESS {
        eprintln!("[allarm-bench] fig 4 sweep for {bench}...");
        let points = multiprocess_sweep(bench, &cfg, &FIG4_COVERAGES);
        let reference = &points[0];
        let make = |values: Vec<f64>| {
            let mut s = FigureSeries::without_geomean(bench.name());
            for (label, v) in labels.iter().zip(values) {
                s.push(label.clone(), v);
            }
            s
        };
        let ref_runtime = reference.baseline.runtime.as_f64();
        let ref_evictions = reference.baseline.pf_evictions as f64;
        let ref_bytes = reference.baseline.noc_bytes as f64;
        let columns: [Vec<f64>; 6] = [
            points
                .iter()
                .map(|p| ref_runtime / p.baseline.runtime.as_f64())
                .collect(),
            points
                .iter()
                .map(|p| {
                    allarm_types::stats::normalized(p.baseline.pf_evictions as f64, ref_evictions)
                })
                .collect(),
            points
                .iter()
                .map(|p| allarm_types::stats::normalized(p.baseline.noc_bytes as f64, ref_bytes))
                .collect(),
            points
                .iter()
                .map(|p| ref_runtime / p.allarm.runtime.as_f64())
                .collect(),
            points
                .iter()
                .map(|p| {
                    allarm_types::stats::normalized(p.allarm.pf_evictions as f64, ref_evictions)
                })
                .collect(),
            points
                .iter()
                .map(|p| allarm_types::stats::normalized(p.allarm.noc_bytes as f64, ref_bytes))
                .collect(),
        ];
        for (panel, values) in panels.iter_mut().zip(columns) {
            panel.1.push(make(values));
        }
    }
    for (title, series) in &panels {
        println!("{}", render_sweep_table(title, &labels, series));
    }

    // Area table.
    println!("# Probe-filter area (mm2)");
    for capacity in [512, 256, 128, 64, 32u64] {
        println!(
            "{:>6}kB  {:>8.2}",
            capacity,
            probe_filter_area_mm2(capacity * 1024)
        );
    }
}

//! Table I: the simulated system configuration.

use allarm_types::config::MachineConfig;

fn main() {
    let m = MachineConfig::date2014();
    println!("# Table I: simulated system");
    println!(
        "cores                 {} @ {} GHz",
        m.num_cores, m.frequency_ghz
    );
    println!("block size            {} bytes", m.l2.line_bytes);
    println!(
        "L1I / L1D             {} kB {}-way / {} kB {}-way, {} access",
        m.l1i.size_bytes / 1024,
        m.l1i.ways,
        m.l1d.size_bytes / 1024,
        m.l1d.ways,
        m.l1d.access_latency
    );
    println!(
        "L2 (private, excl.)   {} kB {}-way, {} access",
        m.l2.size_bytes / 1024,
        m.l2.ways,
        m.l2.access_latency
    );
    println!(
        "probe filter          tracks {} kB of cached data, {}-way, {} access",
        m.probe_filter.coverage_bytes / 1024,
        m.probe_filter.ways,
        m.probe_filter.access_latency
    );
    println!(
        "DRAM per node         {} MB, {} access",
        m.dram.node_capacity_bytes / (1024 * 1024),
        m.dram.access_latency
    );
    println!(
        "network               {}x{} mesh, {} B flits, {} B control / {} B data msgs",
        m.noc.mesh_x, m.noc.mesh_y, m.noc.flit_bytes, m.noc.control_msg_bytes, m.noc.data_msg_bytes
    );
    println!(
        "link                  {} GB/s, {} latency",
        m.noc.link_bandwidth_bytes_per_ns, m.noc.link_latency
    );
    m.validate().expect("Table I configuration is valid");
}

//! The assembled machine: caches, network, DRAM and the address map.
//!
//! Two assemblies live here:
//!
//! * [`Machine`] — the single-threaded wiring of every hardware component
//!   except the directory controllers. It implements [`SystemAccess`] so a
//!   controller under unit test can probe caches, send messages and touch
//!   DRAM without borrow conflicts.
//! * [`ShardSystem`] — one shard's view of the machine in the parallel
//!   kernel: shared per-core caches behind locks, plus shard-private
//!   network-traffic and DRAM accounting. Every counter a shard accumulates
//!   is a commutative sum, so merging the shard views (in any fixed order)
//!   reconstructs exactly what a single-shard run would have counted.

use std::sync::Mutex;

use allarm_cache::{CoreCaches, LlcSlice, ProbeOutcome};
use allarm_coherence::SystemAccess;
use allarm_mem::DramModel;
use allarm_noc::{MessageClass, Network, NocStats};
use allarm_types::addr::LineAddr;
use allarm_types::config::MachineConfig;
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::topology::Topology;
use allarm_types::Nanos;

/// Every per-core and per-node hardware component other than the directory
/// controllers.
#[derive(Debug)]
pub struct Machine {
    caches: Vec<CoreCaches>,
    network: Network,
    dram: DramModel,
    topology: Topology,
    cache_latency: Nanos,
    l2_latency: Nanos,
}

impl Machine {
    /// Builds the machine described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation; validate explicitly
    /// with [`MachineConfig::validate`] to get an error instead.
    pub fn new(config: &MachineConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid machine configuration: {e}"));
        Machine {
            caches: (0..config.num_cores)
                .map(|_| CoreCaches::new(&config.l1d, &config.l2))
                .collect(),
            network: Network::new(config.noc),
            dram: DramModel::new(config.num_nodes() as usize, config.dram),
            topology: config.topology(),
            cache_latency: config.l1d.access_latency,
            l2_latency: config.l2.access_latency,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.caches.len()
    }

    /// Immutable access to a core's private hierarchy.
    pub fn caches(&self, core: CoreId) -> &CoreCaches {
        &self.caches[core.index()]
    }

    /// Mutable access to a core's private hierarchy.
    pub fn caches_mut(&mut self, core: CoreId) -> &mut CoreCaches {
        &mut self.caches[core.index()]
    }

    /// The on-chip network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The DRAM model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// L1 access latency.
    pub fn l1_latency(&self) -> Nanos {
        self.cache_latency
    }

    /// L2 access latency.
    pub fn l2_latency(&self) -> Nanos {
        self.l2_latency
    }

    /// The core ↔ node topology of this machine.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// The affinity domain of a core. With one core per node (the paper's
    /// configuration) this is the identity mapping; scaled machines map
    /// contiguous blocks of cores onto each node.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        self.topology.node_of_core(core)
    }

    /// A node's designated core — the one core per affinity domain the
    /// ALLARM policy is enabled for. With one core per node it is simply
    /// the inverse of [`Machine::node_of`].
    pub fn core_of(&self, node: NodeId) -> CoreId {
        self.topology.local_core_of(node)
    }
}

impl SystemAccess for Machine {
    fn probe_cache(
        &mut self,
        core: CoreId,
        line: LineAddr,
        downgrade: bool,
        invalidate: bool,
    ) -> ProbeOutcome {
        self.caches[core.index()].probe(line, downgrade, invalidate)
    }

    fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.send(src, dst, class)
    }

    fn message_latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.latency(src, dst, class)
    }

    fn dram_read(&mut self, node: NodeId) -> Nanos {
        self.dram.read(node)
    }

    fn dram_write(&mut self, node: NodeId) -> Nanos {
        self.dram.write(node)
    }

    fn node_of_core(&self, core: CoreId) -> NodeId {
        self.node_of(core)
    }

    fn local_core_of(&self, node: NodeId) -> CoreId {
        self.core_of(node)
    }

    fn num_cores(&self) -> usize {
        self.caches.len()
    }

    fn cache_access_latency(&self) -> Nanos {
        self.cache_latency
    }
}

/// Builds the lock-guarded per-core cache hierarchies the shards of one
/// simulation share.
pub(crate) fn shared_caches(config: &MachineConfig) -> Vec<Mutex<CoreCaches>> {
    (0..config.num_cores)
        .map(|_| Mutex::new(CoreCaches::new(&config.l1d, &config.l2)))
        .collect()
}

/// Builds the lock-guarded per-node LLC slices the shards of one simulation
/// share — one slice per node when the LLC is enabled, empty otherwise.
///
/// A slice is node-pinned: the core phase only ever touches a shard's own
/// nodes' slices, and the directory phase reaches remote slices through the
/// pure/commutative [`LlcSlice::probe`]/[`LlcSlice::invalidate`] paths, so
/// shard count cannot change what any slice observes.
pub(crate) fn shared_llc(config: &MachineConfig) -> Vec<Mutex<LlcSlice>> {
    if !config.llc.enabled {
        return Vec::new();
    }
    (0..config.num_nodes())
        .map(|_| Mutex::new(LlcSlice::new(&config.llc)))
        .collect()
}

/// One shard's machine access in the parallel kernel.
///
/// The per-core caches are shared across shards (a directory transaction
/// probes whichever cores hold its line, wherever they live), so they sit
/// behind per-core locks. The network and DRAM accounting is shard-private:
/// message latencies are pure functions of the immutable topology, traffic
/// counters are summed across shards at report time, and each DRAM channel
/// is only ever touched by the shard owning its home node.
///
/// Cross-shard determinism rests on the disjointness argument spelled out
/// in [`allarm_coherence::shard`]: concurrent shards touch the same *cache*
/// but never the same *line*, and the cache's probe-path mutations are
/// line-local, so their effects commute.
#[derive(Debug)]
pub(crate) struct ShardSystem<'a> {
    caches: &'a [Mutex<CoreCaches>],
    llc: &'a [Mutex<LlcSlice>],
    network: Network,
    dram: DramModel,
    topology: Topology,
    cache_latency: Nanos,
}

impl<'a> ShardSystem<'a> {
    /// Creates one shard's view over the shared caches and LLC slices.
    pub(crate) fn new(
        caches: &'a [Mutex<CoreCaches>],
        llc: &'a [Mutex<LlcSlice>],
        config: &MachineConfig,
    ) -> Self {
        ShardSystem {
            caches,
            llc,
            network: Network::new(config.noc),
            dram: DramModel::new(config.num_nodes() as usize, config.dram),
            topology: config.topology(),
            cache_latency: config.l1d.access_latency,
        }
    }

    /// Tears the view down into its accumulated statistics:
    /// `(network traffic, DRAM reads, DRAM writes)`.
    pub(crate) fn into_stats(self) -> (NocStats, u64, u64) {
        (
            self.network.stats().clone(),
            self.dram.total_reads(),
            self.dram.total_writes(),
        )
    }

    /// Mid-run copy of the accumulated statistics, for checkpoint capture
    /// without tearing the view down.
    pub(crate) fn stats_view(&self) -> (NocStats, u64, u64) {
        (
            self.network.stats().clone(),
            self.dram.total_reads(),
            self.dram.total_writes(),
        )
    }
}

impl SystemAccess for ShardSystem<'_> {
    fn probe_cache(
        &mut self,
        core: CoreId,
        line: LineAddr,
        downgrade: bool,
        invalidate: bool,
    ) -> ProbeOutcome {
        self.caches[core.index()]
            .lock()
            .expect("a cache lock holder panicked")
            .probe(line, downgrade, invalidate)
    }

    fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.send(src, dst, class)
    }

    fn message_latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.latency(src, dst, class)
    }

    fn dram_read(&mut self, node: NodeId) -> Nanos {
        self.dram.read(node)
    }

    fn dram_write(&mut self, node: NodeId) -> Nanos {
        self.dram.write(node)
    }

    fn node_of_core(&self, core: CoreId) -> NodeId {
        self.topology.node_of_core(core)
    }

    fn local_core_of(&self, node: NodeId) -> CoreId {
        self.topology.local_core_of(node)
    }

    fn num_cores(&self) -> usize {
        self.caches.len()
    }

    fn cache_access_latency(&self) -> Nanos {
        self.cache_latency
    }

    fn probe_llc(&mut self, node: NodeId, line: LineAddr, invalidate: bool) -> bool {
        if self.llc.is_empty() {
            return false;
        }
        let mut slice = self.llc[node.index()]
            .lock()
            .expect("an LLC slice lock holder panicked");
        if invalidate {
            slice.invalidate(line)
        } else {
            slice.probe(line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allarm_cache::CoherenceState;

    #[test]
    fn builds_the_table1_machine() {
        let machine = Machine::new(&MachineConfig::date2014());
        assert_eq!(machine.num_cores(), 16);
        assert_eq!(machine.l1_latency(), Nanos::new(1));
        assert_eq!(machine.network().topology().num_nodes(), 16);
    }

    #[test]
    fn core_node_mapping_is_identity_on_flat_machines() {
        let machine = Machine::new(&MachineConfig::small_test());
        for i in 0..4u16 {
            assert_eq!(machine.node_of(CoreId::new(i)), NodeId::new(i));
            assert_eq!(machine.core_of(NodeId::new(i)), CoreId::new(i));
            assert_eq!(machine.node_of_core(CoreId::new(i)), NodeId::new(i));
            assert_eq!(machine.local_core_of(NodeId::new(i)), CoreId::new(i));
        }
    }

    #[test]
    fn multicore_nodes_fold_cores_onto_shared_resources() {
        // The small_test machine with both cores on one node: a 1x2 mesh.
        let mut cfg = MachineConfig::small_test();
        cfg.cores_per_node = allarm_types::config::CoresPerNode(2);
        cfg.noc = allarm_types::config::NocConfig::mesh(1, 2);
        let machine = Machine::new(&cfg);
        assert_eq!(machine.num_cores(), 4);
        assert_eq!(machine.network().topology().num_nodes(), 2);
        assert_eq!(machine.node_of(CoreId::new(0)), NodeId::new(0));
        assert_eq!(machine.node_of(CoreId::new(1)), NodeId::new(0));
        assert_eq!(machine.node_of(CoreId::new(3)), NodeId::new(1));
        // The designated core of each node is its first.
        assert_eq!(machine.core_of(NodeId::new(1)), CoreId::new(2));
        assert_eq!(machine.topology().cores_per_node(), 2);
    }

    #[test]
    fn system_access_reaches_caches_network_and_dram() {
        let mut machine = Machine::new(&MachineConfig::small_test());
        let line = LineAddr::new(99);
        assert_eq!(
            machine.probe_cache(CoreId::new(1), line, false, false),
            ProbeOutcome::Miss
        );
        machine
            .caches_mut(CoreId::new(1))
            .fill(line, CoherenceState::Shared);
        assert!(matches!(
            machine.probe_cache(CoreId::new(1), line, false, false),
            ProbeOutcome::Hit { .. }
        ));
        let lat = machine.send(NodeId::new(0), NodeId::new(3), MessageClass::Request);
        assert!(lat > Nanos::ZERO);
        assert_eq!(machine.dram_read(NodeId::new(0)), Nanos::new(60));
        assert_eq!(machine.dram_write(NodeId::new(2)), Nanos::new(60));
        assert_eq!(machine.dram().total_accesses(), 2);
        assert_eq!(machine.network().stats().total_messages(), 1);
        assert_eq!(machine.cache_access_latency(), Nanos::new(1));
        assert_eq!(SystemAccess::num_cores(&machine), 4);
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn invalid_configuration_panics() {
        let mut cfg = MachineConfig::date2014();
        cfg.num_cores = 3;
        Machine::new(&cfg);
    }

    #[test]
    fn shard_system_reaches_shared_caches_and_private_accounting() {
        let cfg = MachineConfig::small_test();
        let caches = shared_caches(&cfg);
        let llc = shared_llc(&cfg);
        let mut sys = ShardSystem::new(&caches, &llc, &cfg);
        let line = LineAddr::new(42);
        assert_eq!(
            sys.probe_cache(CoreId::new(2), line, false, false),
            ProbeOutcome::Miss
        );
        caches[2]
            .lock()
            .unwrap()
            .fill(line, CoherenceState::Modified);
        assert!(matches!(
            sys.probe_cache(CoreId::new(2), line, false, false),
            ProbeOutcome::Hit { dirty: true, .. }
        ));
        sys.send(NodeId::new(0), NodeId::new(3), MessageClass::Data);
        sys.dram_read(NodeId::new(1));
        assert_eq!(sys.node_of_core(CoreId::new(3)), NodeId::new(3));
        assert_eq!(sys.local_core_of(NodeId::new(1)), CoreId::new(1));
        assert_eq!(SystemAccess::num_cores(&sys), 4);
        assert_eq!(sys.cache_access_latency(), Nanos::new(1));
        let (noc, reads, writes) = sys.into_stats();
        assert_eq!(noc.total_messages(), 1);
        assert_eq!((reads, writes), (1, 0));
    }

    #[test]
    fn llc_disabled_machines_have_no_slices_and_probes_miss() {
        let cfg = MachineConfig::small_test();
        assert!(!cfg.llc.enabled);
        let caches = shared_caches(&cfg);
        let llc = shared_llc(&cfg);
        assert!(llc.is_empty());
        let mut sys = ShardSystem::new(&caches, &llc, &cfg);
        assert!(!sys.probe_llc(NodeId::new(0), LineAddr::new(7), false));
        assert!(!sys.probe_llc(NodeId::new(0), LineAddr::new(7), true));
    }

    #[test]
    fn llc_probe_and_invalidate_reach_the_named_node_slice() {
        let mut cfg = MachineConfig::small_test();
        cfg.llc = allarm_types::config::LlcConfig::shared_slice(64 * 1024, 16);
        let caches = shared_caches(&cfg);
        let llc = shared_llc(&cfg);
        assert_eq!(llc.len(), cfg.num_nodes() as usize);
        let line = LineAddr::new(11);
        llc[2].lock().unwrap().fill(line);
        let mut sys = ShardSystem::new(&caches, &llc, &cfg);
        assert!(!sys.probe_llc(NodeId::new(1), line, false));
        assert!(sys.probe_llc(NodeId::new(2), line, false));
        // A pure probe leaves the line resident; an invalidate removes it.
        assert!(sys.probe_llc(NodeId::new(2), line, true));
        assert!(!sys.probe_llc(NodeId::new(2), line, false));
        assert!(llc[2].lock().unwrap().is_empty());
    }
}

//! The assembled machine: caches, network, DRAM and the address map.
//!
//! [`Machine`] owns every hardware component *except* the directory
//! controllers, and implements [`SystemAccess`] so the controllers (held
//! separately by the [`crate::Simulator`]) can probe caches, send messages
//! and touch DRAM without borrow conflicts.

use allarm_cache::{CoreCaches, ProbeOutcome};
use allarm_coherence::SystemAccess;
use allarm_mem::DramModel;
use allarm_noc::{MessageClass, Network};
use allarm_types::addr::LineAddr;
use allarm_types::config::MachineConfig;
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::Nanos;

/// Every per-core and per-node hardware component other than the directory
/// controllers.
#[derive(Debug)]
pub struct Machine {
    caches: Vec<CoreCaches>,
    network: Network,
    dram: DramModel,
    cache_latency: Nanos,
    l2_latency: Nanos,
}

impl Machine {
    /// Builds the machine described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation; validate explicitly
    /// with [`MachineConfig::validate`] to get an error instead.
    pub fn new(config: &MachineConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid machine configuration: {e}"));
        Machine {
            caches: (0..config.num_cores)
                .map(|_| CoreCaches::new(&config.l1d, &config.l2))
                .collect(),
            network: Network::new(config.noc),
            dram: DramModel::new(config.num_nodes() as usize, config.dram),
            cache_latency: config.l1d.access_latency,
            l2_latency: config.l2.access_latency,
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.caches.len()
    }

    /// Immutable access to a core's private hierarchy.
    pub fn caches(&self, core: CoreId) -> &CoreCaches {
        &self.caches[core.index()]
    }

    /// Mutable access to a core's private hierarchy.
    pub fn caches_mut(&mut self, core: CoreId) -> &mut CoreCaches {
        &mut self.caches[core.index()]
    }

    /// The on-chip network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The DRAM model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// L1 access latency.
    pub fn l1_latency(&self) -> Nanos {
        self.cache_latency
    }

    /// L2 access latency.
    pub fn l2_latency(&self) -> Nanos {
        self.l2_latency
    }

    /// The affinity domain of a core. With one core per node (the paper's
    /// configuration) this is the identity mapping.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        NodeId::new(core.raw())
    }

    /// The single local core of a node (the inverse of [`Machine::node_of`]).
    pub fn core_of(&self, node: NodeId) -> CoreId {
        CoreId::new(node.raw())
    }
}

impl SystemAccess for Machine {
    fn probe_cache(
        &mut self,
        core: CoreId,
        line: LineAddr,
        downgrade: bool,
        invalidate: bool,
    ) -> ProbeOutcome {
        self.caches[core.index()].probe(line, downgrade, invalidate)
    }

    fn send(&mut self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.send(src, dst, class)
    }

    fn message_latency(&self, src: NodeId, dst: NodeId, class: MessageClass) -> Nanos {
        self.network.latency(src, dst, class)
    }

    fn dram_read(&mut self, node: NodeId) -> Nanos {
        self.dram.read(node)
    }

    fn dram_write(&mut self, node: NodeId) -> Nanos {
        self.dram.write(node)
    }

    fn node_of_core(&self, core: CoreId) -> NodeId {
        self.node_of(core)
    }

    fn local_core_of(&self, node: NodeId) -> CoreId {
        self.core_of(node)
    }

    fn num_cores(&self) -> usize {
        self.caches.len()
    }

    fn cache_access_latency(&self) -> Nanos {
        self.cache_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allarm_cache::CoherenceState;

    #[test]
    fn builds_the_table1_machine() {
        let machine = Machine::new(&MachineConfig::date2014());
        assert_eq!(machine.num_cores(), 16);
        assert_eq!(machine.l1_latency(), Nanos::new(1));
        assert_eq!(machine.network().topology().num_nodes(), 16);
    }

    #[test]
    fn core_node_mapping_is_identity() {
        let machine = Machine::new(&MachineConfig::small_test());
        for i in 0..4u16 {
            assert_eq!(machine.node_of(CoreId::new(i)), NodeId::new(i));
            assert_eq!(machine.core_of(NodeId::new(i)), CoreId::new(i));
            assert_eq!(machine.node_of_core(CoreId::new(i)), NodeId::new(i));
            assert_eq!(machine.local_core_of(NodeId::new(i)), CoreId::new(i));
        }
    }

    #[test]
    fn system_access_reaches_caches_network_and_dram() {
        let mut machine = Machine::new(&MachineConfig::small_test());
        let line = LineAddr::new(99);
        assert_eq!(
            machine.probe_cache(CoreId::new(1), line, false, false),
            ProbeOutcome::Miss
        );
        machine
            .caches_mut(CoreId::new(1))
            .fill(line, CoherenceState::Shared);
        assert!(matches!(
            machine.probe_cache(CoreId::new(1), line, false, false),
            ProbeOutcome::Hit { .. }
        ));
        let lat = machine.send(NodeId::new(0), NodeId::new(3), MessageClass::Request);
        assert!(lat > Nanos::ZERO);
        assert_eq!(machine.dram_read(NodeId::new(0)), Nanos::new(60));
        assert_eq!(machine.dram_write(NodeId::new(2)), Nanos::new(60));
        assert_eq!(machine.dram().total_accesses(), 2);
        assert_eq!(machine.network().stats().total_messages(), 1);
        assert_eq!(machine.cache_access_latency(), Nanos::new(1));
        assert_eq!(SystemAccess::num_cores(&machine), 4);
    }

    #[test]
    #[should_panic(expected = "invalid machine configuration")]
    fn invalid_configuration_panics() {
        let mut cfg = MachineConfig::date2014();
        cfg.num_cores = 3;
        Machine::new(&cfg);
    }
}

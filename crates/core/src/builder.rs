//! Validating builder for configured simulators.
//!
//! [`SimulationBuilder`] is the only way to construct a [`Simulator`]: it
//! collects the machine, policies and energy model (from a [`Scenario`] or
//! programmatically), validates the combination once, and hands out a
//! ready-to-run simulator. Replaces the old positional
//! `Simulator::new(MachineConfig, AllocationPolicy)` constructor, which
//! could build unvalidated simulators that only failed deep inside `run`.

use allarm_coherence::AllocationPolicy;
use allarm_energy::EnergyModel;
use allarm_mem::NumaPolicy;
use allarm_types::config::MachineConfig;
use allarm_types::error::ConfigError;

use crate::scenario::Scenario;
use crate::simulator::Simulator;

/// Step-by-step construction of a validated [`Simulator`].
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, MachineConfig, SimulationBuilder};
/// use allarm_mem::NumaPolicy;
/// use allarm_workloads::{Benchmark, TraceGenerator};
///
/// let simulator = SimulationBuilder::new(MachineConfig::small_test())
///     .policy(AllocationPolicy::Allarm)
///     .numa_policy(NumaPolicy::FirstTouch)
///     .build()
///     .expect("valid configuration");
///
/// let workload = TraceGenerator::new(4, 500, 1).generate(Benchmark::Barnes);
/// let report = simulator.run(&workload);
/// assert_eq!(report.total_accesses as usize, workload.total_accesses());
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    machine: MachineConfig,
    policy: AllocationPolicy,
    numa_policy: NumaPolicy,
    energy_model: EnergyModel,
    sim_threads: usize,
}

impl SimulationBuilder {
    /// Starts a builder for `machine` with the defaults the paper uses:
    /// baseline allocation, first-touch NUMA placement, the 32 nm energy
    /// model.
    pub fn new(machine: MachineConfig) -> Self {
        SimulationBuilder {
            machine,
            policy: AllocationPolicy::default(),
            numa_policy: NumaPolicy::default(),
            energy_model: EnergyModel::default(),
            sim_threads: 1,
        }
    }

    /// Starts a builder from a declarative [`Scenario`], validating it.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the scenario fails
    /// [`Scenario::validate`].
    pub fn from_scenario(scenario: &Scenario) -> Result<Self, ConfigError> {
        scenario.validate()?;
        Ok(SimulationBuilder {
            machine: scenario.machine,
            policy: scenario.policy,
            numa_policy: scenario.numa_policy,
            energy_model: EnergyModel::default(),
            sim_threads: scenario.sim_threads.get(),
        })
    }

    /// Sets the probe-filter allocation policy.
    pub fn policy(mut self, policy: AllocationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the NUMA page-placement policy.
    pub fn numa_policy(mut self, numa_policy: NumaPolicy) -> Self {
        self.numa_policy = numa_policy;
        self
    }

    /// Sets the per-event energy model.
    pub fn energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Sets the number of worker threads one simulation run shards across
    /// (`0`: one worker per available hardware thread). Reports are
    /// byte-identical for every value — the sharded kernel merges
    /// cross-shard coherence traffic in a deterministic order — so this is
    /// purely a host-performance knob. Defaults to `1` (serial).
    pub fn sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads;
        self
    }

    /// Validates the machine configuration and produces the simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid field.
    pub fn build(self) -> Result<Simulator, ConfigError> {
        self.machine.validate()?;
        Ok(Simulator::from_parts(
            self.machine,
            self.policy,
            self.numa_policy,
            self.energy_model,
            self.sim_threads,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use allarm_workloads::Benchmark;

    #[test]
    fn builder_defaults_match_the_paper() {
        let sim = SimulationBuilder::new(MachineConfig::small_test())
            .build()
            .unwrap();
        assert_eq!(sim.policy(), AllocationPolicy::Baseline);
        assert_eq!(sim.numa_policy(), NumaPolicy::FirstTouch);
    }

    #[test]
    fn builder_applies_overrides() {
        let sim = SimulationBuilder::new(MachineConfig::small_test())
            .policy(AllocationPolicy::Allarm)
            .numa_policy(NumaPolicy::Interleaved)
            .energy_model(EnergyModel::mcpat_32nm())
            .sim_threads(4)
            .build()
            .unwrap();
        assert_eq!(sim.policy(), AllocationPolicy::Allarm);
        assert_eq!(sim.numa_policy(), NumaPolicy::Interleaved);
        assert_eq!(sim.sim_threads(), 4);
    }

    #[test]
    fn invalid_machines_fail_at_build_time() {
        let mut machine = MachineConfig::small_test();
        machine.num_cores = 3; // mesh is 2x2
        let err = SimulationBuilder::new(machine).build().unwrap_err();
        assert_eq!(err.field(), "noc.mesh");
    }

    #[test]
    fn from_scenario_validates_first() {
        let good = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Allarm);
        let sim = SimulationBuilder::from_scenario(&good)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(sim.policy(), AllocationPolicy::Allarm);

        let mut bad = good;
        bad.machine.l2.size_bytes = 0;
        assert!(SimulationBuilder::from_scenario(&bad).is_err());
    }
}

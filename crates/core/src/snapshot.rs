//! Versioned on-disk simulator snapshots: mid-run checkpoint, restore and
//! fork-from-warm.
//!
//! A [`SimSnapshot`] is the complete frozen state of one simulation at an
//! end-of-round boundary of the sharded kernel — every cache way, probe-
//! filter slot, directory counter, page mapping, core clock, miss window
//! and in-flight reply — plus a header identifying the machine and the
//! workload it belongs to. Snapshots are **canonical**: the bytes do not
//! depend on `sim_threads`, and a snapshot taken at N workers restores
//! onto any worker count with byte-identical downstream reports.
//!
//! # On-disk format
//!
//! The same versioning discipline as the `ALLARMTR` trace format, with a
//! per-section version map so individual sections can evolve without
//! invalidating the rest:
//!
//! ```text
//! magic   8 B   b"ALLARMSN"
//! version u16   file-format version (currently 1)
//! count   u16   number of sections
//! then per section:
//!   id      u16   section identifier
//!   version u16   section version
//!   len     u64   payload length in bytes
//!   payload len B
//!   check   u64   FNV-1a of the payload
//! ```
//!
//! All integers are little-endian and fixed-width. Every reader error is a
//! typed [`SnapError`] naming the offending section; readers never panic
//! on corrupt input and never allocate more than the file could justify.
//!
//! # Examples
//!
//! ```
//! use allarm_core::{AllocationPolicy, MachineConfig, SimulationBuilder};
//! use allarm_core::snapshot::SimSnapshot;
//! use allarm_workloads::{Benchmark, TraceGenerator};
//!
//! let workload = TraceGenerator::new(4, 2_000, 7).generate(Benchmark::Barnes);
//! let sim = SimulationBuilder::new(MachineConfig::small_test())
//!     .build()
//!     .unwrap();
//! // Stop at ~half the run, round-trip the snapshot through bytes, and
//! // finish from the restored state: the report is byte-identical to an
//! // uninterrupted run.
//! let snap = sim.run_until(&workload, 4_000);
//! let snap = SimSnapshot::from_bytes(&snap.to_bytes()).unwrap();
//! let resumed = sim.resume(&snap, &workload);
//! assert_eq!(resumed, sim.run(&workload));
//! ```

use std::fmt;
use std::io::Write;
use std::path::Path;

use crate::sharded::{KernelState, Pending, ThreadState};
use allarm_cache::{CoherenceState, CoreCachesState, EvictedLine, SetAssocState, WayState};
use allarm_coherence::{
    CoherenceReply, DirectoryControllerState, DirectoryNodeState, DirectoryStats, PfEntry,
    PfSlotState, PfStats, ProbeFilterState, SharerSet,
};
use allarm_engine::MergeKey;
use allarm_mem::{NumaAllocatorState, NumaStats, PageEntryState};
use allarm_noc::{MessageClass, NocStats, NocStatsExport};
use allarm_types::addr::{LineAddr, PageAddr};
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::stats::Counter;
use allarm_types::Nanos;

/// The snapshot file-format version this build reads and writes.
pub const SNAP_VERSION: u16 = 1;

/// Magic bytes opening a snapshot file.
const MAGIC: &[u8; 8] = b"ALLARMSN";

/// Section identifiers. The id is stable forever; bumping a section's
/// *version* is how its payload evolves.
const SEC_HEADER: u16 = 0;
const SEC_CACHES: u16 = 1;
const SEC_DIRS: u16 = 2;
const SEC_ALLOC: u16 = 3;
const SEC_CORES: u16 = 4;
const SEC_REPLIES: u16 = 5;
const SEC_KERNEL: u16 = 6;
/// Per-node shared LLC slice state. Written only when the machine's LLC is
/// enabled, so LLC-less snapshots stay byte-identical to the pre-LLC
/// format.
const SEC_LLC: u16 = 7;

/// Per-section payload versions this build writes (and the only ones it
/// reads).
const SECTION_VERSIONS: [(u16, u16); 8] = [
    (SEC_HEADER, 1),
    (SEC_CACHES, 1),
    (SEC_DIRS, 1),
    (SEC_ALLOC, 1),
    (SEC_CORES, 1),
    (SEC_REPLIES, 1),
    (SEC_KERNEL, 1),
    (SEC_LLC, 1),
];

/// Cap on embedded strings while parsing untrusted files.
const MAX_STRING_BYTES: u64 = 4096;

fn section_name(id: u16) -> &'static str {
    match id {
        SEC_HEADER => "header",
        SEC_CACHES => "caches",
        SEC_DIRS => "directories",
        SEC_ALLOC => "allocator",
        SEC_CORES => "cores",
        SEC_REPLIES => "replies",
        SEC_KERNEL => "kernel",
        SEC_LLC => "llc",
        _ => "unknown",
    }
}

/// A snapshot read/write failure: what went wrong and, when the failure is
/// inside a section, which section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    msg: String,
    section: Option<&'static str>,
}

impl SnapError {
    fn new(msg: impl Into<String>) -> Self {
        SnapError {
            msg: msg.into(),
            section: None,
        }
    }

    fn in_section(section: &'static str, msg: impl Into<String>) -> Self {
        SnapError {
            msg: msg.into(),
            section: Some(section),
        }
    }

    /// The section the error occurred in, if it was inside one.
    pub fn section(&self) -> Option<&'static str> {
        self.section
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.section {
            Some(section) => write!(f, "snapshot section '{section}': {}", self.msg),
            None => write!(f, "snapshot: {}", self.msg),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::new(format!("i/o error: {e}"))
    }
}

/// 64-bit FNV-1a, the same hash the trace format and workload checksums
/// use; here it integrity-checks each section payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fingerprint of a (machine, allocation policy, NUMA policy) triple, used
/// to refuse restoring a snapshot onto a differently-configured simulator.
/// FNV-1a over the `Debug` rendering: every field of the configuration
/// participates, and no serialisation machinery is needed.
pub(crate) fn config_fingerprint(
    config: &allarm_types::config::MachineConfig,
    policy: allarm_coherence::AllocationPolicy,
    numa_policy: allarm_mem::NumaPolicy,
) -> u64 {
    fnv1a(format!("{config:?}|{policy:?}|{numa_policy:?}").as_bytes())
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// Everything a snapshot declares about itself: enough to answer "what
/// machine, which workload, how far along" without decoding the state
/// sections. [`read_header`] returns exactly this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapHeader {
    /// Fingerprint of the machine configuration + policies the snapshot
    /// was taken under (see the restore checks in `Simulator::resume`).
    pub config_fingerprint: u64,
    /// Core count of the machine.
    pub num_cores: u32,
    /// Node count of the machine.
    pub num_nodes: u32,
    /// Allocation-policy name (informational; the fingerprint is the
    /// authority).
    pub policy: String,
    /// Workload name the snapshot was taken from.
    pub workload_name: String,
    /// [`allarm_workloads::Workload::checksum`] of that workload.
    pub workload_checksum: u64,
    /// Total accesses of that workload.
    pub workload_total: u64,
    /// Accesses already replayed at the snapshot point.
    pub accesses_done: u64,
    /// For batch checkpoints: the number of result rows already emitted
    /// when the snapshot was taken (`u64::MAX` = not a batch checkpoint).
    pub row_index: u64,
    /// For batch checkpoints: the scenario name being executed (empty =
    /// not a batch checkpoint).
    pub scenario: String,
}

impl SnapHeader {
    /// True if this snapshot was taken by a batch run (`scenario_run
    /// --checkpoint-every`) and carries a resume cursor.
    pub fn is_batch_checkpoint(&self) -> bool {
        self.row_index != u64::MAX
    }
}

// ---------------------------------------------------------------------------
// The snapshot
// ---------------------------------------------------------------------------

/// One simulation's complete frozen state plus its identifying header.
///
/// Constructed by `Simulator::run_until` / `run_with_checkpoints`, consumed
/// by `Simulator::resume` / `resume_forked`; serialized with
/// [`SimSnapshot::to_bytes`] / [`SimSnapshot::write_to`] and read back with
/// [`SimSnapshot::from_bytes`] / [`SimSnapshot::read_from`].
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    header: SnapHeader,
    state: KernelState,
}

impl SimSnapshot {
    pub(crate) fn from_kernel(header: SnapHeader, state: KernelState) -> Self {
        SimSnapshot { header, state }
    }

    pub(crate) fn state(&self) -> &KernelState {
        &self.state
    }

    /// The snapshot's identifying header.
    pub fn header(&self) -> &SnapHeader {
        &self.header
    }

    /// Accesses already replayed at the snapshot point.
    pub fn accesses_done(&self) -> u64 {
        self.header.accesses_done
    }

    /// Tags the snapshot as a batch checkpoint: `row_index` result rows
    /// were already emitted for `scenario` when it was taken.
    pub fn with_row(mut self, row_index: u64, scenario: &str) -> Self {
        self.header.row_index = row_index;
        self.header.scenario = scenario.to_string();
        self
    }

    /// Serializes the snapshot into the versioned section format. The LLC
    /// section is written only when the machine has slices, so snapshots
    /// of LLC-less machines are byte-identical to the pre-LLC format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sections: Vec<(u16, Vec<u8>)> = vec![
            (SEC_HEADER, encode_header(&self.header)),
            (SEC_CACHES, encode_caches(&self.state.caches)),
            (SEC_DIRS, encode_dirs(&self.state.dirs)),
            (SEC_ALLOC, encode_alloc(&self.state.allocator)),
            (SEC_CORES, encode_threads(&self.state.threads)),
            (SEC_REPLIES, encode_replies(&self.state.replies)),
            (SEC_KERNEL, encode_kernel(&self.state)),
        ];
        if !self.state.llc.is_empty() {
            sections.push((SEC_LLC, encode_llc(&self.state.llc)));
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u16).to_le_bytes());
        for (id, payload) in sections {
            let version = SECTION_VERSIONS
                .iter()
                .find(|(sid, _)| *sid == id)
                .map(|(_, v)| *v)
                .expect("every written section has a declared version");
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&payload);
            out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        }
        out
    }

    /// Parses a snapshot from bytes, verifying the magic, the file and
    /// per-section versions, and every section checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] naming the offending section for unknown
    /// versions, checksum mismatches, truncation, or structurally invalid
    /// payloads. The input is never partially applied anywhere.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapError> {
        let sections = split_sections(bytes)?;
        let mut header = None;
        let mut caches = None;
        let mut dirs = None;
        let mut alloc = None;
        let mut threads = None;
        let mut replies = None;
        let mut kernel = None;
        let mut llc = None;
        for (id, _, payload) in &sections {
            match *id {
                SEC_HEADER => header = Some(decode_header(payload)?),
                SEC_CACHES => caches = Some(decode_caches(payload)?),
                SEC_DIRS => dirs = Some(decode_dirs(payload)?),
                SEC_ALLOC => alloc = Some(decode_alloc(payload)?),
                SEC_CORES => threads = Some(decode_threads(payload)?),
                SEC_REPLIES => replies = Some(decode_replies(payload)?),
                SEC_KERNEL => kernel = Some(decode_kernel(payload)?),
                SEC_LLC => llc = Some(decode_llc(payload)?),
                other => {
                    return Err(SnapError::new(format!(
                        "unknown section id {other} (a newer writer?)"
                    )))
                }
            }
        }
        let missing = |what: &'static str| SnapError::new(format!("missing section '{what}'"));
        let header = header.ok_or_else(|| missing("header"))?;
        let (round_horizon, counters, noc) = kernel.ok_or_else(|| missing("kernel"))?;
        let state = KernelState {
            threads: threads.ok_or_else(|| missing("cores"))?,
            dirs: dirs.ok_or_else(|| missing("directories"))?,
            caches: caches.ok_or_else(|| missing("caches"))?,
            // Absent section == LLC disabled; the two encode identically.
            llc: llc.unwrap_or_default(),
            allocator: alloc.ok_or_else(|| missing("allocator"))?,
            replies: replies.ok_or_else(|| missing("replies"))?,
            round_horizon,
            accesses: counters[0],
            rounds: counters[1],
            events_merged: counters[2],
            max_window: counters[3] as u32,
            noc,
            dram_reads: counters[4],
            dram_writes: counters[5],
        };
        validate_consistency(&header, &state)?;
        Ok(SimSnapshot { header, state })
    }

    /// Writes the snapshot to `path` atomically: the bytes land in a
    /// sibling `.tmp` file first and are renamed into place, so a crash
    /// mid-write never leaves a truncated snapshot under the final name.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] wrapping any I/O failure.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), SnapError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&self.to_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and fully validates a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] for unreadable files and everything
    /// [`SimSnapshot::from_bytes`] rejects.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self, SnapError> {
        let bytes = std::fs::read(path)?;
        SimSnapshot::from_bytes(&bytes)
    }
}

/// Reads and validates just the header of a snapshot file: the magic, the
/// file version, every section's frame and checksum, and the header
/// payload — but no state section is decoded.
///
/// # Errors
///
/// Returns a [`SnapError`] for unreadable files, bad magic, unsupported
/// versions, or a corrupt/missing header section.
pub fn read_header(path: impl AsRef<Path>) -> Result<SnapHeader, SnapError> {
    let bytes = std::fs::read(path)?;
    let sections = split_sections(&bytes)?;
    for (id, _, payload) in &sections {
        if *id == SEC_HEADER {
            return decode_header(payload);
        }
    }
    Err(SnapError::new("missing section 'header'"))
}

/// One row of a snapshot file's section table, as reported by
/// [`read_section_table`]: enough for an inspection tool to list what the
/// file contains without decoding any state payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// The section identifier.
    pub id: u16,
    /// The section's human name (`"llc"`, `"caches"`, …; `"unknown"` for
    /// ids this build does not know).
    pub name: &'static str,
    /// The payload version the writer declared.
    pub version: u16,
    /// Payload length in bytes.
    pub len: u64,
}

/// Reads and validates a snapshot file's section table: every frame and
/// checksum is checked, but no state section is decoded.
///
/// # Errors
///
/// Returns a [`SnapError`] for unreadable files and everything
/// [`SimSnapshot::from_bytes`] would reject at the framing layer.
pub fn read_section_table(path: impl AsRef<Path>) -> Result<Vec<SectionInfo>, SnapError> {
    let bytes = std::fs::read(path)?;
    Ok(split_sections(&bytes)?
        .into_iter()
        .map(|(id, version, payload)| SectionInfo {
            id,
            name: section_name(id),
            version,
            len: payload.len() as u64,
        })
        .collect())
}

/// Splits a snapshot byte stream into `(id, version, payload)` sections,
/// verifying the magic, the file version, each section's declared version,
/// frame bounds and checksum.
#[allow(clippy::type_complexity)]
fn split_sections(bytes: &[u8]) -> Result<Vec<(u16, u16, Vec<u8>)>, SnapError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(SnapError::new("file too short for a snapshot header"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapError::new("bad magic: not an ALLARMSN snapshot file"));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != SNAP_VERSION {
        return Err(SnapError::new(format!(
            "unsupported snapshot version {version} (this build reads version {SNAP_VERSION})"
        )));
    }
    let count = u16::from_le_bytes([bytes[10], bytes[11]]) as usize;
    let mut pos = 12;
    let mut sections = Vec::new();
    for _ in 0..count {
        if bytes.len() - pos < 12 {
            return Err(SnapError::new("truncated section frame"));
        }
        let id = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
        let sec_version = u16::from_le_bytes([bytes[pos + 2], bytes[pos + 3]]);
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        pos += 12;
        let name = section_name(id);
        if let Some((_, expected)) = SECTION_VERSIONS.iter().find(|(sid, _)| *sid == id) {
            if sec_version != *expected {
                return Err(SnapError::in_section(
                    name,
                    format!(
                        "unsupported section version {sec_version} \
                         (this build reads version {expected})"
                    ),
                ));
            }
        }
        let len = usize::try_from(len)
            .ok()
            .filter(|l| bytes.len() - pos >= l + 8)
            .ok_or_else(|| SnapError::in_section(name, "declared length exceeds the file"))?;
        let payload = &bytes[pos..pos + len];
        pos += len;
        let check = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        if fnv1a(payload) != check {
            return Err(SnapError::in_section(
                name,
                "checksum mismatch (corrupt payload)",
            ));
        }
        if sections.iter().any(|(sid, _, _)| *sid == id) {
            return Err(SnapError::in_section(name, "duplicate section"));
        }
        sections.push((id, sec_version, payload.to_vec()));
    }
    if pos != bytes.len() {
        return Err(SnapError::new("trailing bytes after the last section"));
    }
    Ok(sections)
}

/// Cross-section sanity: the header's machine shape must match the state
/// sections, so a restore can trust either.
fn validate_consistency(header: &SnapHeader, state: &KernelState) -> Result<(), SnapError> {
    if state.caches.len() != header.num_cores as usize {
        return Err(SnapError::in_section(
            "caches",
            format!(
                "{} per-core entries but the header declares {} cores",
                state.caches.len(),
                header.num_cores
            ),
        ));
    }
    if state.dirs.len() != header.num_nodes as usize {
        return Err(SnapError::in_section(
            "directories",
            format!(
                "{} per-node entries but the header declares {} nodes",
                state.dirs.len(),
                header.num_nodes
            ),
        ));
    }
    if !state.llc.is_empty() && state.llc.len() != header.num_nodes as usize {
        return Err(SnapError::in_section(
            "llc",
            format!(
                "{} per-node slices but the header declares {} nodes",
                state.llc.len(),
                header.num_nodes
            ),
        ));
    }
    for (i, t) in state.threads.iter().enumerate() {
        if t.thread != i {
            return Err(SnapError::in_section(
                "cores",
                format!("thread entries out of order at index {i}"),
            ));
        }
        if t.core.index() >= header.num_cores as usize {
            return Err(SnapError::in_section(
                "cores",
                format!("thread {i} pinned to out-of-range core {}", t.core),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new() -> Self {
        Enc(Vec::new())
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn counter(&mut self, c: Counter) {
        self.u64(c.get());
    }
    fn finish(self) -> Vec<u8> {
        self.0
    }
}

/// A bounds-checked little-endian reader over one section payload. Every
/// failure carries the section name.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Dec {
            buf,
            pos: 0,
            section,
        }
    }

    fn err(&self, msg: impl Into<String>) -> SnapError {
        SnapError::in_section(self.section, msg)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "truncated payload: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an element count declared as u32 and sanity-checks it against
    /// the bytes actually remaining (each element needs at least
    /// `elem_min` bytes), so a corrupt count cannot demand an absurd
    /// allocation.
    fn count32(&mut self, elem_min: usize, what: &str) -> Result<usize, SnapError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(elem_min) > self.remaining() {
            return Err(self.err(format!(
                "{what} count {n} exceeds what the payload could hold"
            )));
        }
        Ok(n)
    }

    /// As [`Dec::count32`] for u64-declared counts.
    fn count64(&mut self, elem_min: usize, what: &str) -> Result<usize, SnapError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| self.err(format!("{what} count overflows")))?;
        if n.saturating_mul(elem_min) > self.remaining() {
            return Err(self.err(format!(
                "{what} count {n} exceeds what the payload could hold"
            )));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, SnapError> {
        let len = self.u64()?;
        if len > MAX_STRING_BYTES {
            return Err(self.err(format!("string of {len} bytes exceeds the cap")));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("string is not valid UTF-8"))
    }

    fn counter(&mut self) -> Result<Counter, SnapError> {
        Ok(Counter::from(self.u64()?))
    }

    fn nanos(&mut self) -> Result<Nanos, SnapError> {
        Ok(Nanos::new(self.u64()?))
    }

    fn done(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(self.err(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

fn encode_coherence_state(state: CoherenceState) -> u8 {
    match state {
        CoherenceState::Modified => 0,
        CoherenceState::Owned => 1,
        CoherenceState::Exclusive => 2,
        CoherenceState::Shared => 3,
        CoherenceState::Invalid => 4,
    }
}

fn decode_coherence_state(d: &mut Dec<'_>) -> Result<CoherenceState, SnapError> {
    match d.u8()? {
        0 => Ok(CoherenceState::Modified),
        1 => Ok(CoherenceState::Owned),
        2 => Ok(CoherenceState::Exclusive),
        3 => Ok(CoherenceState::Shared),
        4 => Ok(CoherenceState::Invalid),
        other => Err(d.err(format!("invalid coherence state {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------------

fn encode_header(h: &SnapHeader) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(h.config_fingerprint);
    e.u32(h.num_cores);
    e.u32(h.num_nodes);
    e.str(&h.policy);
    e.str(&h.workload_name);
    e.u64(h.workload_checksum);
    e.u64(h.workload_total);
    e.u64(h.accesses_done);
    e.u64(h.row_index);
    e.str(&h.scenario);
    e.finish()
}

fn decode_header(payload: &[u8]) -> Result<SnapHeader, SnapError> {
    let mut d = Dec::new(payload, "header");
    let header = SnapHeader {
        config_fingerprint: d.u64()?,
        num_cores: d.u32()?,
        num_nodes: d.u32()?,
        policy: d.str()?,
        workload_name: d.str()?,
        workload_checksum: d.u64()?,
        workload_total: d.u64()?,
        accesses_done: d.u64()?,
        row_index: d.u64()?,
        scenario: d.str()?,
    };
    d.done()?;
    Ok(header)
}

fn encode_set_assoc(e: &mut Enc, s: &SetAssocState) {
    e.u32(s.sets.len() as u32);
    e.u64(s.tick);
    e.counter(s.stats.hits);
    e.counter(s.stats.misses);
    e.counter(s.stats.evictions);
    e.counter(s.stats.invalidations);
    e.counter(s.stats.writebacks);
    for ways in &s.sets {
        e.u16(ways.len() as u16);
        for w in ways {
            e.u64(w.addr.raw());
            e.u8(encode_coherence_state(w.state));
            e.u64(w.last_touch);
            e.u64(w.inserted);
        }
    }
}

fn decode_set_assoc(d: &mut Dec<'_>) -> Result<SetAssocState, SnapError> {
    let num_sets = d.count32(2, "cache set")?;
    let tick = d.u64()?;
    let stats = allarm_cache::CacheStats {
        hits: d.counter()?,
        misses: d.counter()?,
        evictions: d.counter()?,
        invalidations: d.counter()?,
        writebacks: d.counter()?,
    };
    let mut sets = Vec::with_capacity(num_sets);
    for _ in 0..num_sets {
        let ways = d.u16()? as usize;
        if ways.saturating_mul(25) > d.remaining() {
            return Err(d.err(format!("way count {ways} exceeds the payload")));
        }
        let mut set = Vec::with_capacity(ways);
        for _ in 0..ways {
            let addr = LineAddr::new(d.u64()?);
            let state = decode_coherence_state(d)?;
            set.push(WayState {
                addr,
                state,
                last_touch: d.u64()?,
                inserted: d.u64()?,
            });
        }
        sets.push(set);
    }
    Ok(SetAssocState { sets, tick, stats })
}

fn encode_caches(caches: &[CoreCachesState]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(caches.len() as u32);
    for c in caches {
        encode_set_assoc(&mut e, &c.l1d);
        encode_set_assoc(&mut e, &c.l2);
        e.u32(c.pending_victims.len() as u32);
        for v in &c.pending_victims {
            e.u64(v.addr.raw());
            e.u8(encode_coherence_state(v.state));
        }
    }
    e.finish()
}

fn decode_caches(payload: &[u8]) -> Result<Vec<CoreCachesState>, SnapError> {
    let mut d = Dec::new(payload, "caches");
    let n = d.count32(2, "core")?;
    let mut caches = Vec::with_capacity(n);
    for _ in 0..n {
        let l1d = decode_set_assoc(&mut d)?;
        let l2 = decode_set_assoc(&mut d)?;
        let victims = d.count32(9, "pending victim")?;
        let mut pending_victims = Vec::with_capacity(victims);
        for _ in 0..victims {
            let addr = LineAddr::new(d.u64()?);
            let state = decode_coherence_state(&mut d)?;
            pending_victims.push(EvictedLine { addr, state });
        }
        caches.push(CoreCachesState {
            l1d,
            l2,
            pending_victims,
        });
    }
    d.done()?;
    Ok(caches)
}

fn encode_llc(slices: &[SetAssocState]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(slices.len() as u32);
    for s in slices {
        encode_set_assoc(&mut e, s);
    }
    e.finish()
}

fn decode_llc(payload: &[u8]) -> Result<Vec<SetAssocState>, SnapError> {
    let mut d = Dec::new(payload, "llc");
    let n = d.count32(2, "node slice")?;
    let mut slices = Vec::with_capacity(n);
    for _ in 0..n {
        slices.push(decode_set_assoc(&mut d)?);
    }
    d.done()?;
    Ok(slices)
}

fn encode_dirs(dirs: &[DirectoryNodeState]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(dirs.len() as u32);
    for node in dirs {
        e.u64(node.busy_until.as_u64());
        let s = &node.controller.stats;
        for c in [
            s.requests,
            s.requests_local,
            s.requests_remote,
            s.allarm_allocation_skips,
            s.pf_evictions,
            s.eviction_messages,
            s.eviction_invalidations,
            s.eviction_writebacks,
            s.local_probes,
            s.local_probe_hits,
            s.local_probes_hidden,
            s.dram_fills,
            s.cache_transfers,
            s.ownership_invalidations,
        ] {
            e.counter(c);
        }
        let pf = &node.controller.probe_filter;
        e.u32(pf.slots.len() as u32);
        e.u64(pf.tick);
        for c in [
            pf.stats.hits,
            pf.stats.misses,
            pf.stats.allocations,
            pf.stats.evictions,
            pf.stats.deallocations,
            pf.stats.array_accesses,
            pf.stats.node_vector_accesses,
        ] {
            e.counter(c);
        }
        for slot in &pf.slots {
            match slot {
                None => e.u8(0),
                Some(s) => {
                    e.u8(1);
                    e.u64(s.entry.line.raw());
                    e.u16(s.entry.owner.raw());
                    e.u64(s.last_touch);
                    e.u32(s.entry.sharers.count());
                    for core in s.entry.sharers.iter() {
                        e.u16(core.raw());
                    }
                }
            }
        }
    }
    e.finish()
}

fn decode_dirs(payload: &[u8]) -> Result<Vec<DirectoryNodeState>, SnapError> {
    let mut d = Dec::new(payload, "directories");
    let n = d.count32(8, "node")?;
    let mut dirs = Vec::with_capacity(n);
    for _ in 0..n {
        let busy_until = d.nanos()?;
        let stats = DirectoryStats {
            requests: d.counter()?,
            requests_local: d.counter()?,
            requests_remote: d.counter()?,
            allarm_allocation_skips: d.counter()?,
            pf_evictions: d.counter()?,
            eviction_messages: d.counter()?,
            eviction_invalidations: d.counter()?,
            eviction_writebacks: d.counter()?,
            local_probes: d.counter()?,
            local_probe_hits: d.counter()?,
            local_probes_hidden: d.counter()?,
            dram_fills: d.counter()?,
            cache_transfers: d.counter()?,
            ownership_invalidations: d.counter()?,
        };
        let num_slots = d.count32(1, "probe-filter slot")?;
        let tick = d.u64()?;
        let pf_stats = PfStats {
            hits: d.counter()?,
            misses: d.counter()?,
            allocations: d.counter()?,
            evictions: d.counter()?,
            deallocations: d.counter()?,
            array_accesses: d.counter()?,
            node_vector_accesses: d.counter()?,
        };
        let mut slots = Vec::with_capacity(num_slots);
        for _ in 0..num_slots {
            match d.u8()? {
                0 => slots.push(None),
                1 => {
                    let line = LineAddr::new(d.u64()?);
                    let owner = CoreId::new(d.u16()?);
                    let last_touch = d.u64()?;
                    let sharers_count = d.count32(2, "sharer")?;
                    let mut sharers = SharerSet::empty();
                    for _ in 0..sharers_count {
                        sharers.insert(CoreId::new(d.u16()?));
                    }
                    let mut entry = PfEntry::new(line, owner);
                    entry.sharers = sharers;
                    slots.push(Some(PfSlotState { entry, last_touch }));
                }
                other => return Err(d.err(format!("invalid slot presence flag {other}"))),
            }
        }
        dirs.push(DirectoryNodeState {
            controller: DirectoryControllerState {
                probe_filter: ProbeFilterState {
                    slots,
                    tick,
                    stats: pf_stats,
                },
                stats,
            },
            busy_until,
        });
    }
    d.done()?;
    Ok(dirs)
}

fn encode_alloc(a: &NumaAllocatorState) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(a.pages.len() as u64);
    for p in &a.pages {
        e.u64(p.vpage.raw());
        e.u64(p.phys_page.raw());
        e.u16(p.home.raw());
        e.u16(p.first_toucher.raw());
        e.u32(p.touches);
    }
    e.u32(a.next_slot.len() as u32);
    for slot in &a.next_slot {
        e.u64(*slot);
    }
    e.u64(a.round_robin);
    e.counter(a.stats.local_allocations);
    e.counter(a.stats.spilled_allocations);
    e.counter(a.stats.rehomed_pages);
    e.finish()
}

fn decode_alloc(payload: &[u8]) -> Result<NumaAllocatorState, SnapError> {
    let mut d = Dec::new(payload, "allocator");
    let n = d.count64(24, "page")?;
    let mut pages = Vec::with_capacity(n);
    for _ in 0..n {
        pages.push(PageEntryState {
            vpage: PageAddr::new(d.u64()?),
            phys_page: PageAddr::new(d.u64()?),
            home: NodeId::new(d.u16()?),
            first_toucher: NodeId::new(d.u16()?),
            touches: d.u32()?,
        });
    }
    let slots = d.count32(8, "node slot")?;
    let mut next_slot = Vec::with_capacity(slots);
    for _ in 0..slots {
        next_slot.push(d.u64()?);
    }
    let round_robin = d.u64()?;
    let stats = NumaStats {
        local_allocations: d.counter()?,
        spilled_allocations: d.counter()?,
        rehomed_pages: d.counter()?,
    };
    d.done()?;
    Ok(NumaAllocatorState {
        pages,
        next_slot,
        round_robin,
        stats,
    })
}

fn encode_threads(threads: &[ThreadState]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(threads.len() as u32);
    for t in threads {
        e.u32(t.thread as u32);
        e.u16(t.core.raw());
        e.u64(t.clock.as_u64());
        let mut flags = 0u8;
        if t.parked {
            flags |= 1;
        }
        if t.finished {
            flags |= 2;
        }
        if t.faulted {
            flags |= 4;
        }
        e.u8(flags);
        e.u64(t.cursor as u64);
        e.u32(t.seq);
        e.u32(t.window.len() as u32);
        for p in &t.window {
            e.u64(p.key.time.as_u64());
            e.u32(p.key.actor);
            e.u32(p.key.seq);
            e.u64(p.line.raw());
        }
    }
    e.finish()
}

fn decode_threads(payload: &[u8]) -> Result<Vec<ThreadState>, SnapError> {
    let mut d = Dec::new(payload, "cores");
    let n = d.count32(27, "thread")?;
    let mut threads = Vec::with_capacity(n);
    for _ in 0..n {
        let thread = d.u32()? as usize;
        let core = CoreId::new(d.u16()?);
        let clock = d.nanos()?;
        let flags = d.u8()?;
        if flags & !0b111 != 0 {
            return Err(d.err(format!("invalid thread flags {flags:#x}")));
        }
        let cursor = d.u64()? as usize;
        let seq = d.u32()?;
        let depth = d.count32(24, "window entry")?;
        let mut window = Vec::with_capacity(depth);
        for _ in 0..depth {
            let time = d.nanos()?;
            let actor = d.u32()?;
            let wseq = d.u32()?;
            let line = LineAddr::new(d.u64()?);
            window.push(Pending {
                key: MergeKey::new(time, actor, wseq),
                line,
            });
        }
        threads.push(ThreadState {
            thread,
            core,
            clock,
            parked: flags & 1 != 0,
            finished: flags & 2 != 0,
            faulted: flags & 4 != 0,
            cursor,
            seq,
            window,
        });
    }
    d.done()?;
    Ok(threads)
}

fn encode_replies(replies: &[CoherenceReply]) -> Vec<u8> {
    let mut e = Enc::new();
    e.u32(replies.len() as u32);
    for r in replies {
        e.u16(r.core.raw());
        e.u64(r.key.time.as_u64());
        e.u32(r.key.actor);
        e.u32(r.key.seq);
        e.u64(r.latency.as_u64());
        e.u8(encode_coherence_state(r.fill_state));
        e.u8(u8::from(r.carries_data));
    }
    e.finish()
}

fn decode_replies(payload: &[u8]) -> Result<Vec<CoherenceReply>, SnapError> {
    let mut d = Dec::new(payload, "replies");
    let n = d.count32(28, "reply")?;
    let mut replies = Vec::with_capacity(n);
    for _ in 0..n {
        let core = CoreId::new(d.u16()?);
        let time = d.nanos()?;
        let actor = d.u32()?;
        let seq = d.u32()?;
        let latency = d.nanos()?;
        let fill_state = decode_coherence_state(&mut d)?;
        let carries_data = match d.u8()? {
            0 => false,
            1 => true,
            other => return Err(d.err(format!("invalid carries_data flag {other}"))),
        };
        replies.push(CoherenceReply {
            core,
            key: MergeKey::new(time, actor, seq),
            latency,
            fill_state,
            carries_data,
        });
    }
    d.done()?;
    Ok(replies)
}

fn encode_kernel(state: &KernelState) -> Vec<u8> {
    let mut e = Enc::new();
    // The message-class count pins the NoC array layout; a build with a
    // different class set must refuse the section rather than misalign.
    e.u32(MessageClass::ALL.len() as u32);
    e.u64(state.round_horizon.as_u64());
    e.u64(state.accesses);
    e.u64(state.rounds);
    e.u64(state.events_merged);
    e.u64(u64::from(state.max_window));
    e.u64(state.dram_reads);
    e.u64(state.dram_writes);
    let noc = state.noc.export_counts();
    for i in 0..MessageClass::ALL.len() {
        e.u64(noc.messages[i]);
        e.u64(noc.bytes[i]);
        e.u64(noc.hops[i]);
    }
    e.u64(noc.flit_hops);
    e.u64(noc.local_deliveries);
    e.finish()
}

type KernelSection = (Nanos, [u64; 6], NocStats);

fn decode_kernel(payload: &[u8]) -> Result<KernelSection, SnapError> {
    let mut d = Dec::new(payload, "kernel");
    let classes = d.u32()? as usize;
    if classes != MessageClass::ALL.len() {
        return Err(d.err(format!(
            "{classes} message classes but this build has {}",
            MessageClass::ALL.len()
        )));
    }
    let round_horizon = d.nanos()?;
    let accesses = d.u64()?;
    let rounds = d.u64()?;
    let events_merged = d.u64()?;
    let max_window = d.u64()?;
    if max_window > u64::from(u32::MAX) {
        return Err(d.err("max window depth overflows"));
    }
    let dram_reads = d.u64()?;
    let dram_writes = d.u64()?;
    let mut noc = NocStatsExport {
        messages: [0; MessageClass::ALL.len()],
        bytes: [0; MessageClass::ALL.len()],
        hops: [0; MessageClass::ALL.len()],
        flit_hops: 0,
        local_deliveries: 0,
    };
    for i in 0..MessageClass::ALL.len() {
        noc.messages[i] = d.u64()?;
        noc.bytes[i] = d.u64()?;
        noc.hops[i] = d.u64()?;
    }
    noc.flit_hops = d.u64()?;
    noc.local_deliveries = d.u64()?;
    d.done()?;
    Ok((
        round_horizon,
        [
            accesses,
            rounds,
            events_merged,
            max_window,
            dram_reads,
            dram_writes,
        ],
        NocStats::import_counts(&noc),
    ))
}

//! Parallel execution of scenario sets.
//!
//! [`BatchRunner`] takes the scenarios a [`crate::ScenarioGrid`] expands to
//! (or any hand-built list), validates them all up front, and executes them
//! across OS threads. Each scenario is a pure function of its own fields —
//! the workload is materialized from `(spec, seed)` and the simulator is
//! single-threaded — so parallel and serial execution produce **identical**
//! results; the runner additionally delivers results to the [`ResultSink`]
//! in scenario order regardless of completion order, so sinks observe the
//! same sequence either way.
//!
//! Workloads are materialized once per distinct `(spec, seed)` pair and
//! shared between scenarios via [`Arc`], so a policy-comparison grid does
//! not pay trace generation twice per benchmark.
//!
//! Scenarios that declare a [`crate::Scenario::warmup_accesses`] prefix are
//! additionally grouped by machine, policies, seed and workload shape:
//! the runner executes the shared prefix **once** per group, snapshots the
//! simulator in memory, and forks every member from the warm image
//! (fork-from-warm). Forked reports are byte-identical to cold runs — the
//! kernel snapshot is exact — and [`BatchRunner::with_verify_forks`] turns
//! that guarantee into an assertion by re-running each member cold.
//!
//! Results can stay in memory ([`VecSink`], [`JsonlSink`]) or stream to
//! disk as they complete ([`JsonlFileSink`], [`CsvFileSink`]), so long
//! sweeps persist partial results instead of losing everything on an
//! interruption.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use allarm_types::error::ConfigError;
use allarm_workloads::{AccessSource, TraceSource, Workload};

use crate::metrics::{Comparison, SimReport};
use crate::scenario::Scenario;
use crate::snapshot::SimSnapshot;

/// One scenario's ready-to-replay workload. Generated (and v1-replayed)
/// workloads are materialized once per distinct `(spec, seed)` pair and
/// shared across the batch; frame-chunked v2 trace replays hold only the
/// trace's header and frame directory and stream the body straight off
/// disk during the run — a batch over a multi-hundred-million-access
/// trace never holds the decoded stream in memory.
#[derive(Debug, Clone)]
enum WorkloadHandle {
    /// Every access in memory, shared between scenarios via [`Arc`].
    Materialized(Arc<Workload>),
    /// A bounded-memory streaming v2 trace source.
    Streaming(Arc<TraceSource>),
}

impl WorkloadHandle {
    /// The replay feed the simulator consumes — identical record streams
    /// for both kinds.
    fn source(&self) -> AccessSource<'_> {
        match self {
            WorkloadHandle::Materialized(w) => AccessSource::from(&**w),
            WorkloadHandle::Streaming(t) => AccessSource::from(&**t),
        }
    }

    /// The in-memory workload, when one exists. Fork-from-warm planning
    /// requires one (prefix comparison reads the raw access vectors), so
    /// streaming scenarios always run cold.
    fn materialized(&self) -> Option<&Arc<Workload>> {
        match self {
            WorkloadHandle::Materialized(w) => Some(w),
            WorkloadHandle::Streaming(_) => None,
        }
    }
}

/// One completed scenario: the descriptor and its report.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Position of the scenario in the submitted batch.
    pub index: usize,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The full metric report of the run.
    pub report: SimReport,
}

impl BatchEntry {
    /// Renders this entry as one line of the JSONL result format — the
    /// exact bytes [`JsonlSink`] and [`JsonlFileSink`] record (without the
    /// trailing newline), so any transport (an in-memory buffer, an HTTP
    /// stream) can carry rows byte-identical to the file sinks' output.
    pub fn jsonl_line(&self) -> String {
        jsonl_line(self)
    }
}

/// How a batch run under a cancel flag ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every pending scenario ran and was recorded.
    Completed,
    /// The cancel flag was observed between grid rows: the rows already
    /// recorded are final and correct, the rest never ran.
    Cancelled,
}

/// Consumes completed runs, in scenario order.
///
/// The runner guarantees `record` is called with strictly increasing
/// `entry.index`, for both serial and parallel execution, so a sink never
/// needs to reorder.
pub trait ResultSink {
    /// Receives the next completed entry.
    fn record(&mut self, entry: &BatchEntry);
}

/// A sink that simply collects every entry.
#[derive(Debug, Default)]
pub struct VecSink {
    entries: Vec<BatchEntry>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consumes the sink, returning the collected entries.
    pub fn into_entries(self) -> Vec<BatchEntry> {
        self.entries
    }
}

impl ResultSink for VecSink {
    fn record(&mut self, entry: &BatchEntry) {
        self.entries.push(entry.clone());
    }
}

/// A sink that renders each entry as one JSON object per line (JSONL),
/// ready for downstream tooling. Each line carries the scenario `index`
/// and `scenario` name alongside the `report`, so sweep rows that differ
/// only in swept machine axes (e.g. probe-filter coverage) stay
/// distinguishable without relying on line order.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Consumes the sink, returning the JSONL document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl ResultSink for JsonlSink {
    fn record(&mut self, entry: &BatchEntry) {
        self.out.push_str(&jsonl_line(entry));
        self.out.push('\n');
    }
}

/// The lines of a partially-written output file that are certainly
/// complete. Every record is written as `line + '\n'` and flushed
/// sequentially, so a file not ending in a newline was cut mid-record —
/// its final line must be dropped even when the truncation happens to
/// leave parseable content (e.g. a CSV row chopped inside its last
/// numeric field).
fn complete_lines(text: &str) -> std::vec::IntoIter<&str> {
    let mut lines: Vec<&str> = text.lines().collect();
    if !text.is_empty() && !text.ends_with('\n') {
        lines.pop();
    }
    lines.into_iter()
}

/// One completed row recovered from a partially-written output file: the
/// identity a resumed sweep verifies against the current batch before any
/// new row is appended (see [`verify_resume_rows`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRow {
    /// The scenario's position in the batch when the row was written.
    pub index: usize,
    /// The recorded scenario name.
    pub scenario: String,
    /// The recorded report's total replayed memory references.
    pub total_accesses: u64,
}

/// The read-only result of scanning a partially-written output file: the
/// complete lines to keep and the [`RecordedRow`]s they describe. Produced
/// by [`JsonlFileSink::scan`] / [`CsvFileSink::scan`] **without touching
/// the file**, so mismatches found by [`verify_resume_rows`] leave an
/// interrupted sweep's output exactly as it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeScan {
    keep: Vec<String>,
    rows: Vec<RecordedRow>,
}

impl ResumeScan {
    /// The recovered rows, in file order.
    pub fn rows(&self) -> &[RecordedRow] {
        &self.rows
    }

    /// The scenario indices already recorded (the `completed` set for
    /// [`BatchRunner::run_with_sink_resuming`]).
    pub fn completed(&self) -> HashSet<usize> {
        self.rows.iter().map(|r| r.index).collect()
    }

    fn keep_lines(&self) -> Vec<&str> {
        self.keep.iter().map(String::as_str).collect()
    }
}

/// Extracts the row identity — and the raw report tree, for schema
/// checking — from one [`JsonlSink`]-format line, if the line is complete
/// and well-formed.
fn jsonl_row(line: &str) -> Option<(RecordedRow, serde::Value)> {
    let value: serde::Value = serde_json::from_str(line).ok()?;
    let serde::Value::U64(index) = value.get("index")? else {
        return None;
    };
    let serde::Value::Str(scenario) = value.get("scenario")? else {
        return None;
    };
    let report = value.get("report")?;
    let serde::Value::U64(total_accesses) = report.get("total_accesses")? else {
        return None;
    };
    let row = RecordedRow {
        index: *index as usize,
        scenario: scenario.clone(),
        total_accesses: *total_accesses,
    };
    Some((row, report.clone()))
}

/// Renders one batch entry as the line format of [`JsonlSink`].
fn jsonl_line(entry: &BatchEntry) -> String {
    use serde::{Serialize as _, Value};
    let line = Value::Map(vec![
        ("index".to_string(), Value::U64(entry.index as u64)),
        (
            "scenario".to_string(),
            Value::Str(entry.scenario.name.clone()),
        ),
        ("report".to_string(), entry.report.to_value()),
    ]);
    serde_json::to_string(&line)
}

/// Shared plumbing of the file-backed sinks: a flushed-per-record writer
/// with deferred I/O errors. Errors are captured at the failing record and
/// surfaced by `finish` (the [`ResultSink`] trait keeps `record` infallible
/// so in-memory sinks stay trivial).
#[derive(Debug)]
struct FileWriter {
    out: std::io::BufWriter<std::fs::File>,
    error: Option<std::io::Error>,
}

impl FileWriter {
    fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(FileWriter {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
            error: None,
        })
    }

    /// Reopens `path` for a resumed sweep: the still-parseable prefix
    /// `keep` (everything up to the first line an interruption may have
    /// truncated) is rewritten in one buffered pass with a single flush —
    /// the per-record flush discipline only matters for records written
    /// *after* this point — and subsequent records append after it.
    fn reopen(path: impl AsRef<std::path::Path>, keep: &[&str]) -> std::io::Result<Self> {
        use std::io::Write as _;
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for line in keep {
            writeln!(out, "{line}")?;
        }
        out.flush()?;
        Ok(FileWriter { out, error: None })
    }

    /// Writes one line and flushes, so partially completed sweeps survive
    /// an interruption. After the first error, further writes are skipped.
    fn write_line(&mut self, line: &str) {
        use std::io::Write as _;
        if self.error.is_some() {
            return;
        }
        let result = writeln!(self.out, "{line}").and_then(|()| self.out.flush());
        if let Err(e) = result {
            self.error = Some(e);
        }
    }

    fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        match self.error.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

/// A sink that streams each entry to a file as one JSON object per line
/// (the [`JsonlSink`] format), flushing after every record. I/O errors are
/// deferred and surfaced by [`JsonlFileSink::finish`].
#[derive(Debug)]
pub struct JsonlFileSink {
    out: FileWriter,
}

impl JsonlFileSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    ///
    /// Returns the error of the failed create.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlFileSink {
            out: FileWriter::create(path)?,
        })
    }

    /// Scans a partially-written output file **without modifying it**:
    /// complete, well-formed lines are kept (a truncated final line from
    /// the interruption is dropped) and their recorded row identities are
    /// recovered, so the caller can cross-check them against the batch
    /// ([`verify_resume_rows`]) before anything is rewritten. A missing
    /// file scans as empty.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed read, or `InvalidData` when a
    /// recorded row's report does not deserialize under this build's
    /// schema (the file was written by a different build — appending new
    /// rows after it would break fresh-run byte-identity).
    pub fn scan(path: impl AsRef<std::path::Path>) -> std::io::Result<ResumeScan> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut keep = Vec::new();
        let mut rows = Vec::new();
        for line in complete_lines(&text) {
            let Some((row, report)) = jsonl_row(line) else {
                // The first malformed line is where the interruption hit;
                // everything after it is untrustworthy.
                break;
            };
            // A line that carries a row identity but whose report no
            // longer matches the current schema was written by a
            // different build — appending rows of the new schema after it
            // would break the file's fresh-run byte-identity, so refuse
            // up front (the file stays untouched).
            use serde::Deserialize as _;
            if crate::metrics::SimReport::from_value(&report).is_err() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "row {} was recorded with an incompatible report schema \
                         (written by a different build?) — re-run the sweep from scratch",
                        row.index
                    ),
                ));
            }
            keep.push(line.to_string());
            rows.push(row);
        }
        Ok(ResumeScan { keep, rows })
    }

    /// Reopens `path` for appending after a [`JsonlFileSink::scan`]: the
    /// scanned prefix is rewritten and new records append after it.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed reopen.
    pub fn resume_scanned(
        path: impl AsRef<std::path::Path>,
        scan: &ResumeScan,
    ) -> std::io::Result<Self> {
        Ok(JsonlFileSink {
            out: FileWriter::reopen(path, &scan.keep_lines())?,
        })
    }

    /// Reopens a partially-written output file for a resumed sweep:
    /// [`JsonlFileSink::scan`] followed by [`JsonlFileSink::resume_scanned`],
    /// returning the recorded index set. Callers that may be resuming
    /// under *changed settings* should scan, verify with
    /// [`verify_resume_rows`], and only then reopen — this shortcut
    /// rewrites the file before any cross-check can run.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed read or reopen.
    pub fn resume(path: impl AsRef<std::path::Path>) -> std::io::Result<(Self, HashSet<usize>)> {
        let path = path.as_ref();
        let scan = Self::scan(path)?;
        let sink = Self::resume_scanned(path, &scan)?;
        Ok((sink, scan.completed()))
    }

    /// Flushes and closes the sink, surfacing the first I/O error hit
    /// while recording.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the flush error.
    pub fn finish(self) -> std::io::Result<()> {
        self.out.finish()
    }
}

impl ResultSink for JsonlFileSink {
    fn record(&mut self, entry: &BatchEntry) {
        self.out.write_line(&jsonl_line(entry));
    }
}

/// A sink that streams each entry to a CSV file (header plus one flat row
/// per run), flushing after every record. The column set is
/// [`SimReport::CSV_HEADER`]; the header is written at create time, so
/// even an empty batch leaves a well-formed file. I/O errors are deferred
/// and surfaced by [`CsvFileSink::finish`].
#[derive(Debug)]
pub struct CsvFileSink {
    out: FileWriter,
}

impl CsvFileSink {
    /// Creates (truncating) the output file and writes the header row.
    ///
    /// # Errors
    ///
    /// Returns the error of the failed create.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let mut out = FileWriter::create(path)?;
        out.write_line(&Self::header());
        Ok(CsvFileSink { out })
    }

    fn header() -> String {
        format!("index,scenario,{}", SimReport::CSV_HEADER)
    }

    /// Scans a partially-written CSV file **without modifying it**: the
    /// header and every complete row are kept and each row's identity is
    /// recovered, so the caller can cross-check the rows against the batch
    /// ([`verify_resume_rows`]) before anything is rewritten. A missing or
    /// empty file (or one cut off mid-header) scans as fresh.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed read, or `InvalidData` when the
    /// file's header does not match this build's column set (recorded by
    /// a different build — resuming would silently drop its rows).
    pub fn scan(path: impl AsRef<std::path::Path>) -> std::io::Result<ResumeScan> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut lines = complete_lines(&text);
        let mut keep = vec![Self::header()];
        let mut rows = Vec::new();
        // A non-empty file whose (complete) first line is not the current
        // header was recorded by a different build — resuming would
        // silently truncate its rows, so refuse with the file untouched.
        // (A missing file, an empty file, or one cut mid-header scans as
        // fresh: nothing complete has been recorded yet.)
        if let Some(first) = lines.next() {
            let header = Self::header();
            if first != header {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "the file's column header does not match this build's (recorded by \
                     a different build?) — re-run the sweep from scratch",
                ));
            }
            let columns: Vec<&str> = header.split(',').collect();
            let total_at = columns
                .iter()
                .position(|&c| c == "total_accesses")
                .expect("the report header has a total_accesses column");
            for line in lines {
                // A complete row parses a leading index and has the full
                // column count (commas inside quoted fields — escaped
                // scenario names — don't split); the first row that
                // doesn't marks the interruption point.
                let Some(fields) = csv_fields(line) else {
                    break; // truncated inside a quoted field
                };
                if fields.len() != columns.len() {
                    break;
                }
                let (Ok(index), Ok(total_accesses)) =
                    (fields[0].parse::<usize>(), fields[total_at].parse::<u64>())
                else {
                    break;
                };
                keep.push(line.to_string());
                rows.push(RecordedRow {
                    index,
                    scenario: fields[1].clone(),
                    total_accesses,
                });
            }
        }
        Ok(ResumeScan { keep, rows })
    }

    /// Reopens `path` for appending after a [`CsvFileSink::scan`]: the
    /// header and scanned rows are rewritten and new rows append after
    /// them.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed reopen.
    pub fn resume_scanned(
        path: impl AsRef<std::path::Path>,
        scan: &ResumeScan,
    ) -> std::io::Result<Self> {
        Ok(CsvFileSink {
            out: FileWriter::reopen(path, &scan.keep_lines())?,
        })
    }

    /// Reopens a partially-written CSV file for a resumed sweep:
    /// [`CsvFileSink::scan`] followed by [`CsvFileSink::resume_scanned`],
    /// returning the recorded index set. As with
    /// [`JsonlFileSink::resume`], callers resuming under possibly-changed
    /// settings should scan and [`verify_resume_rows`] first.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed read or reopen.
    pub fn resume(path: impl AsRef<std::path::Path>) -> std::io::Result<(Self, HashSet<usize>)> {
        let path = path.as_ref();
        let scan = Self::scan(path)?;
        let sink = Self::resume_scanned(path, &scan)?;
        Ok((sink, scan.completed()))
    }

    /// Flushes and closes the sink, surfacing the first I/O error hit
    /// while recording.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the flush error.
    pub fn finish(self) -> std::io::Result<()> {
        self.out.finish()
    }
}

impl ResultSink for CsvFileSink {
    fn record(&mut self, entry: &BatchEntry) {
        let row = format!(
            "{},{},{}",
            entry.index,
            csv_escape(&entry.scenario.name),
            entry.report.csv_row()
        );
        self.out.write_line(&row);
    }
}

/// Splits one CSV row into unescaped fields, honouring [`csv_escape`]-style
/// quoting (a comma inside a quoted field does not split; `""` is an
/// escaped quote). Returns `None` if the row ends inside a quoted field —
/// i.e. it was truncated mid-write.
fn csv_fields(line: &str) -> Option<Vec<String>> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    current.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(current);
    Some(fields)
}

/// Cross-checks the rows recovered from a partially-written output file
/// against the batch a resumed sweep is about to run, so a resume under
/// different settings (an `--accesses` override, an edited scenario
/// document, the wrong output file) fails **before** the file is rewritten
/// instead of silently appending rows that were produced under other
/// settings than the recorded ones.
///
/// Checks, per recorded row: the index exists in the batch, the recorded
/// scenario name matches, and the recorded report's `total_accesses`
/// equals what the current scenario's workload materializes to (workloads
/// are materialized at most once per distinct `(spec, seed)` pair, the
/// same sharing rule the runner uses).
///
/// # Errors
///
/// Returns a `resume` [`ConfigError`] describing the first mismatch, or
/// the underlying validation error if a row's scenario is itself invalid.
pub fn verify_resume_rows(scenarios: &[Scenario], rows: &[RecordedRow]) -> Result<(), ConfigError> {
    let mut totals: Vec<(usize, u64)> = Vec::new();
    for row in rows {
        let Some(scenario) = scenarios.get(row.index) else {
            return Err(ConfigError::new(
                "resume",
                format!(
                    "output file records scenario index {} but the batch has only {} \
                     scenario(s) — resuming against the wrong file?",
                    row.index,
                    scenarios.len()
                ),
            ));
        };
        if scenario.name != row.scenario {
            return Err(ConfigError::new(
                "resume",
                format!(
                    "output row {} records scenario `{}` but the batch expects `{}` — was \
                     the scenario document edited since the file was written?",
                    row.index, row.scenario, scenario.name
                ),
            ));
        }
        scenario.validate()?;
        let expected = match totals.iter().find(|&&(i, _)| {
            scenarios[i].workload == scenario.workload && scenarios[i].seed == scenario.seed
        }) {
            Some(&(_, total)) => total,
            None => {
                // Trace replays answer from their header; generated specs
                // materialize once per distinct (spec, seed).
                let total = scenario
                    .workload
                    .total_accesses(scenario.seed)
                    .map_err(|e| ConfigError::new("resume", e))?;
                totals.push((row.index, total));
                total
            }
        };
        if expected != row.total_accesses {
            return Err(ConfigError::new(
                "resume",
                format!(
                    "output row {} (`{}`) records {} total accesses but the current \
                     settings produce {} — resumed with a different --accesses override \
                     or an edited workload?",
                    row.index, row.scenario, row.total_accesses, expected
                ),
            ));
        }
    }
    Ok(())
}

/// Quotes a CSV field if it contains a comma, quote or newline.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The ordered results of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// Completed entries, in scenario order.
    pub entries: Vec<BatchEntry>,
}

impl BatchResults {
    /// The reports, in scenario order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.entries.iter().map(|e| &e.report)
    }

    /// Number of completed scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pairs adjacent baseline/ALLARM runs of the same configuration into
    /// [`Comparison`]s — the shape every per-benchmark figure consumes.
    ///
    /// Two consecutive entries form a pair when they differ *only* in
    /// allocation policy (baseline first), which is exactly how
    /// [`crate::ScenarioGrid`] orders its expansion (policy is the
    /// fastest-varying axis).
    pub fn paired(&self) -> Vec<Comparison> {
        let mut comparisons = Vec::new();
        let mut i = 0;
        while i + 1 < self.entries.len() {
            let a = &self.entries[i];
            let b = &self.entries[i + 1];
            if same_but_policy(&a.scenario, &b.scenario)
                && !a.scenario.policy.is_allarm()
                && b.scenario.policy.is_allarm()
            {
                comparisons.push(Comparison::new(a.report.clone(), b.report.clone()));
                i += 2;
            } else {
                i += 1;
            }
        }
        comparisons
    }
}

/// True if the two scenarios are identical apart from allocation policy
/// (and the name, which encodes the policy).
fn same_but_policy(a: &Scenario, b: &Scenario) -> bool {
    a.machine == b.machine
        && a.numa_policy == b.numa_policy
        && a.workload == b.workload
        && a.seed == b.seed
}

/// Executes scenario sets, optionally in parallel.
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, BatchRunner, Scenario, ScenarioGrid};
/// use allarm_workloads::Benchmark;
///
/// let grid = ScenarioGrid::new(
///         Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline)
///             .with_accesses(500))
///     .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm]);
/// let results = BatchRunner::new().run(&grid.expand()).unwrap();
/// assert_eq!(results.len(), 2);
/// let pairs = results.paired();
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].baseline.policy, "baseline");
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    num_threads: usize,
    verify_forks: bool,
    checkpoint: Option<CheckpointCfg>,
}

/// Mid-run checkpointing of a batch: the active run's full simulator state
/// is written (atomically) to `path` every `every` accesses.
#[derive(Debug, Clone)]
struct CheckpointCfg {
    every: u64,
    path: PathBuf,
}

impl BatchRunner {
    /// Creates a runner using every available hardware thread.
    pub fn new() -> Self {
        BatchRunner::with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Creates a runner with an explicit worker count (clamped to ≥ 1).
    /// `with_threads(1)` is the serial runner.
    pub fn with_threads(num_threads: usize) -> Self {
        BatchRunner {
            num_threads: num_threads.max(1),
            verify_forks: false,
            checkpoint: None,
        }
    }

    /// The worker count this runner uses.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Returns a copy that re-runs every fork-from-warm scenario cold and
    /// asserts the forked report equals the cold one byte for byte — the
    /// CI equivalence gate. The batch's *recorded* rows are the forked
    /// ones either way; this only adds the cross-check (and its cost).
    pub fn with_verify_forks(mut self, verify: bool) -> Self {
        self.verify_forks = verify;
        self
    }

    /// Returns a copy that checkpoints the active run's simulator state to
    /// `path` each time its access total crosses a multiple of `every`
    /// (atomic overwrite, so an interruption always leaves the previous
    /// complete snapshot). Checkpointing forces **serial** execution — a
    /// single snapshot file identifies a single in-flight row — and
    /// disables fork-from-warm for the batch.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_checkpoint_every(mut self, every: u64, path: impl Into<PathBuf>) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint = Some(CheckpointCfg {
            every,
            path: path.into(),
        });
        self
    }

    /// Validates and runs every scenario, returning ordered results.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch; nothing runs
    /// unless every scenario validates.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<BatchResults, ConfigError> {
        let mut sink = VecSink::new();
        self.run_with_sink(scenarios, &mut sink)?;
        Ok(BatchResults {
            entries: sink.into_entries(),
        })
    }

    /// Validates and runs every scenario, streaming ordered entries into
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch; the sink is not
    /// touched unless every scenario validates.
    pub fn run_with_sink(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
    ) -> Result<(), ConfigError> {
        self.run_with_sink_resuming(scenarios, sink, &HashSet::new())
    }

    /// Like [`BatchRunner::run_with_sink`], but skips the scenarios whose
    /// indices are in `completed` — the resume path of an interrupted
    /// sweep. Skipped indices are neither executed nor re-recorded; the
    /// remaining entries still reach the sink in ascending index order.
    /// Pair with [`JsonlFileSink::resume`] / [`CsvFileSink::resume`],
    /// which recover the completed set from a partially-written output
    /// file.
    ///
    /// Completion is matched **by index**: a resumed run must use the same
    /// scenario set, in the same order, as the interrupted one (reordering
    /// the grid between runs silently pairs old rows with new scenarios).
    /// An index beyond the batch is rejected, which catches the common
    /// mistake of resuming against the wrong output file.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch (every scenario
    /// is validated, including completed ones — a resumed sweep must be
    /// the same sweep), or an error if `completed` names an index the
    /// batch does not have; the sink is not touched unless validation
    /// passes.
    pub fn run_with_sink_resuming(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
        completed: &HashSet<usize>,
    ) -> Result<(), ConfigError> {
        self.run_inner(scenarios, sink, completed, None, None)
            .map(|_| ())
    }

    /// Like [`BatchRunner::run_with_sink_resuming`], but the scenario at
    /// `restore.0` continues from a mid-run snapshot instead of starting
    /// over — the `--restore` path of a sweep whose interrupted run had
    /// written a checkpoint (see [`BatchRunner::with_checkpoint_every`]).
    /// Restoring forces serial execution, like checkpointing.
    ///
    /// The snapshot must be a batch checkpoint
    /// ([`crate::SnapHeader::row_index`]) naming a still-pending scenario
    /// whose name matches; the simulator additionally asserts the machine
    /// fingerprint and workload checksum when it resumes. Callers that
    /// also pass `completed` rows from a partially-written output file
    /// should first cross-check the snapshot's cursor against those rows
    /// (`row_index == rows recorded`) **before** reopening the file.
    ///
    /// # Errors
    ///
    /// As [`BatchRunner::run_with_sink_resuming`], plus a `restore`
    /// [`ConfigError`] when the snapshot does not name a pending row of
    /// this batch; the sink is untouched on any validation error.
    pub fn run_with_sink_restored(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
        completed: &HashSet<usize>,
        restore: Option<(usize, Arc<SimSnapshot>)>,
    ) -> Result<(), ConfigError> {
        self.run_inner(scenarios, sink, completed, None, restore)
            .map(|_| ())
    }

    /// Like [`BatchRunner::run_with_sink`], but polls `cancel` **between
    /// grid rows**: once the flag reads true, no further scenario starts.
    /// Rows already recorded are final (the sink saw the same ordered
    /// prefix a full run would have produced); rows in flight when the
    /// flag flips still finish computing but are only recorded if every
    /// earlier row is, so the sink never observes a gap. A row that is
    /// mid-simulation is *not* interrupted — cancellation granularity is
    /// the grid row, which keeps every recorded row byte-identical to an
    /// uncancelled run's.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch; the sink is not
    /// touched unless every scenario validates.
    pub fn run_with_sink_cancellable(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
        cancel: &AtomicBool,
    ) -> Result<RunOutcome, ConfigError> {
        self.run_inner(scenarios, sink, &HashSet::new(), Some(cancel), None)
    }

    fn run_inner(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
        completed: &HashSet<usize>,
        cancel: Option<&AtomicBool>,
        restore: Option<(usize, Arc<SimSnapshot>)>,
    ) -> Result<RunOutcome, ConfigError> {
        for scenario in scenarios {
            scenario.validate()?;
        }
        if let Some(stray) = completed.iter().find(|&&i| i >= scenarios.len()) {
            return Err(ConfigError::new(
                "resume",
                format!(
                    "output file records scenario index {stray} but the batch has only {} \
                     scenario(s) — resuming against the wrong file?",
                    scenarios.len()
                ),
            ));
        }
        if let Some((index, snap)) = &restore {
            if !snap.header().is_batch_checkpoint() {
                return Err(ConfigError::new(
                    "restore",
                    "the snapshot does not identify a batch row — was it written by \
                     --checkpoint-every?",
                ));
            }
            let Some(scenario) = scenarios.get(*index) else {
                return Err(ConfigError::new(
                    "restore",
                    format!(
                        "the snapshot records scenario index {index} but the batch has only \
                         {} scenario(s) — restoring against the wrong snapshot?",
                        scenarios.len()
                    ),
                ));
            };
            if completed.contains(index) {
                return Err(ConfigError::new(
                    "restore",
                    format!(
                        "scenario index {index} is already recorded in the output — the \
                         snapshot is stale"
                    ),
                ));
            }
            if snap.header().scenario != scenario.name {
                return Err(ConfigError::new(
                    "restore",
                    format!(
                        "the snapshot was taken from scenario `{}` but index {index} of this \
                         batch is `{}` — was the scenario document edited?",
                        snap.header().scenario,
                        scenario.name
                    ),
                ));
            }
        }

        // Build each distinct (spec, seed) workload handle exactly once, in
        // scenario order, and share it across the batch. Frame-chunked v2
        // trace replays open a streaming source (header + frame directory
        // only); everything else materializes. Scenarios already completed
        // by a resumed sweep never build (None) — unless a still-pending
        // sibling shares the workload, in which case that sibling does.
        let mut workloads: Vec<Option<WorkloadHandle>> = Vec::with_capacity(scenarios.len());
        for (index, scenario) in scenarios.iter().enumerate() {
            if completed.contains(&index) {
                workloads.push(None);
                continue;
            }
            let existing = (0..index).find(|&i| {
                workloads[i].is_some()
                    && scenarios[i].workload == scenario.workload
                    && scenarios[i].seed == scenario.seed
            });
            let handle = match existing {
                Some(i) => workloads[i].clone(),
                None => Some(match scenario.streaming_source()? {
                    Some(source) => WorkloadHandle::Streaming(Arc::new(source)),
                    None => WorkloadHandle::Materialized(Arc::new(scenario.workload())),
                }),
            };
            workloads.push(handle);
        }

        // Execute each warm-up group's shared prefix once and keep the
        // image in memory; members fork from it instead of replaying the
        // prefix. Checkpointed batches skip the optimisation — the
        // checkpoint stream of a run must describe that run from access
        // zero.
        let warm = if self.checkpoint.is_some() {
            vec![None; scenarios.len()]
        } else {
            self.plan_warm_images(scenarios, &workloads)
        };

        // Split the thread budget between scenario-level workers and the
        // intra-run shards each simulation will spawn: a batch of scenarios
        // that each shard 4-wide gets a quarter of the workers. Sizing by
        // the batch *maximum* is deliberately conservative — it can starve
        // a mixed batch's serial scenarios of workers, but never
        // oversubscribes the host. Neither level of parallelism affects
        // the results, only the wall clock.
        let max_sim_threads = scenarios
            .iter()
            .map(|s| s.sim_threads.resolve())
            .max()
            .unwrap_or(1)
            .max(1);
        let workers = if self.checkpoint.is_some() || restore.is_some() {
            1 // a single snapshot file identifies a single in-flight row
        } else {
            (self.num_threads / max_sim_threads).clamp(1, scenarios.len().max(1))
        };
        let pending_total = scenarios.len() - completed.len();
        let was_cancelled = |c: Option<&AtomicBool>| c.is_some_and(|c| c.load(Ordering::Relaxed));
        if workers <= 1 {
            let mut recorded = 0usize;
            for (index, scenario) in scenarios.iter().enumerate() {
                let Some(workload) = &workloads[index] else {
                    continue; // already completed by the resumed sweep
                };
                if was_cancelled(cancel) {
                    return Ok(RunOutcome::Cancelled);
                }
                let restored = restore
                    .as_ref()
                    .filter(|(i, _)| *i == index)
                    .map(|(_, snap)| snap);
                let report =
                    self.run_serial_one(index, scenario, workload, warm[index].as_ref(), restored)?;
                sink.record(&BatchEntry {
                    index,
                    scenario: scenario.clone(),
                    report,
                });
                recorded += 1;
            }
            return Ok(outcome(recorded, pending_total, was_cancelled(cancel)));
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, SimReport)>();
        let recorded = std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let workloads = &workloads;
                let warm = &warm;
                scope.spawn(move || loop {
                    // Cancellation is checked before a worker claims its
                    // next row; rows already claimed run to completion.
                    if was_cancelled(cancel) {
                        return;
                    }
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= scenarios.len() {
                        return;
                    }
                    let Some(workload) = &workloads[index] else {
                        continue; // already completed by the resumed sweep
                    };
                    let report = self.run_one(&scenarios[index], workload, warm[index].as_ref());
                    // The receiver outlives the scope; a send failure means
                    // the main thread panicked, so just stop.
                    if tx.send((index, report)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);

            // Buffer completions and flush the ready prefix in order, so the
            // sink sees the same sequence as a serial run; resumed indices
            // flush as no-ops. On cancellation an out-of-order straggler
            // whose predecessors never ran stays buffered and is dropped —
            // the sink only ever sees the gap-free prefix.
            let mut pending: Vec<Option<SimReport>> = vec![None; scenarios.len()];
            let mut next_to_flush = 0;
            let mut recorded = 0usize;
            for (index, report) in rx {
                pending[index] = Some(report);
                while next_to_flush < pending.len() {
                    if completed.contains(&next_to_flush) {
                        next_to_flush += 1;
                        continue;
                    }
                    let Some(report) = pending[next_to_flush].take() else {
                        break;
                    };
                    sink.record(&BatchEntry {
                        index: next_to_flush,
                        scenario: scenarios[next_to_flush].clone(),
                        report,
                    });
                    recorded += 1;
                    next_to_flush += 1;
                }
            }
            recorded
        });
        Ok(outcome(recorded, pending_total, was_cancelled(cancel)))
    }

    /// Plans fork-from-warm for a batch: groups the still-pending
    /// scenarios that can share a warm image (see [`same_warm_group`]),
    /// executes each group's shared prefix once, and returns the image
    /// every member forks from (`None`: run cold). The longest member
    /// hosts the warm-up run — the prefix must not exhaust its trace —
    /// and each member is admitted only if [`forkable`] proves the
    /// consumed prefix exists verbatim in its own workload; anything else
    /// falls back to a cold run, never to a wrong one.
    fn plan_warm_images(
        &self,
        scenarios: &[Scenario],
        workloads: &[Option<WorkloadHandle>],
    ) -> Vec<Option<Arc<SimSnapshot>>> {
        // Streaming handles never join a warm group: fork admission
        // compares raw access prefixes, which only materialized workloads
        // carry. A streaming scenario simply runs cold.
        let materialized = |j: usize| workloads[j].as_ref().and_then(WorkloadHandle::materialized);
        let mut warm: Vec<Option<Arc<SimSnapshot>>> = vec![None; scenarios.len()];
        let mut grouped = vec![false; scenarios.len()];
        for i in 0..scenarios.len() {
            if grouped[i] || materialized(i).is_none() || scenarios[i].warmup_accesses == 0 {
                continue;
            }
            let members: Vec<usize> = (i..scenarios.len())
                .filter(|&j| {
                    !grouped[j]
                        && materialized(j).is_some()
                        && same_warm_group(&scenarios[i], &scenarios[j])
                })
                .collect();
            for &j in &members {
                grouped[j] = true;
            }
            let &host = members
                .iter()
                .max_by_key(|&&j| materialized(j).expect("filtered above").total_accesses())
                .expect("the group contains at least scenario i");
            let host_workload = materialized(host).expect("filtered above");
            let warmup = scenarios[host].warmup_accesses;
            if warmup >= host_workload.total_accesses() as u64 {
                continue; // the warm-up would finish even the longest member: all run cold
            }
            let simulator = scenarios[host].build().expect("validated above");
            let Some(snap) = simulator.try_run_until(host_workload, warmup) else {
                continue; // the workload finished first (final-round edge): all run cold
            };
            let snap = Arc::new(snap);
            for &j in &members {
                if forkable(
                    &snap,
                    host_workload,
                    materialized(j).expect("filtered above"),
                ) {
                    warm[j] = Some(snap.clone());
                }
            }
        }
        warm
    }

    /// Runs one scenario: forked from its warm image when one applies,
    /// cold otherwise. Under [`BatchRunner::with_verify_forks`] a forked
    /// scenario additionally runs cold and the two reports are asserted
    /// byte-identical.
    ///
    /// # Panics
    ///
    /// Panics when verify-forks finds a divergence (a kernel snapshot bug
    /// — the recorded result could not be trusted).
    fn run_one(
        &self,
        scenario: &Scenario,
        workload: &WorkloadHandle,
        warm: Option<&Arc<SimSnapshot>>,
    ) -> SimReport {
        let simulator = scenario.build().expect("validated above");
        match warm {
            Some(snap) => {
                let materialized = workload
                    .materialized()
                    .expect("warm images are only planned for materialized workloads");
                let forked = simulator.resume_forked(snap, materialized);
                if self.verify_forks {
                    let cold = simulator.run(materialized);
                    assert_eq!(
                        forked, cold,
                        "fork-from-warm diverged from the cold run for `{}`",
                        scenario.name
                    );
                }
                forked
            }
            None => simulator.run_source(workload.source()),
        }
    }

    /// The serial path of one scenario, wiring in mid-run restore and
    /// checkpoint emission when configured.
    ///
    /// # Errors
    ///
    /// Returns a `checkpoint` [`ConfigError`] if a snapshot write failed
    /// (the run itself completed; its report is discarded so the sweep
    /// stops at a well-defined row).
    fn run_serial_one(
        &self,
        index: usize,
        scenario: &Scenario,
        workload: &WorkloadHandle,
        warm: Option<&Arc<SimSnapshot>>,
        restored: Option<&Arc<SimSnapshot>>,
    ) -> Result<SimReport, ConfigError> {
        let Some(cfg) = &self.checkpoint else {
            return Ok(match restored {
                Some(snap) => scenario
                    .build()
                    .expect("validated above")
                    .resume_source(snap, workload.source()),
                None => self.run_one(scenario, workload, warm),
            });
        };
        let simulator = scenario.build().expect("validated above");
        let mut write_error: Option<crate::snapshot::SnapError> = None;
        let emit = |snap: SimSnapshot| {
            if write_error.is_some() {
                return; // keep the last good snapshot on disk
            }
            let snap = snap.with_row(index as u64, &scenario.name);
            if let Err(e) = snap.write_to(&cfg.path) {
                write_error = Some(e);
            }
        };
        let report = match restored {
            Some(snap) => {
                simulator.resume_source_with_checkpoints(snap, workload.source(), cfg.every, emit)
            }
            None => simulator.run_source_with_checkpoints(workload.source(), cfg.every, emit),
        };
        match write_error {
            Some(e) => Err(ConfigError::new(
                "checkpoint",
                format!("failed to write snapshot `{}`: {e}", cfg.path.display()),
            )),
            None => Ok(report),
        }
    }
}

/// True if two scenarios can fork from one warm image: identical machine,
/// allocation and NUMA policies, seed and warm-up length, and workload
/// specs that differ at most in trace length — generated traces of the
/// same `(benchmark, threads, seed)` are exact prefixes of their longer
/// siblings, so the shared warm-up replays identical references for every
/// member (and [`forkable`] verifies exactly that before admitting one).
fn same_warm_group(a: &Scenario, b: &Scenario) -> bool {
    a.warmup_accesses == b.warmup_accesses
        && a.machine == b.machine
        && a.policy == b.policy
        && a.numa_policy == b.numa_policy
        && a.seed == b.seed
        && a.workload.with_accesses(0) == b.workload.with_accesses(0)
}

/// True if `workload` can fork from `snap` (taken while replaying `host`):
/// per thread, the consumed prefix must sit strictly inside the member's
/// own trace (`cursor < len`, so no thread sits exactly at an end the warm
/// run did not observe), be byte-identical to what the warm run actually
/// replayed, and keep the same core pinning. Anything else — including a
/// warm image whose host finished a thread — disqualifies the member.
fn forkable(snap: &SimSnapshot, host: &Workload, workload: &Workload) -> bool {
    let threads = &snap.state().threads;
    threads.len() == workload.threads.len()
        && threads.iter().all(|t| {
            let (Some(h), Some(w)) = (host.threads.get(t.thread), workload.threads.get(t.thread))
            else {
                return false;
            };
            !t.finished
                && t.cursor < w.accesses.len()
                && t.cursor <= h.accesses.len()
                && h.accesses[..t.cursor] == w.accesses[..t.cursor]
                && h.core == w.core
                && h.thread == w.thread
        })
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

/// A run under a cancel flag completed only if every pending row was
/// recorded; the flag flipping *after* the last row is not a cancellation.
fn outcome(recorded: usize, pending_total: usize, cancelled: bool) -> RunOutcome {
    if cancelled && recorded < pending_total {
        RunOutcome::Cancelled
    } else {
        RunOutcome::Completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGrid;
    use allarm_coherence::AllocationPolicy;
    use allarm_workloads::Benchmark;
    use serde::Deserialize as _;

    fn tiny_grid() -> Vec<Scenario> {
        ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(400),
        )
        .benchmarks(vec![Benchmark::Barnes, Benchmark::Cholesky])
        .pf_coverages(vec![512 * 1024, 128 * 1024])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let scenarios = tiny_grid();
        assert_eq!(scenarios.len(), 8);
        let serial = BatchRunner::with_threads(1).run(&scenarios).unwrap();
        let parallel = BatchRunner::with_threads(4).run(&scenarios).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 8);
        // Ordered by scenario index.
        for (i, entry) in serial.entries.iter().enumerate() {
            assert_eq!(entry.index, i);
            assert_eq!(entry.scenario, scenarios[i]);
        }
    }

    #[test]
    fn paired_yields_one_comparison_per_configuration() {
        let results = BatchRunner::new().run(&tiny_grid()).unwrap();
        let pairs = results.paired();
        assert_eq!(pairs.len(), 4);
        for cmp in &pairs {
            assert_eq!(cmp.baseline.policy, "baseline");
            assert_eq!(cmp.allarm.policy, "allarm");
            assert_eq!(cmp.baseline.total_accesses, cmp.allarm.total_accesses);
        }
    }

    #[test]
    fn workloads_are_shared_not_regenerated() {
        // Both policies of one configuration must replay the identical
        // trace: total accesses match exactly.
        let scenarios = ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Dedup, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand();
        let results = BatchRunner::new().run(&scenarios).unwrap();
        assert_eq!(
            results.entries[0].report.total_accesses,
            results.entries[1].report.total_accesses
        );
    }

    #[test]
    fn invalid_scenario_fails_the_whole_batch_before_running() {
        let mut scenarios = tiny_grid();
        scenarios[3].machine.l2.ways = 0;
        let err = BatchRunner::new().run(&scenarios).unwrap_err();
        assert_eq!(err.field(), "l2.ways");
    }

    #[test]
    fn sinks_observe_ordered_entries() {
        let scenarios = tiny_grid();
        let mut sink = JsonlSink::new();
        BatchRunner::with_threads(4)
            .run_with_sink(&scenarios, &mut sink)
            .unwrap();
        let text = sink.into_string();
        assert_eq!(text.lines().count(), scenarios.len());
        // Lines carry the scenario identity and parse back as reports, in
        // scenario order.
        let first: serde::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("index"), Some(&serde::Value::U64(0)));
        assert_eq!(
            first.get("scenario"),
            Some(&serde::Value::Str(scenarios[0].name.clone()))
        );
        let report = SimReport::from_value(first.get("report").unwrap()).unwrap();
        assert_eq!(report.workload, "barnes");
        assert_eq!(report.policy, "baseline");
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(BatchRunner::with_threads(0).num_threads(), 1);
        assert!(BatchRunner::new().num_threads() >= 1);
    }

    #[test]
    fn file_sinks_stream_ordered_results_to_disk() {
        let scenarios = ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand();
        let dir = std::env::temp_dir().join(format!("allarm-sink-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl_path = dir.join("results.jsonl");
        let csv_path = dir.join("results.csv");

        let mut jsonl = JsonlFileSink::create(&jsonl_path).unwrap();
        BatchRunner::with_threads(2)
            .run_with_sink(&scenarios, &mut jsonl)
            .unwrap();
        jsonl.finish().unwrap();

        let mut csv = CsvFileSink::create(&csv_path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut csv)
            .unwrap();
        csv.finish().unwrap();

        // The JSONL file matches the in-memory sink byte for byte.
        let mut reference = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut reference)
            .unwrap();
        let on_disk = std::fs::read_to_string(&jsonl_path).unwrap();
        assert_eq!(on_disk, reference.into_string());

        // The CSV file has a header plus one row per scenario, with the
        // scenario identity in the leading columns.
        let csv_text = std::fs::read_to_string(&csv_path).unwrap();
        let lines: Vec<&str> = csv_text.lines().collect();
        assert_eq!(lines.len(), scenarios.len() + 1);
        assert!(lines[0].starts_with("index,scenario,workload,policy,"));
        assert!(lines[1].starts_with("0,barnes/baseline,barnes,baseline,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows must have the same arity"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_budget_is_split_with_intra_run_threads() {
        // A batch whose scenarios each shard 2-wide must still produce the
        // same results (the split is a scheduling decision, not a semantic
        // one).
        let scenarios: Vec<Scenario> = tiny_grid()
            .into_iter()
            .map(|s| s.with_sim_threads(2))
            .collect();
        let wide = BatchRunner::with_threads(4).run(&scenarios).unwrap();
        let narrow = BatchRunner::with_threads(1).run(&scenarios).unwrap();
        let plain = BatchRunner::with_threads(4).run(&tiny_grid()).unwrap();
        assert_eq!(wide.len(), narrow.len());
        for ((w, n), p) in wide.entries.iter().zip(&narrow.entries).zip(&plain.entries) {
            assert_eq!(w.report, n.report);
            // sim_threads never changes the report itself.
            assert_eq!(w.report, p.report);
        }
    }

    #[test]
    fn resumed_jsonl_sweep_skips_recorded_indices_and_matches_a_full_run() {
        let scenarios = tiny_grid();
        let dir = std::env::temp_dir().join(format!("allarm-resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");

        // The reference: the full sweep in one go.
        let mut reference = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut reference)
            .unwrap();
        let reference = reference.into_string();

        // An "interrupted" sweep: the first three complete lines plus a
        // truncated fourth, as a crash mid-write would leave.
        let prefix: String = reference
            .lines()
            .take(3)
            .map(|l| format!("{l}\n"))
            .collect();
        let truncated = &reference.lines().nth(3).unwrap()[..20];
        std::fs::write(&path, format!("{prefix}{truncated}")).unwrap();

        let (mut sink, completed) = JsonlFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0, 1, 2]));
        BatchRunner::with_threads(2)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();

        // The resumed file is byte-identical to the uninterrupted sweep:
        // the truncated line is gone, indices 0-2 were not re-run, 3-7
        // were appended in order.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumed_csv_sweep_completes_the_remaining_rows() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(4).collect();
        let dir = std::env::temp_dir().join(format!("allarm-resume-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.csv");

        let mut full = CsvFileSink::create(&path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&path).unwrap();

        // Keep the header and two rows; chop the third row mid-field.
        let keep: Vec<&str> = reference.lines().take(3).collect();
        let broken = &reference.lines().nth(3).unwrap()[..5];
        std::fs::write(&path, format!("{}\n{broken}", keep.join("\n"))).unwrap();

        let (mut sink, completed) = CsvFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0, 1]));
        BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_missing_or_fresh_files_starts_from_scratch() {
        let dir = std::env::temp_dir().join(format!("allarm-resume-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (jsonl, completed) = JsonlFileSink::resume(dir.join("missing.jsonl")).unwrap();
        assert!(completed.is_empty());
        jsonl.finish().unwrap();
        let (csv, completed) = CsvFileSink::resume(dir.join("missing.csv")).unwrap();
        assert!(completed.is_empty());
        csv.finish().unwrap();
        // The fresh CSV still gets its header.
        let text = std::fs::read_to_string(dir.join("missing.csv")).unwrap();
        assert!(text.starts_with("index,scenario,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_escape_quotes_only_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_field_count_honours_quoting() {
        assert_eq!(csv_fields("a,b,c").map(|f| f.len()), Some(3));
        assert_eq!(csv_fields("0,\"a,b\",c").map(|f| f.len()), Some(3));
        assert_eq!(
            csv_fields("0,\"say \"\"hi\"\",now\",c").map(|f| f.len()),
            Some(3)
        );
        // Truncated inside a quoted field.
        assert_eq!(csv_fields("0,\"a,b"), None);
        assert_eq!(csv_fields("").map(|f| f.len()), Some(1));
    }

    #[test]
    fn csv_resume_handles_comma_bearing_scenario_names() {
        let mut scenarios: Vec<Scenario> = tiny_grid().into_iter().take(3).collect();
        for (i, s) in scenarios.iter_mut().enumerate() {
            s.name = format!("swept, point {i}");
        }
        let dir = std::env::temp_dir().join(format!("allarm-resume-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quoted.csv");

        let mut full = CsvFileSink::create(&path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&path).unwrap();

        // Truncate the second row inside its quoted name field.
        let keep: Vec<&str> = reference.lines().take(2).collect();
        std::fs::write(&path, format!("{}\n1,\"swept", keep.join("\n"))).unwrap();
        let (mut sink, completed) = CsvFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0]));
        BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rows_truncated_inside_the_final_field_are_dropped() {
        // A crash mid-write of the last numeric column loses no comma, so
        // column counting alone cannot see it — the missing trailing
        // newline is what gives it away.
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let dir = std::env::temp_dir().join(format!("allarm-resume-t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.csv");

        let mut full = CsvFileSink::create(&path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&path).unwrap();

        // Chop the final row three characters short, keeping every comma.
        let chopped = &reference[..reference.len() - 3];
        assert_eq!(chopped.lines().count(), reference.lines().count());
        std::fs::write(&path, chopped).unwrap();

        let (mut sink, completed) = CsvFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0]));
        BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);

        // Same property for JSONL.
        let jsonl_path = dir.join("tail.jsonl");
        let mut full = JsonlFileSink::create(&jsonl_path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&jsonl_path).unwrap();
        std::fs::write(&jsonl_path, &reference[..reference.len() - 2]).unwrap();
        let (sink, completed) = JsonlFileSink::resume(&jsonl_path).unwrap();
        assert_eq!(completed, HashSet::from([0]));
        sink.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_recovers_row_identities_without_touching_the_file() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let dir = std::env::temp_dir().join(format!("allarm-scan-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, scan) in [("scan.jsonl", false), ("scan.csv", true)] {
            let path = dir.join(name);
            if scan {
                let mut sink = CsvFileSink::create(&path).unwrap();
                BatchRunner::with_threads(1)
                    .run_with_sink(&scenarios, &mut sink)
                    .unwrap();
                sink.finish().unwrap();
            } else {
                let mut sink = JsonlFileSink::create(&path).unwrap();
                BatchRunner::with_threads(1)
                    .run_with_sink(&scenarios, &mut sink)
                    .unwrap();
                sink.finish().unwrap();
            }
            let before = std::fs::read_to_string(&path).unwrap();
            let result = if scan {
                CsvFileSink::scan(&path).unwrap()
            } else {
                JsonlFileSink::scan(&path).unwrap()
            };
            // The file is untouched by scanning.
            assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
            assert_eq!(result.rows().len(), 2);
            assert_eq!(result.completed(), HashSet::from([0, 1]));
            for (row, scenario) in result.rows().iter().zip(&scenarios) {
                assert_eq!(row.scenario, scenario.name);
                assert_eq!(
                    row.total_accesses,
                    scenario.workload().total_accesses() as u64
                );
            }
            // And the recovered rows verify against the batch they came
            // from.
            verify_resume_rows(&scenarios, result.rows()).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_resume_rows_rejects_changed_access_counts() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let rows = vec![RecordedRow {
            index: 0,
            scenario: scenarios[0].name.clone(),
            total_accesses: scenarios[0].workload().total_accesses() as u64,
        }];
        verify_resume_rows(&scenarios, &rows).unwrap();

        // The same file resumed after an `--accesses`-style override: the
        // recorded volume no longer matches what the spec would produce.
        let overridden: Vec<Scenario> = scenarios
            .iter()
            .map(|s| s.clone().with_accesses(99))
            .collect();
        let err = verify_resume_rows(&overridden, &rows).unwrap_err();
        assert_eq!(err.field(), "resume");
        assert!(err.reason().contains("total accesses"), "{err}");
    }

    #[test]
    fn verify_resume_rows_rejects_renamed_scenarios_and_stray_indices() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let err = verify_resume_rows(
            &scenarios,
            &[RecordedRow {
                index: 0,
                scenario: "someone-else/baseline".into(),
                total_accesses: 1,
            }],
        )
        .unwrap_err();
        assert!(err.reason().contains("edited"), "{err}");

        let err = verify_resume_rows(
            &scenarios,
            &[RecordedRow {
                index: 9,
                scenario: "x".into(),
                total_accesses: 1,
            }],
        )
        .unwrap_err();
        assert!(err.reason().contains("wrong file"), "{err}");
    }

    #[test]
    fn files_recorded_by_other_builds_are_refused_untouched() {
        let dir = std::env::temp_dir().join(format!("allarm-schema-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // A CSV with an older/foreign column header: scan must refuse
        // (resuming would silently truncate its rows) and not modify it.
        let csv_path = dir.join("old.csv");
        let old_csv =
            "index,scenario,workload,policy,runtime_ns\n0,barnes/baseline,barnes,baseline,12\n";
        std::fs::write(&csv_path, old_csv).unwrap();
        let err = CsvFileSink::scan(&csv_path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), old_csv);

        // A JSONL row whose report lacks fields of the current schema:
        // same refusal, file untouched.
        let jsonl_path = dir.join("old.jsonl");
        let old_jsonl =
            "{\"index\":0,\"scenario\":\"barnes/baseline\",\"report\":{\"total_accesses\":5}}\n";
        std::fs::write(&jsonl_path, old_jsonl).unwrap();
        let err = JsonlFileSink::scan(&jsonl_path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(std::fs::read_to_string(&jsonl_path).unwrap(), old_jsonl);

        // An empty existing file still scans as fresh.
        let empty = dir.join("empty.csv");
        std::fs::write(&empty, "").unwrap();
        assert!(CsvFileSink::scan(&empty).unwrap().rows().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_fields_unescapes_quoted_names() {
        assert_eq!(
            csv_fields("0,\"say \"\"hi\"\",now\",c").unwrap(),
            vec!["0", "say \"hi\",now", "c"]
        );
        assert_eq!(csv_fields("a,b").unwrap(), vec!["a", "b"]);
        assert_eq!(csv_fields("0,\"open"), None);
    }

    #[test]
    fn jsonl_line_matches_the_sink_encoding() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(1).collect();
        let results = BatchRunner::with_threads(1).run(&scenarios).unwrap();
        let mut sink = JsonlSink::new();
        sink.record(&results.entries[0]);
        assert_eq!(
            sink.into_string(),
            format!("{}\n", results.entries[0].jsonl_line())
        );
    }

    #[test]
    fn cancel_before_the_first_row_records_nothing() {
        let scenarios = tiny_grid();
        let cancel = AtomicBool::new(true);
        for threads in [1, 4] {
            let mut sink = VecSink::new();
            let outcome = BatchRunner::with_threads(threads)
                .run_with_sink_cancellable(&scenarios, &mut sink, &cancel)
                .unwrap();
            assert_eq!(outcome, RunOutcome::Cancelled);
            assert!(sink.into_entries().is_empty());
        }
    }

    #[test]
    fn unset_cancel_flag_completes_identically_to_a_plain_run() {
        let scenarios = tiny_grid();
        let reference = BatchRunner::with_threads(4).run(&scenarios).unwrap();
        let cancel = AtomicBool::new(false);
        let mut sink = VecSink::new();
        let outcome = BatchRunner::with_threads(4)
            .run_with_sink_cancellable(&scenarios, &mut sink, &cancel)
            .unwrap();
        assert_eq!(outcome, RunOutcome::Completed);
        assert_eq!(sink.into_entries(), reference.entries);
    }

    #[test]
    fn mid_batch_cancellation_records_a_gap_free_identical_prefix() {
        let scenarios = tiny_grid();
        let reference = BatchRunner::with_threads(1).run(&scenarios).unwrap();

        /// Flips the cancel flag after the second record reaches the sink.
        struct TrippingSink<'a> {
            entries: Vec<BatchEntry>,
            cancel: &'a AtomicBool,
        }
        impl ResultSink for TrippingSink<'_> {
            fn record(&mut self, entry: &BatchEntry) {
                self.entries.push(entry.clone());
                if self.entries.len() == 2 {
                    self.cancel.store(true, Ordering::Relaxed);
                }
            }
        }

        // Serial execution is fully deterministic: exactly the two rows
        // recorded before the flag flipped, then a clean stop.
        let cancel = AtomicBool::new(false);
        let mut sink = TrippingSink {
            entries: Vec::new(),
            cancel: &cancel,
        };
        let outcome = BatchRunner::with_threads(1)
            .run_with_sink_cancellable(&scenarios, &mut sink, &cancel)
            .unwrap();
        assert_eq!(outcome, RunOutcome::Cancelled);
        assert_eq!(sink.entries.as_slice(), &reference.entries[..2]);

        // Parallel execution may let in-flight rows finish (cancellation is
        // checked before each claim), but whatever is recorded must be a
        // gap-free byte-identical prefix, with the outcome matching.
        let cancel = AtomicBool::new(false);
        let mut sink = TrippingSink {
            entries: Vec::new(),
            cancel: &cancel,
        };
        let outcome = BatchRunner::with_threads(4)
            .run_with_sink_cancellable(&scenarios, &mut sink, &cancel)
            .unwrap();
        assert!(sink.entries.len() >= 2);
        assert_eq!(
            sink.entries.as_slice(),
            &reference.entries[..sink.entries.len()]
        );
        assert_eq!(
            outcome,
            if sink.entries.len() < scenarios.len() {
                RunOutcome::Cancelled
            } else {
                RunOutcome::Completed
            }
        );
    }

    /// A warm-fork grid: two trace lengths under both policies, sharing
    /// one warm-up prefix per policy.
    fn warm_grid() -> Vec<Scenario> {
        ScenarioGrid::new(Scenario::quick_test(
            Benchmark::Barnes,
            AllocationPolicy::Baseline,
        ))
        .accesses(vec![300, 500])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .warmup(800)
        .expand()
    }

    #[test]
    fn fork_from_warm_reports_are_byte_identical_to_cold_runs() {
        let scenarios = warm_grid();
        assert_eq!(scenarios.len(), 4);
        // Every grid point actually gets a warm image (the planner did
        // not silently fall back cold).
        let runner = BatchRunner::with_threads(1);
        let workloads: Vec<Option<WorkloadHandle>> = scenarios
            .iter()
            .map(|s| Some(WorkloadHandle::Materialized(Arc::new(s.workload()))))
            .collect();
        let warm = runner.plan_warm_images(&scenarios, &workloads);
        assert!(warm.iter().all(Option::is_some), "a member fell back cold");
        // Each policy forms its own group: baseline points share one
        // image, ALLARM points another.
        assert!(Arc::ptr_eq(
            warm[0].as_ref().unwrap(),
            warm[2].as_ref().unwrap()
        ));
        assert!(Arc::ptr_eq(
            warm[1].as_ref().unwrap(),
            warm[3].as_ref().unwrap()
        ));
        assert!(!Arc::ptr_eq(
            warm[0].as_ref().unwrap(),
            warm[1].as_ref().unwrap()
        ));

        // The forked sweep equals the cold sweep byte for byte — asserted
        // internally by verify-forks and externally against a run with
        // the warm-up hint stripped.
        let forked = runner
            .clone()
            .with_verify_forks(true)
            .run(&scenarios)
            .unwrap();
        let cold_scenarios: Vec<Scenario> = scenarios
            .iter()
            .map(|s| s.clone().with_warmup_accesses(0))
            .collect();
        let cold = BatchRunner::with_threads(1).run(&cold_scenarios).unwrap();
        for (f, c) in forked.entries.iter().zip(&cold.entries) {
            assert_eq!(f.report, c.report, "{} diverged", f.scenario.name);
        }
    }

    #[test]
    fn oversized_warmups_fall_back_to_cold_runs() {
        // A warm-up longer than every member's trace cannot be honoured;
        // the batch must still complete, cold and correct.
        let scenarios: Vec<Scenario> = warm_grid()
            .into_iter()
            .map(|s| s.with_warmup_accesses(1_000_000))
            .collect();
        let runner = BatchRunner::with_threads(1);
        let workloads: Vec<Option<WorkloadHandle>> = scenarios
            .iter()
            .map(|s| Some(WorkloadHandle::Materialized(Arc::new(s.workload()))))
            .collect();
        let warm = runner.plan_warm_images(&scenarios, &workloads);
        assert!(warm.iter().all(Option::is_none));
        let results = runner.run(&scenarios).unwrap();
        let cold: Vec<Scenario> = scenarios
            .iter()
            .map(|s| s.clone().with_warmup_accesses(0))
            .collect();
        let reference = BatchRunner::with_threads(1).run(&cold).unwrap();
        for (f, c) in results.entries.iter().zip(&reference.entries) {
            assert_eq!(f.report, c.report);
        }
    }

    #[test]
    fn checkpointed_sweeps_restore_mid_run_and_match_a_full_run() {
        let scenarios = ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand();
        let dir = std::env::temp_dir().join(format!("allarm-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl_path = dir.join("sweep.jsonl");
        let snap_path = dir.join("sweep.jsonl.snap");

        // Reference: the full sweep, no checkpointing.
        let mut reference = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut reference)
            .unwrap();
        let reference = reference.into_string();

        // A checkpointed sweep records identical rows and leaves the last
        // row's snapshot on disk.
        let mut sink = JsonlFileSink::create(&jsonl_path).unwrap();
        BatchRunner::with_threads(1)
            .with_checkpoint_every(900, &snap_path)
            .run_with_sink(&scenarios, &mut sink)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&jsonl_path).unwrap(), reference);
        let last = SimSnapshot::read_from(&snap_path).unwrap();
        assert_eq!(last.header().row_index, 1);
        assert_eq!(last.header().scenario, scenarios[1].name);

        // Emulate an interruption during row 1: the output holds row 0,
        // the snapshot holds row 1 mid-run. Restoring and resuming must
        // finish the file byte-identical to the uninterrupted sweep.
        std::fs::write(
            &jsonl_path,
            format!("{}\n", reference.lines().next().unwrap()),
        )
        .unwrap();
        let mut mid: Option<SimSnapshot> = None;
        scenarios[1]
            .build()
            .unwrap()
            .run_with_checkpoints(&scenarios[1].workload(), 900, |s| {
                if mid.is_none() {
                    mid = Some(s);
                }
            });
        let snap = Arc::new(mid.unwrap().with_row(1, &scenarios[1].name));
        let scan = JsonlFileSink::scan(&jsonl_path).unwrap();
        verify_resume_rows(&scenarios, scan.rows()).unwrap();
        assert_eq!(snap.header().row_index as usize, scan.rows().len());
        let mut sink = JsonlFileSink::resume_scanned(&jsonl_path, &scan).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink_restored(&scenarios, &mut sink, &scan.completed(), Some((1, snap)))
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&jsonl_path).unwrap(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restore_rejects_snapshots_that_do_not_name_a_pending_row() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let mut mid: Option<SimSnapshot> = None;
        scenarios[0]
            .build()
            .unwrap()
            .run_with_checkpoints(&scenarios[0].workload(), 900, |s| {
                if mid.is_none() {
                    mid = Some(s);
                }
            });
        let plain = Arc::new(mid.unwrap());
        let runner = BatchRunner::with_threads(1);

        // Not a batch checkpoint at all.
        let mut sink = VecSink::new();
        let err = runner
            .run_with_sink_restored(
                &scenarios,
                &mut sink,
                &HashSet::new(),
                Some((0, plain.clone())),
            )
            .unwrap_err();
        assert_eq!(err.field(), "restore");
        assert!(err.reason().contains("checkpoint-every"), "{err}");

        // Stale: the named row is already recorded.
        let tagged = Arc::new((*plain).clone().with_row(0, &scenarios[0].name));
        let err = runner
            .run_with_sink_restored(
                &scenarios,
                &mut sink,
                &HashSet::from([0]),
                Some((0, tagged.clone())),
            )
            .unwrap_err();
        assert!(err.reason().contains("stale"), "{err}");

        // Renamed: the snapshot's scenario is not the batch's at that
        // index.
        let renamed = Arc::new((*plain).clone().with_row(0, "someone-else/baseline"));
        let err = runner
            .run_with_sink_restored(&scenarios, &mut sink, &HashSet::new(), Some((0, renamed)))
            .unwrap_err();
        assert!(err.reason().contains("edited"), "{err}");

        // Out of range.
        let err = runner
            .run_with_sink_restored(&scenarios, &mut sink, &HashSet::new(), Some((9, tagged)))
            .unwrap_err();
        assert!(err.reason().contains("wrong snapshot"), "{err}");
        assert!(
            sink.into_entries().is_empty(),
            "the sink must stay untouched"
        );
    }

    #[test]
    fn resuming_against_the_wrong_file_is_rejected() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let completed = HashSet::from([0usize, 7]);
        let mut sink = VecSink::new();
        let err = BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap_err();
        assert_eq!(err.field(), "resume");
        assert!(sink.into_entries().is_empty());
    }
}

//! Parallel execution of scenario sets.
//!
//! [`BatchRunner`] takes the scenarios a [`crate::ScenarioGrid`] expands to
//! (or any hand-built list), validates them all up front, and executes them
//! across OS threads. Each scenario is a pure function of its own fields —
//! the workload is materialized from `(spec, seed)` and the simulator is
//! single-threaded — so parallel and serial execution produce **identical**
//! results; the runner additionally delivers results to the [`ResultSink`]
//! in scenario order regardless of completion order, so sinks observe the
//! same sequence either way.
//!
//! Workloads are materialized once per distinct `(spec, seed)` pair and
//! shared between scenarios via [`Arc`], so a policy-comparison grid does
//! not pay trace generation twice per benchmark.
//!
//! Results can stay in memory ([`VecSink`], [`JsonlSink`]) or stream to
//! disk as they complete ([`JsonlFileSink`], [`CsvFileSink`]), so long
//! sweeps persist partial results instead of losing everything on an
//! interruption.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use allarm_types::error::ConfigError;
use allarm_workloads::Workload;

use crate::metrics::{Comparison, SimReport};
use crate::scenario::Scenario;

/// One completed scenario: the descriptor and its report.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Position of the scenario in the submitted batch.
    pub index: usize,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The full metric report of the run.
    pub report: SimReport,
}

/// Consumes completed runs, in scenario order.
///
/// The runner guarantees `record` is called with strictly increasing
/// `entry.index`, for both serial and parallel execution, so a sink never
/// needs to reorder.
pub trait ResultSink {
    /// Receives the next completed entry.
    fn record(&mut self, entry: &BatchEntry);
}

/// A sink that simply collects every entry.
#[derive(Debug, Default)]
pub struct VecSink {
    entries: Vec<BatchEntry>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consumes the sink, returning the collected entries.
    pub fn into_entries(self) -> Vec<BatchEntry> {
        self.entries
    }
}

impl ResultSink for VecSink {
    fn record(&mut self, entry: &BatchEntry) {
        self.entries.push(entry.clone());
    }
}

/// A sink that renders each entry as one JSON object per line (JSONL),
/// ready for downstream tooling. Each line carries the scenario `index`
/// and `scenario` name alongside the `report`, so sweep rows that differ
/// only in swept machine axes (e.g. probe-filter coverage) stay
/// distinguishable without relying on line order.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Consumes the sink, returning the JSONL document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl ResultSink for JsonlSink {
    fn record(&mut self, entry: &BatchEntry) {
        self.out.push_str(&jsonl_line(entry));
        self.out.push('\n');
    }
}

/// The lines of a partially-written output file that are certainly
/// complete. Every record is written as `line + '\n'` and flushed
/// sequentially, so a file not ending in a newline was cut mid-record —
/// its final line must be dropped even when the truncation happens to
/// leave parseable content (e.g. a CSV row chopped inside its last
/// numeric field).
fn complete_lines(text: &str) -> std::vec::IntoIter<&str> {
    let mut lines: Vec<&str> = text.lines().collect();
    if !text.is_empty() && !text.ends_with('\n') {
        lines.pop();
    }
    lines.into_iter()
}

/// Extracts the scenario index from one [`JsonlSink`]-format line, if the
/// line is complete and well-formed.
fn jsonl_index(line: &str) -> Option<usize> {
    let value: serde::Value = serde_json::from_str(line).ok()?;
    match value.get("index")? {
        serde::Value::U64(index) => Some(*index as usize),
        _ => None,
    }
}

/// Renders one batch entry as the line format of [`JsonlSink`].
fn jsonl_line(entry: &BatchEntry) -> String {
    use serde::{Serialize as _, Value};
    let line = Value::Map(vec![
        ("index".to_string(), Value::U64(entry.index as u64)),
        (
            "scenario".to_string(),
            Value::Str(entry.scenario.name.clone()),
        ),
        ("report".to_string(), entry.report.to_value()),
    ]);
    serde_json::to_string(&line)
}

/// Shared plumbing of the file-backed sinks: a flushed-per-record writer
/// with deferred I/O errors. Errors are captured at the failing record and
/// surfaced by `finish` (the [`ResultSink`] trait keeps `record` infallible
/// so in-memory sinks stay trivial).
#[derive(Debug)]
struct FileWriter {
    out: std::io::BufWriter<std::fs::File>,
    error: Option<std::io::Error>,
}

impl FileWriter {
    fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(FileWriter {
            out: std::io::BufWriter::new(std::fs::File::create(path)?),
            error: None,
        })
    }

    /// Reopens `path` for a resumed sweep: the still-parseable prefix
    /// `keep` (everything up to the first line an interruption may have
    /// truncated) is rewritten in one buffered pass with a single flush —
    /// the per-record flush discipline only matters for records written
    /// *after* this point — and subsequent records append after it.
    fn reopen(path: impl AsRef<std::path::Path>, keep: &[&str]) -> std::io::Result<Self> {
        use std::io::Write as _;
        let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
        for line in keep {
            writeln!(out, "{line}")?;
        }
        out.flush()?;
        Ok(FileWriter { out, error: None })
    }

    /// Writes one line and flushes, so partially completed sweeps survive
    /// an interruption. After the first error, further writes are skipped.
    fn write_line(&mut self, line: &str) {
        use std::io::Write as _;
        if self.error.is_some() {
            return;
        }
        let result = writeln!(self.out, "{line}").and_then(|()| self.out.flush());
        if let Err(e) = result {
            self.error = Some(e);
        }
    }

    fn finish(mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        match self.error.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

/// A sink that streams each entry to a file as one JSON object per line
/// (the [`JsonlSink`] format), flushing after every record. I/O errors are
/// deferred and surfaced by [`JsonlFileSink::finish`].
#[derive(Debug)]
pub struct JsonlFileSink {
    out: FileWriter,
}

impl JsonlFileSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    ///
    /// Returns the error of the failed create.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlFileSink {
            out: FileWriter::create(path)?,
        })
    }

    /// Reopens a partially-written output file for a resumed sweep.
    ///
    /// Complete lines are kept (a truncated final line from the
    /// interruption is dropped) and the set of scenario indices they
    /// record is returned, so the runner can skip those grid points and
    /// the sweep continues instead of restarting. A missing file resumes
    /// as an empty one.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed read or reopen.
    pub fn resume(path: impl AsRef<std::path::Path>) -> std::io::Result<(Self, HashSet<usize>)> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut keep = Vec::new();
        let mut completed = HashSet::new();
        for line in complete_lines(&text) {
            let Some(index) = jsonl_index(line) else {
                // The first malformed line is where the interruption hit;
                // everything after it is untrustworthy.
                break;
            };
            keep.push(line);
            completed.insert(index);
        }
        let sink = JsonlFileSink {
            out: FileWriter::reopen(path, &keep)?,
        };
        Ok((sink, completed))
    }

    /// Flushes and closes the sink, surfacing the first I/O error hit
    /// while recording.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the flush error.
    pub fn finish(self) -> std::io::Result<()> {
        self.out.finish()
    }
}

impl ResultSink for JsonlFileSink {
    fn record(&mut self, entry: &BatchEntry) {
        self.out.write_line(&jsonl_line(entry));
    }
}

/// A sink that streams each entry to a CSV file (header plus one flat row
/// per run), flushing after every record. The column set is
/// [`SimReport::CSV_HEADER`]; the header is written at create time, so
/// even an empty batch leaves a well-formed file. I/O errors are deferred
/// and surfaced by [`CsvFileSink::finish`].
#[derive(Debug)]
pub struct CsvFileSink {
    out: FileWriter,
}

impl CsvFileSink {
    /// Creates (truncating) the output file and writes the header row.
    ///
    /// # Errors
    ///
    /// Returns the error of the failed create.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let mut out = FileWriter::create(path)?;
        out.write_line(&Self::header());
        Ok(CsvFileSink { out })
    }

    fn header() -> String {
        format!("index,scenario,{}", SimReport::CSV_HEADER)
    }

    /// Reopens a partially-written CSV file for a resumed sweep: the
    /// header and every complete row are kept, the recorded scenario
    /// indices are returned, and new rows append after them. A missing or
    /// headerless file resumes as a fresh one.
    ///
    /// # Errors
    ///
    /// Returns the error of a failed read or reopen.
    pub fn resume(path: impl AsRef<std::path::Path>) -> std::io::Result<(Self, HashSet<usize>)> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let mut lines = complete_lines(&text);
        let mut keep = vec![Self::header()];
        let mut completed = HashSet::new();
        if lines.next() == Some(Self::header().as_str()) {
            let columns = Self::header().split(',').count();
            for line in lines {
                // A complete row parses a leading index and has the full
                // column count (commas inside quoted fields — escaped
                // scenario names — don't split); the first row that
                // doesn't marks the interruption point.
                let Some(index) = line.split(',').next().and_then(|f| f.parse().ok()) else {
                    break;
                };
                let Some(fields) = csv_field_count(line) else {
                    break; // truncated inside a quoted field
                };
                if fields != columns {
                    break;
                }
                keep.push(line.to_string());
                completed.insert(index);
            }
        }
        let keep: Vec<&str> = keep.iter().map(String::as_str).collect();
        let sink = CsvFileSink {
            out: FileWriter::reopen(path, &keep)?,
        };
        Ok((sink, completed))
    }

    /// Flushes and closes the sink, surfacing the first I/O error hit
    /// while recording.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error, or the flush error.
    pub fn finish(self) -> std::io::Result<()> {
        self.out.finish()
    }
}

impl ResultSink for CsvFileSink {
    fn record(&mut self, entry: &BatchEntry) {
        let row = format!(
            "{},{},{}",
            entry.index,
            csv_escape(&entry.scenario.name),
            entry.report.csv_row()
        );
        self.out.write_line(&row);
    }
}

/// Counts the fields of one CSV row, honouring [`csv_escape`]-style
/// quoting (a comma inside a quoted field does not split; `""` is an
/// escaped quote). Returns `None` if the row ends inside a quoted field —
/// i.e. it was truncated mid-write.
fn csv_field_count(line: &str) -> Option<usize> {
    let mut fields = 1;
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields += 1,
            _ => {}
        }
    }
    if in_quotes {
        None
    } else {
        Some(fields)
    }
}

/// Quotes a CSV field if it contains a comma, quote or newline.
fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// The ordered results of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// Completed entries, in scenario order.
    pub entries: Vec<BatchEntry>,
}

impl BatchResults {
    /// The reports, in scenario order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.entries.iter().map(|e| &e.report)
    }

    /// Number of completed scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pairs adjacent baseline/ALLARM runs of the same configuration into
    /// [`Comparison`]s — the shape every per-benchmark figure consumes.
    ///
    /// Two consecutive entries form a pair when they differ *only* in
    /// allocation policy (baseline first), which is exactly how
    /// [`crate::ScenarioGrid`] orders its expansion (policy is the
    /// fastest-varying axis).
    pub fn paired(&self) -> Vec<Comparison> {
        let mut comparisons = Vec::new();
        let mut i = 0;
        while i + 1 < self.entries.len() {
            let a = &self.entries[i];
            let b = &self.entries[i + 1];
            if same_but_policy(&a.scenario, &b.scenario)
                && !a.scenario.policy.is_allarm()
                && b.scenario.policy.is_allarm()
            {
                comparisons.push(Comparison::new(a.report.clone(), b.report.clone()));
                i += 2;
            } else {
                i += 1;
            }
        }
        comparisons
    }
}

/// True if the two scenarios are identical apart from allocation policy
/// (and the name, which encodes the policy).
fn same_but_policy(a: &Scenario, b: &Scenario) -> bool {
    a.machine == b.machine
        && a.numa_policy == b.numa_policy
        && a.workload == b.workload
        && a.seed == b.seed
}

/// Executes scenario sets, optionally in parallel.
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, BatchRunner, Scenario, ScenarioGrid};
/// use allarm_workloads::Benchmark;
///
/// let grid = ScenarioGrid::new(
///         Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline)
///             .with_accesses(500))
///     .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm]);
/// let results = BatchRunner::new().run(&grid.expand()).unwrap();
/// assert_eq!(results.len(), 2);
/// let pairs = results.paired();
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].baseline.policy, "baseline");
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    num_threads: usize,
}

impl BatchRunner {
    /// Creates a runner using every available hardware thread.
    pub fn new() -> Self {
        BatchRunner {
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Creates a runner with an explicit worker count (clamped to ≥ 1).
    /// `with_threads(1)` is the serial runner.
    pub fn with_threads(num_threads: usize) -> Self {
        BatchRunner {
            num_threads: num_threads.max(1),
        }
    }

    /// The worker count this runner uses.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Validates and runs every scenario, returning ordered results.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch; nothing runs
    /// unless every scenario validates.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<BatchResults, ConfigError> {
        let mut sink = VecSink::new();
        self.run_with_sink(scenarios, &mut sink)?;
        Ok(BatchResults {
            entries: sink.into_entries(),
        })
    }

    /// Validates and runs every scenario, streaming ordered entries into
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch; the sink is not
    /// touched unless every scenario validates.
    pub fn run_with_sink(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
    ) -> Result<(), ConfigError> {
        self.run_with_sink_resuming(scenarios, sink, &HashSet::new())
    }

    /// Like [`BatchRunner::run_with_sink`], but skips the scenarios whose
    /// indices are in `completed` — the resume path of an interrupted
    /// sweep. Skipped indices are neither executed nor re-recorded; the
    /// remaining entries still reach the sink in ascending index order.
    /// Pair with [`JsonlFileSink::resume`] / [`CsvFileSink::resume`],
    /// which recover the completed set from a partially-written output
    /// file.
    ///
    /// Completion is matched **by index**: a resumed run must use the same
    /// scenario set, in the same order, as the interrupted one (reordering
    /// the grid between runs silently pairs old rows with new scenarios).
    /// An index beyond the batch is rejected, which catches the common
    /// mistake of resuming against the wrong output file.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch (every scenario
    /// is validated, including completed ones — a resumed sweep must be
    /// the same sweep), or an error if `completed` names an index the
    /// batch does not have; the sink is not touched unless validation
    /// passes.
    pub fn run_with_sink_resuming(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
        completed: &HashSet<usize>,
    ) -> Result<(), ConfigError> {
        for scenario in scenarios {
            scenario.validate()?;
        }
        if let Some(stray) = completed.iter().find(|&&i| i >= scenarios.len()) {
            return Err(ConfigError::new(
                "resume",
                format!(
                    "output file records scenario index {stray} but the batch has only {} \
                     scenario(s) — resuming against the wrong file?",
                    scenarios.len()
                ),
            ));
        }

        // Materialize each distinct (spec, seed) workload exactly once, in
        // scenario order, and share it across the batch. Scenarios already
        // completed by a resumed sweep never materialize (None) — unless a
        // still-pending sibling shares the workload, in which case that
        // sibling generates it.
        let mut workloads: Vec<Option<Arc<Workload>>> = Vec::with_capacity(scenarios.len());
        for (index, scenario) in scenarios.iter().enumerate() {
            if completed.contains(&index) {
                workloads.push(None);
                continue;
            }
            let existing = (0..index).find(|&i| {
                workloads[i].is_some()
                    && scenarios[i].workload == scenario.workload
                    && scenarios[i].seed == scenario.seed
            });
            match existing {
                Some(i) => workloads.push(workloads[i].clone()),
                None => workloads.push(Some(Arc::new(scenario.workload()))),
            }
        }

        // Split the thread budget between scenario-level workers and the
        // intra-run shards each simulation will spawn: a batch of scenarios
        // that each shard 4-wide gets a quarter of the workers. Sizing by
        // the batch *maximum* is deliberately conservative — it can starve
        // a mixed batch's serial scenarios of workers, but never
        // oversubscribes the host. Neither level of parallelism affects
        // the results, only the wall clock.
        let max_sim_threads = scenarios
            .iter()
            .map(|s| s.sim_threads.resolve())
            .max()
            .unwrap_or(1)
            .max(1);
        let workers = (self.num_threads / max_sim_threads).clamp(1, scenarios.len().max(1));
        if workers <= 1 {
            for (index, scenario) in scenarios.iter().enumerate() {
                let Some(workload) = &workloads[index] else {
                    continue; // already completed by the resumed sweep
                };
                let report = scenario.build().expect("validated above").run(workload);
                sink.record(&BatchEntry {
                    index,
                    scenario: scenario.clone(),
                    report,
                });
            }
            return Ok(());
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, SimReport)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let workloads = &workloads;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= scenarios.len() {
                        return;
                    }
                    let Some(workload) = &workloads[index] else {
                        continue; // already completed by the resumed sweep
                    };
                    let report = scenarios[index]
                        .build()
                        .expect("validated above")
                        .run(workload);
                    // The receiver outlives the scope; a send failure means
                    // the main thread panicked, so just stop.
                    if tx.send((index, report)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);

            // Buffer completions and flush the ready prefix in order, so the
            // sink sees the same sequence as a serial run; resumed indices
            // flush as no-ops.
            let mut pending: Vec<Option<SimReport>> = vec![None; scenarios.len()];
            let mut next_to_flush = 0;
            for (index, report) in rx {
                pending[index] = Some(report);
                while next_to_flush < pending.len() {
                    if completed.contains(&next_to_flush) {
                        next_to_flush += 1;
                        continue;
                    }
                    let Some(report) = pending[next_to_flush].take() else {
                        break;
                    };
                    sink.record(&BatchEntry {
                        index: next_to_flush,
                        scenario: scenarios[next_to_flush].clone(),
                        report,
                    });
                    next_to_flush += 1;
                }
            }
        });
        Ok(())
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGrid;
    use allarm_coherence::AllocationPolicy;
    use allarm_workloads::Benchmark;
    use serde::Deserialize as _;

    fn tiny_grid() -> Vec<Scenario> {
        ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(400),
        )
        .benchmarks(vec![Benchmark::Barnes, Benchmark::Cholesky])
        .pf_coverages(vec![512 * 1024, 128 * 1024])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let scenarios = tiny_grid();
        assert_eq!(scenarios.len(), 8);
        let serial = BatchRunner::with_threads(1).run(&scenarios).unwrap();
        let parallel = BatchRunner::with_threads(4).run(&scenarios).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 8);
        // Ordered by scenario index.
        for (i, entry) in serial.entries.iter().enumerate() {
            assert_eq!(entry.index, i);
            assert_eq!(entry.scenario, scenarios[i]);
        }
    }

    #[test]
    fn paired_yields_one_comparison_per_configuration() {
        let results = BatchRunner::new().run(&tiny_grid()).unwrap();
        let pairs = results.paired();
        assert_eq!(pairs.len(), 4);
        for cmp in &pairs {
            assert_eq!(cmp.baseline.policy, "baseline");
            assert_eq!(cmp.allarm.policy, "allarm");
            assert_eq!(cmp.baseline.total_accesses, cmp.allarm.total_accesses);
        }
    }

    #[test]
    fn workloads_are_shared_not_regenerated() {
        // Both policies of one configuration must replay the identical
        // trace: total accesses match exactly.
        let scenarios = ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Dedup, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand();
        let results = BatchRunner::new().run(&scenarios).unwrap();
        assert_eq!(
            results.entries[0].report.total_accesses,
            results.entries[1].report.total_accesses
        );
    }

    #[test]
    fn invalid_scenario_fails_the_whole_batch_before_running() {
        let mut scenarios = tiny_grid();
        scenarios[3].machine.l2.ways = 0;
        let err = BatchRunner::new().run(&scenarios).unwrap_err();
        assert_eq!(err.field(), "l2.ways");
    }

    #[test]
    fn sinks_observe_ordered_entries() {
        let scenarios = tiny_grid();
        let mut sink = JsonlSink::new();
        BatchRunner::with_threads(4)
            .run_with_sink(&scenarios, &mut sink)
            .unwrap();
        let text = sink.into_string();
        assert_eq!(text.lines().count(), scenarios.len());
        // Lines carry the scenario identity and parse back as reports, in
        // scenario order.
        let first: serde::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("index"), Some(&serde::Value::U64(0)));
        assert_eq!(
            first.get("scenario"),
            Some(&serde::Value::Str(scenarios[0].name.clone()))
        );
        let report = SimReport::from_value(first.get("report").unwrap()).unwrap();
        assert_eq!(report.workload, "barnes");
        assert_eq!(report.policy, "baseline");
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(BatchRunner::with_threads(0).num_threads(), 1);
        assert!(BatchRunner::new().num_threads() >= 1);
    }

    #[test]
    fn file_sinks_stream_ordered_results_to_disk() {
        let scenarios = ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand();
        let dir = std::env::temp_dir().join(format!("allarm-sink-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl_path = dir.join("results.jsonl");
        let csv_path = dir.join("results.csv");

        let mut jsonl = JsonlFileSink::create(&jsonl_path).unwrap();
        BatchRunner::with_threads(2)
            .run_with_sink(&scenarios, &mut jsonl)
            .unwrap();
        jsonl.finish().unwrap();

        let mut csv = CsvFileSink::create(&csv_path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut csv)
            .unwrap();
        csv.finish().unwrap();

        // The JSONL file matches the in-memory sink byte for byte.
        let mut reference = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut reference)
            .unwrap();
        let on_disk = std::fs::read_to_string(&jsonl_path).unwrap();
        assert_eq!(on_disk, reference.into_string());

        // The CSV file has a header plus one row per scenario, with the
        // scenario identity in the leading columns.
        let csv_text = std::fs::read_to_string(&csv_path).unwrap();
        let lines: Vec<&str> = csv_text.lines().collect();
        assert_eq!(lines.len(), scenarios.len() + 1);
        assert!(lines[0].starts_with("index,scenario,workload,policy,"));
        assert!(lines[1].starts_with("0,barnes/baseline,barnes,baseline,"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows must have the same arity"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn worker_budget_is_split_with_intra_run_threads() {
        // A batch whose scenarios each shard 2-wide must still produce the
        // same results (the split is a scheduling decision, not a semantic
        // one).
        let scenarios: Vec<Scenario> = tiny_grid()
            .into_iter()
            .map(|s| s.with_sim_threads(2))
            .collect();
        let wide = BatchRunner::with_threads(4).run(&scenarios).unwrap();
        let narrow = BatchRunner::with_threads(1).run(&scenarios).unwrap();
        let plain = BatchRunner::with_threads(4).run(&tiny_grid()).unwrap();
        assert_eq!(wide.len(), narrow.len());
        for ((w, n), p) in wide.entries.iter().zip(&narrow.entries).zip(&plain.entries) {
            assert_eq!(w.report, n.report);
            // sim_threads never changes the report itself.
            assert_eq!(w.report, p.report);
        }
    }

    #[test]
    fn resumed_jsonl_sweep_skips_recorded_indices_and_matches_a_full_run() {
        let scenarios = tiny_grid();
        let dir = std::env::temp_dir().join(format!("allarm-resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");

        // The reference: the full sweep in one go.
        let mut reference = JsonlSink::new();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut reference)
            .unwrap();
        let reference = reference.into_string();

        // An "interrupted" sweep: the first three complete lines plus a
        // truncated fourth, as a crash mid-write would leave.
        let prefix: String = reference
            .lines()
            .take(3)
            .map(|l| format!("{l}\n"))
            .collect();
        let truncated = &reference.lines().nth(3).unwrap()[..20];
        std::fs::write(&path, format!("{prefix}{truncated}")).unwrap();

        let (mut sink, completed) = JsonlFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0, 1, 2]));
        BatchRunner::with_threads(2)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();

        // The resumed file is byte-identical to the uninterrupted sweep:
        // the truncated line is gone, indices 0-2 were not re-run, 3-7
        // were appended in order.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resumed_csv_sweep_completes_the_remaining_rows() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(4).collect();
        let dir = std::env::temp_dir().join(format!("allarm-resume-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.csv");

        let mut full = CsvFileSink::create(&path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&path).unwrap();

        // Keep the header and two rows; chop the third row mid-field.
        let keep: Vec<&str> = reference.lines().take(3).collect();
        let broken = &reference.lines().nth(3).unwrap()[..5];
        std::fs::write(&path, format!("{}\n{broken}", keep.join("\n"))).unwrap();

        let (mut sink, completed) = CsvFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0, 1]));
        BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_of_missing_or_fresh_files_starts_from_scratch() {
        let dir = std::env::temp_dir().join(format!("allarm-resume-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (jsonl, completed) = JsonlFileSink::resume(dir.join("missing.jsonl")).unwrap();
        assert!(completed.is_empty());
        jsonl.finish().unwrap();
        let (csv, completed) = CsvFileSink::resume(dir.join("missing.csv")).unwrap();
        assert!(completed.is_empty());
        csv.finish().unwrap();
        // The fresh CSV still gets its header.
        let text = std::fs::read_to_string(dir.join("missing.csv")).unwrap();
        assert!(text.starts_with("index,scenario,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_escape_quotes_only_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_field_count_honours_quoting() {
        assert_eq!(csv_field_count("a,b,c"), Some(3));
        assert_eq!(csv_field_count("0,\"a,b\",c"), Some(3));
        assert_eq!(csv_field_count("0,\"say \"\"hi\"\",now\",c"), Some(3));
        // Truncated inside a quoted field.
        assert_eq!(csv_field_count("0,\"a,b"), None);
        assert_eq!(csv_field_count(""), Some(1));
    }

    #[test]
    fn csv_resume_handles_comma_bearing_scenario_names() {
        let mut scenarios: Vec<Scenario> = tiny_grid().into_iter().take(3).collect();
        for (i, s) in scenarios.iter_mut().enumerate() {
            s.name = format!("swept, point {i}");
        }
        let dir = std::env::temp_dir().join(format!("allarm-resume-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quoted.csv");

        let mut full = CsvFileSink::create(&path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&path).unwrap();

        // Truncate the second row inside its quoted name field.
        let keep: Vec<&str> = reference.lines().take(2).collect();
        std::fs::write(&path, format!("{}\n1,\"swept", keep.join("\n"))).unwrap();
        let (mut sink, completed) = CsvFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0]));
        BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rows_truncated_inside_the_final_field_are_dropped() {
        // A crash mid-write of the last numeric column loses no comma, so
        // column counting alone cannot see it — the missing trailing
        // newline is what gives it away.
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let dir = std::env::temp_dir().join(format!("allarm-resume-t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tail.csv");

        let mut full = CsvFileSink::create(&path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&path).unwrap();

        // Chop the final row three characters short, keeping every comma.
        let chopped = &reference[..reference.len() - 3];
        assert_eq!(chopped.lines().count(), reference.lines().count());
        std::fs::write(&path, chopped).unwrap();

        let (mut sink, completed) = CsvFileSink::resume(&path).unwrap();
        assert_eq!(completed, HashSet::from([0]));
        BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap();
        sink.finish().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), reference);

        // Same property for JSONL.
        let jsonl_path = dir.join("tail.jsonl");
        let mut full = JsonlFileSink::create(&jsonl_path).unwrap();
        BatchRunner::with_threads(1)
            .run_with_sink(&scenarios, &mut full)
            .unwrap();
        full.finish().unwrap();
        let reference = std::fs::read_to_string(&jsonl_path).unwrap();
        std::fs::write(&jsonl_path, &reference[..reference.len() - 2]).unwrap();
        let (sink, completed) = JsonlFileSink::resume(&jsonl_path).unwrap();
        assert_eq!(completed, HashSet::from([0]));
        sink.finish().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resuming_against_the_wrong_file_is_rejected() {
        let scenarios: Vec<Scenario> = tiny_grid().into_iter().take(2).collect();
        let completed = HashSet::from([0usize, 7]);
        let mut sink = VecSink::new();
        let err = BatchRunner::with_threads(1)
            .run_with_sink_resuming(&scenarios, &mut sink, &completed)
            .unwrap_err();
        assert_eq!(err.field(), "resume");
        assert!(sink.into_entries().is_empty());
    }
}

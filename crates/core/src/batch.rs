//! Parallel execution of scenario sets.
//!
//! [`BatchRunner`] takes the scenarios a [`crate::ScenarioGrid`] expands to
//! (or any hand-built list), validates them all up front, and executes them
//! across OS threads. Each scenario is a pure function of its own fields —
//! the workload is materialized from `(spec, seed)` and the simulator is
//! single-threaded — so parallel and serial execution produce **identical**
//! results; the runner additionally delivers results to the [`ResultSink`]
//! in scenario order regardless of completion order, so sinks observe the
//! same sequence either way.
//!
//! Workloads are materialized once per distinct `(spec, seed)` pair and
//! shared between scenarios via [`Arc`], so a policy-comparison grid does
//! not pay trace generation twice per benchmark.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use allarm_types::error::ConfigError;
use allarm_workloads::Workload;

use crate::metrics::{Comparison, SimReport};
use crate::scenario::Scenario;

/// One completed scenario: the descriptor and its report.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Position of the scenario in the submitted batch.
    pub index: usize,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// The full metric report of the run.
    pub report: SimReport,
}

/// Consumes completed runs, in scenario order.
///
/// The runner guarantees `record` is called with strictly increasing
/// `entry.index`, for both serial and parallel execution, so a sink never
/// needs to reorder.
pub trait ResultSink {
    /// Receives the next completed entry.
    fn record(&mut self, entry: &BatchEntry);
}

/// A sink that simply collects every entry.
#[derive(Debug, Default)]
pub struct VecSink {
    entries: Vec<BatchEntry>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Consumes the sink, returning the collected entries.
    pub fn into_entries(self) -> Vec<BatchEntry> {
        self.entries
    }
}

impl ResultSink for VecSink {
    fn record(&mut self, entry: &BatchEntry) {
        self.entries.push(entry.clone());
    }
}

/// A sink that renders each entry as one JSON object per line (JSONL),
/// ready for downstream tooling. Each line carries the scenario `index`
/// and `scenario` name alongside the `report`, so sweep rows that differ
/// only in swept machine axes (e.g. probe-filter coverage) stay
/// distinguishable without relying on line order.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Consumes the sink, returning the JSONL document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl ResultSink for JsonlSink {
    fn record(&mut self, entry: &BatchEntry) {
        use serde::{Serialize as _, Value};
        let line = Value::Map(vec![
            ("index".to_string(), Value::U64(entry.index as u64)),
            (
                "scenario".to_string(),
                Value::Str(entry.scenario.name.clone()),
            ),
            ("report".to_string(), entry.report.to_value()),
        ]);
        self.out.push_str(&serde_json::to_string(&line));
        self.out.push('\n');
    }
}

/// The ordered results of one batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResults {
    /// Completed entries, in scenario order.
    pub entries: Vec<BatchEntry>,
}

impl BatchResults {
    /// The reports, in scenario order.
    pub fn reports(&self) -> impl Iterator<Item = &SimReport> {
        self.entries.iter().map(|e| &e.report)
    }

    /// Number of completed scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pairs adjacent baseline/ALLARM runs of the same configuration into
    /// [`Comparison`]s — the shape every per-benchmark figure consumes.
    ///
    /// Two consecutive entries form a pair when they differ *only* in
    /// allocation policy (baseline first), which is exactly how
    /// [`crate::ScenarioGrid`] orders its expansion (policy is the
    /// fastest-varying axis).
    pub fn paired(&self) -> Vec<Comparison> {
        let mut comparisons = Vec::new();
        let mut i = 0;
        while i + 1 < self.entries.len() {
            let a = &self.entries[i];
            let b = &self.entries[i + 1];
            if same_but_policy(&a.scenario, &b.scenario)
                && !a.scenario.policy.is_allarm()
                && b.scenario.policy.is_allarm()
            {
                comparisons.push(Comparison::new(a.report.clone(), b.report.clone()));
                i += 2;
            } else {
                i += 1;
            }
        }
        comparisons
    }
}

/// True if the two scenarios are identical apart from allocation policy
/// (and the name, which encodes the policy).
fn same_but_policy(a: &Scenario, b: &Scenario) -> bool {
    a.machine == b.machine
        && a.numa_policy == b.numa_policy
        && a.workload == b.workload
        && a.seed == b.seed
}

/// Executes scenario sets, optionally in parallel.
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, BatchRunner, Scenario, ScenarioGrid};
/// use allarm_workloads::Benchmark;
///
/// let grid = ScenarioGrid::new(
///         Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline)
///             .with_accesses(500))
///     .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm]);
/// let results = BatchRunner::new().run(&grid.expand()).unwrap();
/// assert_eq!(results.len(), 2);
/// let pairs = results.paired();
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].baseline.policy, "baseline");
/// ```
#[derive(Debug, Clone)]
pub struct BatchRunner {
    num_threads: usize,
}

impl BatchRunner {
    /// Creates a runner using every available hardware thread.
    pub fn new() -> Self {
        BatchRunner {
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Creates a runner with an explicit worker count (clamped to ≥ 1).
    /// `with_threads(1)` is the serial runner.
    pub fn with_threads(num_threads: usize) -> Self {
        BatchRunner {
            num_threads: num_threads.max(1),
        }
    }

    /// The worker count this runner uses.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Validates and runs every scenario, returning ordered results.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch; nothing runs
    /// unless every scenario validates.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<BatchResults, ConfigError> {
        let mut sink = VecSink::new();
        self.run_with_sink(scenarios, &mut sink)?;
        Ok(BatchResults {
            entries: sink.into_entries(),
        })
    }

    /// Validates and runs every scenario, streaming ordered entries into
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] across the batch; the sink is not
    /// touched unless every scenario validates.
    pub fn run_with_sink(
        &self,
        scenarios: &[Scenario],
        sink: &mut dyn ResultSink,
    ) -> Result<(), ConfigError> {
        for scenario in scenarios {
            scenario.validate()?;
        }

        // Materialize each distinct (spec, seed) workload exactly once, in
        // scenario order, and share it across the batch.
        let mut workloads: Vec<Arc<Workload>> = Vec::with_capacity(scenarios.len());
        for scenario in scenarios {
            let existing = scenarios[..workloads.len()]
                .iter()
                .position(|s| s.workload == scenario.workload && s.seed == scenario.seed);
            match existing {
                Some(i) => workloads.push(Arc::clone(&workloads[i])),
                None => workloads.push(Arc::new(scenario.workload())),
            }
        }

        let workers = self.num_threads.min(scenarios.len().max(1));
        if workers <= 1 {
            for (index, scenario) in scenarios.iter().enumerate() {
                let report = scenario
                    .build()
                    .expect("validated above")
                    .run(&workloads[index]);
                sink.record(&BatchEntry {
                    index,
                    scenario: scenario.clone(),
                    report,
                });
            }
            return Ok(());
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, SimReport)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let workloads = &workloads;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= scenarios.len() {
                        return;
                    }
                    let report = scenarios[index]
                        .build()
                        .expect("validated above")
                        .run(&workloads[index]);
                    // The receiver outlives the scope; a send failure means
                    // the main thread panicked, so just stop.
                    if tx.send((index, report)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);

            // Buffer completions and flush the ready prefix in order, so the
            // sink sees the same sequence as a serial run.
            let mut pending: Vec<Option<SimReport>> = vec![None; scenarios.len()];
            let mut next_to_flush = 0;
            for (index, report) in rx {
                pending[index] = Some(report);
                while next_to_flush < pending.len() {
                    let Some(report) = pending[next_to_flush].take() else {
                        break;
                    };
                    sink.record(&BatchEntry {
                        index: next_to_flush,
                        scenario: scenarios[next_to_flush].clone(),
                        report,
                    });
                    next_to_flush += 1;
                }
            }
        });
        Ok(())
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioGrid;
    use allarm_coherence::AllocationPolicy;
    use allarm_workloads::Benchmark;
    use serde::Deserialize as _;

    fn tiny_grid() -> Vec<Scenario> {
        ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Baseline).with_accesses(400),
        )
        .benchmarks(vec![Benchmark::Barnes, Benchmark::Cholesky])
        .pf_coverages(vec![512 * 1024, 128 * 1024])
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let scenarios = tiny_grid();
        assert_eq!(scenarios.len(), 8);
        let serial = BatchRunner::with_threads(1).run(&scenarios).unwrap();
        let parallel = BatchRunner::with_threads(4).run(&scenarios).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 8);
        // Ordered by scenario index.
        for (i, entry) in serial.entries.iter().enumerate() {
            assert_eq!(entry.index, i);
            assert_eq!(entry.scenario, scenarios[i]);
        }
    }

    #[test]
    fn paired_yields_one_comparison_per_configuration() {
        let results = BatchRunner::new().run(&tiny_grid()).unwrap();
        let pairs = results.paired();
        assert_eq!(pairs.len(), 4);
        for cmp in &pairs {
            assert_eq!(cmp.baseline.policy, "baseline");
            assert_eq!(cmp.allarm.policy, "allarm");
            assert_eq!(cmp.baseline.total_accesses, cmp.allarm.total_accesses);
        }
    }

    #[test]
    fn workloads_are_shared_not_regenerated() {
        // Both policies of one configuration must replay the identical
        // trace: total accesses match exactly.
        let scenarios = ScenarioGrid::new(
            Scenario::quick_test(Benchmark::Dedup, AllocationPolicy::Baseline).with_accesses(300),
        )
        .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm])
        .expand();
        let results = BatchRunner::new().run(&scenarios).unwrap();
        assert_eq!(
            results.entries[0].report.total_accesses,
            results.entries[1].report.total_accesses
        );
    }

    #[test]
    fn invalid_scenario_fails_the_whole_batch_before_running() {
        let mut scenarios = tiny_grid();
        scenarios[3].machine.l2.ways = 0;
        let err = BatchRunner::new().run(&scenarios).unwrap_err();
        assert_eq!(err.field(), "l2.ways");
    }

    #[test]
    fn sinks_observe_ordered_entries() {
        let scenarios = tiny_grid();
        let mut sink = JsonlSink::new();
        BatchRunner::with_threads(4)
            .run_with_sink(&scenarios, &mut sink)
            .unwrap();
        let text = sink.into_string();
        assert_eq!(text.lines().count(), scenarios.len());
        // Lines carry the scenario identity and parse back as reports, in
        // scenario order.
        let first: serde::Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("index"), Some(&serde::Value::U64(0)));
        assert_eq!(
            first.get("scenario"),
            Some(&serde::Value::Str(scenarios[0].name.clone()))
        );
        let report = SimReport::from_value(first.get("report").unwrap()).unwrap();
        assert_eq!(report.workload, "barnes");
        assert_eq!(report.policy, "baseline");
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(BatchRunner::with_threads(0).num_threads(), 1);
        assert!(BatchRunner::new().num_threads() >= 1);
    }
}

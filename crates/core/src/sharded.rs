//! The deterministic sharded execution kernel behind [`crate::Simulator`].
//!
//! The machine is partitioned by home node ([`ShardPlan`]): each shard owns
//! a contiguous block of nodes — their directory slices and probe filters
//! ([`DirectoryShard`]), their DRAM channels, and the cores pinned to those
//! nodes (a node's whole core block, on multi-core-node topologies) — and
//! runs on its own OS thread. Cross-shard events travel through
//! per-destination mailboxes ([`Exchange`]), so each consumer drains
//! exactly what it owns. Execution proceeds in *rounds*, each a pair of
//! barrier-separated phases:
//!
//! 1. **Core phase** (parallel, shard-local state only): every shard first
//!    applies the directory replies its cores received last round (fills,
//!    upgrade grants, clock advances, capacity-victim collection), then
//!    replays each of its cores forward through private-cache hits until
//!    the core blocks — on a coherence request, on a page fault (a touch
//!    the NUMA allocator cannot resolve read-only), or on trace end.
//!    Everything emitted crossing a shard boundary is a timestamped event.
//! 2. **Directory phase** (parallel by home node): pending page faults are
//!    applied to the allocator in deterministic `(time, core, seq)` order
//!    by the lead shard; concurrently every shard drains the coherence
//!    events bound for its home nodes — sorted by the same key — through
//!    its directory slice, probing remote caches through per-core locks.
//!
//! **Why the result is independent of the shard count.** The core phase
//! touches only state owned by the running shard (its cores' caches and
//! cursors) plus read-only views, so its outcome per core is a pure
//! function of round-start state. The directory phase orders each home
//! node's events by a total order ([`MergeKey`]) that does not mention
//! shards, and transactions of *different* homes never touch the same
//! cache line (a line has exactly one home), so their line-local cache
//! mutations and counter increments commute. Every merged statistic is a
//! sum. Hence `sim_threads = N` produces byte-identical reports to
//! `sim_threads = 1` — the batch-level guarantee of the runner, extended
//! down into a single simulation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};

use allarm_cache::{AccessOutcome, CoherenceNeed, CoherenceState, CoreCaches};
use allarm_coherence::{
    AllocationPolicy, CoherenceEvent, CoherenceOp, CoherenceReply, CoherenceRequest,
    DirectoryController, DirectoryShard, RequestKind,
};
use allarm_engine::{merge_events, CoreScheduler, Keyed, MergeKey, PhaseBarrier, ShardPlan};
use allarm_mem::{NumaAllocator, NumaPolicy};
use allarm_noc::NocStats;
use allarm_types::addr::{LineAddr, VirtAddr};
use allarm_types::config::MachineConfig;
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::topology::Topology;
use allarm_types::Nanos;
use allarm_workloads::Workload;

use crate::system::{shared_caches, ShardSystem};

/// A touch the allocator could not resolve read-only: a first touch of a
/// page, or a pending next-touch re-homing decision. Carried as a
/// [`Keyed`] event and resolved centrally, in [`merge_events`] order,
/// between the two phases of a round.
#[derive(Debug, Clone, Copy)]
struct PageFault {
    vaddr: VirtAddr,
    toucher: NodeId,
}

/// The cross-shard mailboxes. Events and replies are routed **per
/// destination**: `events[dst][src]` holds what shard `src` produced for
/// shard `dst` this round, so a consumer drains exactly its own column —
/// O(events) per round — instead of scanning every shard's outbox for the
/// pieces it owns (O(shards × events), the scheme this replaced). Page
/// faults keep a single slot per source because they have a single
/// consumer (the lead shard).
///
/// Each mailbox is written by its source shard in one phase and read by
/// its destination shard in the next; the phase barriers guarantee the
/// accesses never overlap, the mutexes make that safe in the type system.
struct Exchange {
    /// `events[dst][src]`: coherence events homed on shard `dst`'s nodes.
    events: Vec<Vec<Mutex<Vec<CoherenceEvent>>>>,
    /// `replies[dst][src]`: directory replies for cores pinned to `dst`.
    replies: Vec<Vec<Mutex<Vec<CoherenceReply>>>>,
    faults: Vec<Mutex<Vec<Keyed<PageFault>>>>,
}

impl Exchange {
    fn new(num_shards: usize) -> Self {
        fn matrix<T>(n: usize) -> Vec<Vec<Mutex<Vec<T>>>> {
            (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect()
        }
        Exchange {
            events: matrix(num_shards),
            replies: matrix(num_shards),
            faults: (0..num_shards).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }
}

/// An in-flight coherence transaction of one core: issued in the core
/// phase, resolved by a [`CoherenceReply`] next round.
#[derive(Debug, Clone, Copy)]
struct Pending {
    line: LineAddr,
    private_latency: Nanos,
}

/// One workload slot (a software thread pinned to a core) as a shard sees
/// it.
#[derive(Debug)]
struct Slot {
    /// Index into `workload.threads`.
    thread: usize,
    core: CoreId,
    node: NodeId,
    cursor: usize,
    /// Monotone event counter; the final tie-breaker of this core's
    /// [`MergeKey`]s.
    seq: u32,
    pending: Option<Pending>,
    faulted: bool,
}

impl Slot {
    fn next_key(&mut self, time: Nanos) -> MergeKey {
        let key = MergeKey::new(time, u32::from(self.core.raw()), self.seq);
        self.seq += 1;
        key
    }
}

/// Everything one shard accumulates that the final report needs.
struct ShardOutput {
    controllers: Vec<DirectoryController>,
    noc: NocStats,
    dram_reads: u64,
    dram_writes: u64,
    clocks: Vec<Nanos>,
    accesses: u64,
}

/// The merged outcome of a run, consumed by the report builder.
pub(crate) struct KernelOutput {
    pub(crate) controllers: Vec<DirectoryController>,
    pub(crate) caches: Vec<CoreCaches>,
    pub(crate) noc: NocStats,
    pub(crate) dram_reads: u64,
    pub(crate) dram_writes: u64,
    pub(crate) makespan: Nanos,
    pub(crate) total_accesses: u64,
}

/// Runs `workload` on the machine with `num_shards` worker threads and
/// returns the merged state. The output is byte-identical for every
/// `num_shards` value.
pub(crate) fn execute(
    config: &MachineConfig,
    policy: AllocationPolicy,
    numa_policy: NumaPolicy,
    workload: &Workload,
    num_shards: usize,
) -> KernelOutput {
    let num_nodes = config.num_nodes() as usize;
    let plan = ShardPlan::new(num_nodes, num_shards);
    let num_shards = plan.num_shards();

    let caches = shared_caches(config);
    let allocator = RwLock::new(NumaAllocator::new(num_nodes, config.dram, numa_policy));
    let exchange = Exchange::new(num_shards);
    let barrier = PhaseBarrier::new(num_shards);
    let live_slots = AtomicUsize::new(workload.threads.len());

    let mut outputs: Vec<Option<ShardOutput>> = Vec::new();
    outputs.resize_with(num_shards, || None);
    let outputs = Mutex::new(outputs);

    std::thread::scope(|scope| {
        let run_shard = |shard_id: usize| {
            let mut worker = ShardWorker::new(
                shard_id,
                &plan,
                config,
                policy,
                workload,
                &caches,
                &allocator,
                &exchange,
                &barrier,
                &live_slots,
            );
            worker.run();
            outputs.lock().expect("output collection poisoned")[shard_id] =
                Some(worker.into_output());
        };
        // Shard 0 (the fault leader) runs on the calling thread; a serial
        // run (`num_shards == 1`) therefore spawns nothing.
        let handles: Vec<_> = (1..num_shards)
            .map(|shard_id| scope.spawn(move || run_shard(shard_id)))
            .collect();
        run_shard(0);
        for handle in handles {
            handle.join().expect("a shard worker panicked");
        }
    });

    merge(caches, outputs.into_inner().expect("outputs poisoned"))
}

/// Folds the per-shard outputs (in shard order, which is node order) into
/// the single-machine view. Every field is a commutative sum or a max, so
/// the merge order is immaterial to the values — it is fixed anyway.
fn merge(caches: Vec<Mutex<CoreCaches>>, outputs: Vec<Option<ShardOutput>>) -> KernelOutput {
    let mut controllers = Vec::new();
    let mut noc = NocStats::new();
    let mut dram_reads = 0;
    let mut dram_writes = 0;
    let mut makespan = Nanos::ZERO;
    let mut total_accesses = 0;
    for output in outputs {
        let output = output.expect("every shard reports an output");
        controllers.extend(output.controllers);
        noc.merge(&output.noc);
        dram_reads += output.dram_reads;
        dram_writes += output.dram_writes;
        makespan = makespan.max(output.clocks.iter().copied().max().unwrap_or(Nanos::ZERO));
        total_accesses += output.accesses;
    }
    KernelOutput {
        controllers,
        caches: caches
            .into_iter()
            .map(|c| c.into_inner().expect("cache lock poisoned"))
            .collect(),
        noc,
        dram_reads,
        dram_writes,
        makespan,
        total_accesses,
    }
}

/// One shard's execution state for the duration of a run.
struct ShardWorker<'a> {
    shard_id: usize,
    num_shards: usize,
    topology: Topology,
    /// Node index -> owning shard, for per-destination event routing.
    shard_of_node: Vec<usize>,
    scheduler: CoreScheduler,
    slots: Vec<Slot>,
    /// Global core index -> local slot index, for reply delivery.
    slot_of_core: Vec<Option<usize>>,
    dir: DirectoryShard,
    sys: ShardSystem<'a>,
    workload: &'a Workload,
    caches: &'a [Mutex<CoreCaches>],
    allocator: &'a RwLock<NumaAllocator>,
    exchange: &'a Exchange,
    barrier: &'a PhaseBarrier,
    /// Count of slots that have not yet exhausted their traces, across all
    /// shards; the shared termination condition.
    live_slots: &'a AtomicUsize,
    l1_latency: Nanos,
    l2_latency: Nanos,
    accesses: u64,
}

impl<'a> ShardWorker<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shard_id: usize,
        plan: &ShardPlan,
        config: &MachineConfig,
        policy: AllocationPolicy,
        workload: &'a Workload,
        caches: &'a [Mutex<CoreCaches>],
        allocator: &'a RwLock<NumaAllocator>,
        exchange: &'a Exchange,
        barrier: &'a PhaseBarrier,
        live_slots: &'a AtomicUsize,
    ) -> Self {
        let topology = config.topology();
        let nodes = plan.nodes_of_shard(shard_id);
        // A slot belongs to the shard owning the node its core is pinned
        // to; with several cores per node, a node's whole core block moves
        // together, so the determinism argument is untouched.
        let slots: Vec<Slot> = workload
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| nodes.contains(&topology.node_of_core(t.core).index()))
            .map(|(thread, t)| Slot {
                thread,
                core: t.core,
                node: topology.node_of_core(t.core),
                cursor: 0,
                seq: 0,
                pending: None,
                faulted: false,
            })
            .collect();
        let mut slot_of_core = vec![None; config.num_cores as usize];
        for (local, slot) in slots.iter().enumerate() {
            assert!(
                slot_of_core[slot.core.index()].replace(local).is_none(),
                "workload pins two threads to core {}",
                slot.core.index()
            );
        }
        let shard_of_node = (0..plan.num_nodes())
            .map(|n| plan.shard_of_node(n))
            .collect();
        ShardWorker {
            shard_id,
            num_shards: plan.num_shards(),
            topology,
            shard_of_node,
            scheduler: CoreScheduler::new(slots.len()),
            slots,
            slot_of_core,
            dir: DirectoryShard::hierarchical(
                nodes,
                &config.probe_filter,
                policy,
                topology.cores_per_node(),
            ),
            sys: ShardSystem::new(caches, config),
            workload,
            caches,
            allocator,
            exchange,
            barrier,
            live_slots,
            l1_latency: config.l1d.access_latency,
            l2_latency: config.l2.access_latency,
            accesses: 0,
        }
    }

    /// The round loop. Both phases of a round end on the shared barrier;
    /// the termination condition is read between rounds, when it is stable
    /// and identical for every shard.
    fn run(&mut self) {
        loop {
            self.core_phase();
            self.barrier.wait();
            if self.shard_id == 0 {
                self.apply_faults();
            }
            self.directory_phase();
            // The termination flag must be read while it is frozen: between
            // the barriers only directory phases run, and only core phases
            // retire slots. Reading *after* the end-of-round barrier would
            // race with faster shards already decrementing it in their next
            // core phase, leaving shards disagreeing on whether to exit.
            let done = self.live_slots.load(Ordering::Acquire) == 0;
            self.barrier.wait();
            if done {
                return;
            }
        }
    }

    /// Phase 1: deliver last round's replies to this shard's cores, then
    /// replay each runnable core forward until it blocks. Every emitted
    /// event goes straight into its destination shard's mailbox.
    fn core_phase(&mut self) {
        let mut outboxes: Vec<Vec<CoherenceEvent>> = vec![Vec::new(); self.num_shards];
        let mut faults: Vec<Keyed<PageFault>> = Vec::new();
        {
            let allocator = self.allocator.read().expect("allocator lock poisoned");
            self.deliver_replies(&allocator, &mut outboxes);
            while let Some(local) = self.scheduler.next_actor() {
                self.run_slot(local, &allocator, &mut outboxes, &mut faults);
            }
        }
        for (dst, outbox) in outboxes.into_iter().enumerate() {
            *self.exchange.events[dst][self.shard_id]
                .lock()
                .expect("event mailbox poisoned") = outbox;
        }
        *self.exchange.faults[self.shard_id]
            .lock()
            .expect("fault mailbox poisoned") = faults;
    }

    /// Applies every reply addressed to one of this shard's cores: install
    /// the data, surface capacity victims as eviction notices, advance the
    /// core's clock by the full access latency, and make it runnable again.
    fn deliver_replies(
        &mut self,
        allocator: &RwLockReadGuard<'_, NumaAllocator>,
        outboxes: &mut [Vec<CoherenceEvent>],
    ) {
        for mailbox in &self.exchange.replies[self.shard_id] {
            for reply in mailbox.lock().expect("reply mailbox poisoned").iter() {
                let local = self.slot_of_core[reply.core.index()]
                    .expect("replies are routed to the shard owning the core");
                let slot = &mut self.slots[local];
                let pending = slot
                    .pending
                    .take()
                    .expect("a reply implies an in-flight transaction");
                let total = pending.private_latency + reply.latency;
                self.scheduler.advance(local, total);
                self.scheduler.unpark(local);
                let completed = self.scheduler.time_of(local);

                let mut caches = self.caches[slot.core.index()]
                    .lock()
                    .expect("cache lock poisoned");
                if reply.carries_data {
                    caches.fill(pending.line, reply.fill_state);
                } else if !caches.grant_write(pending.line) {
                    // The Shared copy was invalidated while the upgrade was
                    // parked (an earlier-keyed writer won ownership of the
                    // line this round). The directory has already recorded
                    // this core as the new owner, so install the line
                    // Modified — the refetched data a real upgrade-miss
                    // reply would carry — keeping cache state and directory
                    // bookkeeping consistent.
                    caches.fill(pending.line, CoherenceState::Modified);
                }
                // Lines displaced entirely out of this core's hierarchy:
                // dirty (exclusively-owned) victims are written back, which
                // also notifies the home directory and frees its entry — the
                // baseline's eviction-notification optimisation. Clean
                // victims are dropped silently, as in the deployed Hammer
                // protocol, so their directory entries go stale until the
                // probe filter's own replacement recycles them. That stale
                // occupancy is precisely the pressure ALLARM removes for
                // thread-local data.
                for victim in caches.take_capacity_victims() {
                    if victim.state.is_dirty() {
                        let home = allocator.home_of_line(victim.addr);
                        let event = CoherenceEvent {
                            home,
                            key: slot.next_key(completed),
                            op: CoherenceOp::EvictNotice {
                                line: victim.addr,
                                core: slot.core,
                                dirty: true,
                            },
                        };
                        outboxes[self.shard_of_node[home.index()]].push(event);
                    }
                }
            }
        }
    }

    /// Replays one core until it blocks: on a coherence request, on a page
    /// fault, or on the end of its trace.
    fn run_slot(
        &mut self,
        local: usize,
        allocator: &RwLockReadGuard<'_, NumaAllocator>,
        outboxes: &mut [Vec<CoherenceEvent>],
        faults: &mut Vec<Keyed<PageFault>>,
    ) {
        let slot = &mut self.slots[local];
        slot.faulted = false;
        let trace = &self.workload.threads[slot.thread];
        let mut caches = self.caches[slot.core.index()]
            .lock()
            .expect("cache lock poisoned");
        // Hit latencies accumulate locally and commit to the scheduler in
        // one `advance` when the core blocks, so a long hit-run costs one
        // heap entry instead of one per access.
        let mut elapsed = Nanos::ZERO;
        loop {
            let Some(access) = trace.accesses.get(slot.cursor) else {
                self.scheduler.finish(local);
                self.scheduler.advance(local, elapsed);
                self.live_slots.fetch_sub(1, Ordering::AcqRel);
                return;
            };

            // Virtual-to-physical translation; an unmapped (or policy-
            // pending) page blocks the core until the fault is resolved in
            // the deterministic merge step.
            let Some(frame) = allocator.lookup(access.vaddr) else {
                faults.push(Keyed::new(
                    slot.next_key(self.scheduler.time_of(local) + elapsed),
                    PageFault {
                        vaddr: access.vaddr,
                        toucher: slot.node,
                    },
                ));
                slot.faulted = true;
                self.scheduler.park(local);
                self.scheduler.advance(local, elapsed);
                return;
            };
            let line = frame.line(access.vaddr);

            // Walk the private hierarchy.
            let need = caches.coherence_need(line, access.write);
            let outcome = caches.access(line, access.write);
            slot.cursor += 1;
            self.accesses += 1;
            let mut latency = self.l1_latency;
            if outcome != AccessOutcome::L1Hit {
                latency += self.l2_latency;
            }

            let Some(need) = need else {
                elapsed += latency;
                continue;
            };
            let kind = match need {
                CoherenceNeed::ReadMiss => RequestKind::GetS,
                CoherenceNeed::WriteMiss => RequestKind::GetX,
                CoherenceNeed::Upgrade => RequestKind::Upgrade,
            };
            let arrival = self.scheduler.time_of(local) + elapsed + latency;
            let event = CoherenceEvent {
                home: frame.home,
                key: slot.next_key(arrival),
                op: CoherenceOp::Request {
                    request: CoherenceRequest::new(line, kind, slot.core, slot.node),
                    arrival,
                },
            };
            outboxes[self.shard_of_node[frame.home.index()]].push(event);
            slot.pending = Some(Pending {
                line,
                private_latency: latency,
            });
            self.scheduler.park(local);
            self.scheduler.advance(local, elapsed);
            return;
        }
    }

    /// The lead shard resolves every page fault of the round, in merged
    /// `(time, core, seq)` order, against the allocator. This is the only
    /// serial section of a round; faults are rare after the working set is
    /// mapped.
    fn apply_faults(&mut self) {
        let faults = merge_events(self.exchange.faults.iter().map(|mailbox| {
            mailbox
                .lock()
                .expect("fault mailbox poisoned")
                .iter()
                .cloned()
                .collect()
        }));
        if faults.is_empty() {
            return;
        }
        let mut allocator = self.allocator.write().expect("allocator lock poisoned");
        for fault in faults {
            // The first fault in key order performs the allocation (or the
            // next-touch re-homing); later faults on the same page are
            // plain re-touches.
            allocator.translate(fault.payload.vaddr, fault.payload.toucher);
        }
    }

    /// Phase 2: drain the coherence events bound for this shard's home
    /// nodes through its directory slice, route each reply to the shard
    /// owning the requesting core, and unpark the cores that faulted (the
    /// lead shard has resolved their mappings by now... by the
    /// end-of-round barrier, which is what the next core phase waits on).
    fn directory_phase(&mut self) {
        // Drain this shard's own mailbox column: every event here is
        // already known to be ours, so the round costs O(own events), not
        // a scan of every shard's outbox.
        let mut inbox: Vec<CoherenceEvent> = Vec::new();
        for mailbox in &self.exchange.events[self.shard_id] {
            inbox.append(&mut mailbox.lock().expect("event mailbox poisoned"));
        }
        let replies = self.dir.process(inbox, &mut self.sys);
        let mut routed: Vec<Vec<CoherenceReply>> = vec![Vec::new(); self.num_shards];
        for reply in replies {
            let node = self.topology.node_of_core(reply.core);
            routed[self.shard_of_node[node.index()]].push(reply);
        }
        for (dst, replies) in routed.into_iter().enumerate() {
            *self.exchange.replies[dst][self.shard_id]
                .lock()
                .expect("reply mailbox poisoned") = replies;
        }

        for local in 0..self.slots.len() {
            if self.slots[local].faulted {
                self.scheduler.unpark(local);
            }
        }
    }

    /// Tears the worker down into the statistics the report needs.
    fn into_output(self) -> ShardOutput {
        let (noc, dram_reads, dram_writes) = self.sys.into_stats();
        ShardOutput {
            controllers: self.dir.into_controllers(),
            noc,
            dram_reads,
            dram_writes,
            clocks: self.scheduler.clocks().to_vec(),
            accesses: self.accesses,
        }
    }
}

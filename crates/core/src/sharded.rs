//! The deterministic sharded execution kernel behind [`crate::Simulator`].
//!
//! The machine is partitioned by home node ([`ShardPlan`]): each shard owns
//! a contiguous block of nodes — their directory slices and probe filters
//! ([`DirectoryShard`]), their DRAM channels, and the cores pinned to those
//! nodes (a node's whole core block, on multi-core-node topologies) — and
//! runs on its own OS thread. Cross-shard events travel through
//! per-destination mailboxes ([`Exchange`]), so each consumer drains
//! exactly what it owns. Execution proceeds in *rounds*, each a pair of
//! barrier-separated phases:
//!
//! 1. **Core phase** (parallel, shard-local state only): every shard first
//!    commits the directory replies its cores received last round (fills,
//!    upgrade grants, clock advances, capacity-victim collection) in
//!    per-core [`MergeKey`] order, then replays each of its cores forward
//!    through private-cache hits *and further coherence misses* until the
//!    core blocks. A core does not stop at its first miss: it keeps
//!    issuing requests for independent lines, accumulating an in-flight
//!    *miss window*, until it touches a line that is already in flight,
//!    fills its window (`miss_window.depth`, the MSHR count), runs past
//!    the round's time horizon, page-faults, or exhausts its trace.
//! 2. **Directory phase** (parallel by home node): pending page faults are
//!    applied to the allocator in deterministic `(time, core, seq)` order
//!    by the lead shard; concurrently every shard drains the coherence
//!    events bound for its home nodes — sorted by the same key — through
//!    its directory slice, probing remote caches through per-core locks.
//!
//! **The time horizon.** Batching several misses per round is what lets a
//! round carry several rounds' worth of traffic per barrier crossing, but
//! an unbounded window would let a fast core race arbitrarily far ahead of
//! the slowest one, reordering directory traffic relative to a short
//! window. The horizon pins that skew: at the end of every core phase each
//! shard publishes the minimum clock of its unfinished cores
//! ([`Exchange::min_clock`]); each shard folds the global minimum and sets
//! next round's horizon to `min + miss_window.horizon`. A core with a
//! non-empty window stops issuing once its local time passes the horizon.
//! A core's *first* miss of a round is never gated — the horizon bounds
//! window growth, not progress — so the kernel cannot deadlock.
//!
//! **Why the result is independent of the shard count.** The core phase
//! touches only state owned by the running shard (its cores' caches,
//! cursors and windows) plus read-only views, so the window a core issues
//! is a pure function of round-start state and the round horizon. The
//! horizon itself is a fold (min) over all cores' round-start clocks —
//! shard-count-invariant because the clocks are. The directory phase
//! orders each home node's events by a total order ([`MergeKey`]) that
//! does not mention shards or rounds, and transactions of *different*
//! homes never touch the same cache line (a line has exactly one home), so
//! their line-local cache mutations and counter increments commute.
//! Replies commit to each core in the same key order the requests were
//! issued in, so the core-side cache mutations replay identically too.
//! Every merged statistic is a sum, a max, or per-shard-identical. Hence
//! `sim_threads = N` produces byte-identical reports to `sim_threads = 1`
//! — the batch-level guarantee of the runner, extended down into a single
//! simulation.
//!
//! With `miss_window.depth = 1` (see [`MissWindowConfig::serial`]) every
//! window holds at most one miss and the horizon never engages, which
//! reproduces the unbatched kernel's timing bit-for-bit — the ablation
//! baseline for the `rounds_executed` counter.
//!
//! [`MissWindowConfig::serial`]: allarm_types::MissWindowConfig::serial

use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};

use allarm_cache::{
    AccessOutcome, CoherenceNeed, CoherenceState, CoreCaches, CoreCachesState, LlcSlice,
    SetAssocState,
};
use allarm_coherence::{
    AllocationPolicy, CoherenceEvent, CoherenceOp, CoherenceReply, CoherenceRequest,
    DirectoryController, DirectoryNodeState, DirectoryShard, RequestKind,
};
use allarm_engine::{merge_events, CoreScheduler, Keyed, MergeKey, PhaseBarrier, ShardPlan};
use allarm_mem::{NumaAllocator, NumaAllocatorState, NumaPolicy};
use allarm_noc::NocStats;
use allarm_types::addr::{LineAddr, VirtAddr};
use allarm_types::config::MachineConfig;
use allarm_types::ids::{CoreId, NodeId};
use allarm_types::topology::Topology;
use allarm_types::Nanos;
use allarm_workloads::{AccessSource, ThreadFeed};

use crate::system::{shared_caches, shared_llc, ShardSystem};

/// A touch the allocator could not resolve read-only: a first touch of a
/// page, or a pending next-touch re-homing decision. Carried as a
/// [`Keyed`] event and resolved centrally, in [`merge_events`] order,
/// between the two phases of a round.
#[derive(Debug, Clone, Copy)]
struct PageFault {
    vaddr: VirtAddr,
    toucher: NodeId,
}

/// The cross-shard mailboxes. Events and replies are routed **per
/// destination**: `events[dst][src]` holds what shard `src` produced for
/// shard `dst` this round, so a consumer drains exactly its own column —
/// O(events) per round — instead of scanning every shard's outbox for the
/// pieces it owns (O(shards × events), the scheme this replaced). Page
/// faults keep a single slot per source because they have a single
/// consumer (the lead shard).
///
/// Each mailbox is written by its source shard in one phase and read by
/// its destination shard in the next; the phase barriers guarantee the
/// accesses never overlap, the mutexes make that safe in the type system.
/// Producers swap their filled buffer with the drained-but-allocated one
/// left in the mailbox, so in steady state no mailbox traffic allocates.
struct Exchange {
    /// `events[dst][src]`: coherence events homed on shard `dst`'s nodes.
    events: Vec<Vec<Mutex<Vec<CoherenceEvent>>>>,
    /// `replies[dst][src]`: directory replies for cores pinned to `dst`.
    replies: Vec<Vec<Mutex<Vec<CoherenceReply>>>>,
    faults: Vec<Mutex<Vec<Keyed<PageFault>>>>,
    /// Per shard: the minimum clock of its live (unfinished) cores at the
    /// end of its core phase, or `u64::MAX` if none remain. Folded by
    /// every shard in the directory phase into next round's time horizon.
    /// Written before and read after a barrier, so never racy.
    min_clock: Vec<AtomicU64>,
}

impl Exchange {
    fn new(num_shards: usize) -> Self {
        fn matrix<T>(n: usize) -> Vec<Vec<Mutex<Vec<T>>>> {
            (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect()
        }
        Exchange {
            events: matrix(num_shards),
            replies: matrix(num_shards),
            faults: (0..num_shards).map(|_| Mutex::new(Vec::new())).collect(),
            min_clock: (0..num_shards).map(|_| AtomicU64::new(u64::MAX)).collect(),
        }
    }
}

/// One in-flight coherence transaction of one core: issued in the core
/// phase, resolved by the [`CoherenceReply`] carrying the same key next
/// round. The private-hierarchy latency of the triggering access is folded
/// into the core's clock when the window parks, so the reply only needs to
/// add the directory's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Pending {
    pub(crate) key: MergeKey,
    pub(crate) line: LineAddr,
}

/// One workload slot (a software thread pinned to a core) as a shard sees
/// it.
#[derive(Debug)]
struct Slot<'a> {
    /// Index into the source's thread list.
    thread: usize,
    core: CoreId,
    node: NodeId,
    /// This thread's record cursor into `feed`: a direct slice on the
    /// materialized path, a frame-at-a-time streaming decode on the v2
    /// trace path. Identical streams either way.
    feed: ThreadFeed<'a>,
    cursor: usize,
    /// Monotone event counter; the final tie-breaker of this core's
    /// [`MergeKey`]s.
    seq: u32,
    /// The in-flight miss window, in issue (= key) order. Every reply for
    /// the window arrives in the next directory phase, so the window is
    /// always empty again when the core next runs.
    window: Vec<Pending>,
    faulted: bool,
}

impl Slot<'_> {
    fn next_key(&mut self, time: Nanos) -> MergeKey {
        let key = MergeKey::new(time, u32::from(self.core.raw()), self.seq);
        self.seq += 1;
        key
    }
}

/// One workload thread's execution state, as captured at a checkpoint and
/// keyed by its index into `workload.threads` — canonical (per thread, not
/// per shard), so a snapshot restores onto any shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ThreadState {
    /// Index into `workload.threads`.
    pub(crate) thread: usize,
    /// The core the thread is pinned to (for cross-checking the workload).
    pub(crate) core: CoreId,
    /// The core's local clock.
    pub(crate) clock: Nanos,
    /// True if the core is parked (full/dependent window, horizon, or a
    /// trace that ended mid-window).
    pub(crate) parked: bool,
    /// True if the trace is exhausted and the window has drained.
    pub(crate) finished: bool,
    /// True if the core parked on a page fault this round.
    pub(crate) faulted: bool,
    /// Next access to replay.
    pub(crate) cursor: usize,
    /// Monotone event counter (MergeKey tie-breaker).
    pub(crate) seq: u32,
    /// The in-flight miss window, in issue order; its replies are in
    /// [`KernelState::replies`].
    pub(crate) window: Vec<Pending>,
}

/// The complete mid-run state of the kernel, captured at a frozen point
/// (the end of a round, after every directory phase and before any core
/// phase). Canonical: every collection is keyed by thread, node or core
/// index — never by shard — so the capture is byte-identical for every
/// `sim_threads` value and restores onto any.
#[derive(Debug, Clone)]
pub(crate) struct KernelState {
    /// Per-thread execution state, sorted by thread index.
    pub(crate) threads: Vec<ThreadState>,
    /// Per-home-node directory state (probe filter, counters, occupancy),
    /// indexed by node.
    pub(crate) dirs: Vec<DirectoryNodeState>,
    /// Per-core private-hierarchy state, indexed by core.
    pub(crate) caches: Vec<CoreCachesState>,
    /// Per-node shared LLC slice state, indexed by node. Empty when the
    /// machine's LLC is disabled — and then absent from the snapshot file,
    /// keeping LLC-less snapshots byte-identical to the previous format.
    pub(crate) llc: Vec<SetAssocState>,
    /// The NUMA page table and allocation cursors.
    pub(crate) allocator: NumaAllocatorState,
    /// Directory replies produced in the checkpoint round and not yet
    /// committed, sorted by `(core, key)` — the exact order the next core
    /// phase commits them in.
    pub(crate) replies: Vec<CoherenceReply>,
    /// Next round's issue cutoff (identical on every shard).
    pub(crate) round_horizon: Nanos,
    /// Accesses replayed so far (all shards, plus any earlier resume base).
    pub(crate) accesses: u64,
    /// Rounds executed so far.
    pub(crate) rounds: u64,
    /// Coherence events drained so far.
    pub(crate) events_merged: u64,
    /// Deepest miss window seen so far.
    pub(crate) max_window: u32,
    /// Network traffic accumulated so far.
    pub(crate) noc: NocStats,
    /// DRAM line reads so far.
    pub(crate) dram_reads: u64,
    /// DRAM writebacks so far.
    pub(crate) dram_writes: u64,
}

/// Counters a restored run starts from. Workers count from zero; the base
/// is added back when merging the final report *and* when assembling a
/// later checkpoint, so totals stay true across any number of
/// checkpoint/restore generations.
#[derive(Debug, Clone, Default)]
pub(crate) struct ResumeBase {
    accesses: u64,
    rounds: u64,
    events_merged: u64,
    max_window: u32,
    noc: NocStats,
    dram_reads: u64,
    dram_writes: u64,
}

impl ResumeBase {
    fn from_state(state: &KernelState) -> Self {
        ResumeBase {
            accesses: state.accesses,
            rounds: state.rounds,
            events_merged: state.events_merged,
            max_window: state.max_window,
            noc: state.noc.clone(),
            dram_reads: state.dram_reads,
            dram_writes: state.dram_writes,
        }
    }
}

/// The shard-local slice of a checkpoint, captured by each worker at the
/// frozen point and assembled into a [`KernelState`] by shard 0.
struct ShardPart {
    threads: Vec<ThreadState>,
    dirs: Vec<DirectoryNodeState>,
    noc: NocStats,
    dram_reads: u64,
    dram_writes: u64,
    events_merged: u64,
    max_window: u32,
}

/// Shared checkpoint coordination. The decision to checkpoint is taken at
/// the frozen point from `total` and `next_target`, which every shard reads
/// between the same two barriers — so the decision is uniform and every
/// shard performs the same barrier sequence.
struct CheckpointCtl {
    /// Capture whenever total accesses cross a multiple of this (0 = off).
    every: u64,
    /// Capture once total accesses reach this, then stop (`u64::MAX` = off).
    stop_at: u64,
    /// The next access total that triggers a capture.
    next_target: AtomicU64,
    /// Accesses replayed so far across all shards (including the resume
    /// base); shards add their per-round delta during the core phase, so
    /// the value is stable from the mid-round barrier to the next core
    /// phase — which covers the frozen point.
    total: AtomicU64,
    /// Set by shard 0 when `stop_at` was reached; every shard exits.
    stop: AtomicBool,
    /// Per-shard capture slots for the round being checkpointed.
    parts: Vec<Mutex<Option<ShardPart>>>,
    /// Where a `stop_at` capture lands for the caller.
    stashed: Mutex<Option<KernelState>>,
    /// Counters the run started from (non-zero after a restore).
    base: ResumeBase,
}

impl CheckpointCtl {
    fn new(every: u64, stop_at: u64, num_shards: usize, base: ResumeBase) -> Self {
        let first_every = match base.accesses.checked_div(every) {
            Some(done) => (done + 1) * every,
            None => u64::MAX,
        };
        CheckpointCtl {
            every,
            stop_at,
            next_target: AtomicU64::new(first_every.min(stop_at)),
            total: AtomicU64::new(base.accesses),
            stop: AtomicBool::new(false),
            parts: (0..num_shards).map(|_| Mutex::new(None)).collect(),
            stashed: Mutex::new(None),
            base,
        }
    }

    /// True if this run can ever checkpoint (gates the per-round atomics).
    fn active(&self) -> bool {
        self.every > 0 || self.stop_at != u64::MAX
    }
}

/// Everything one shard accumulates that the final report needs.
struct ShardOutput {
    controllers: Vec<DirectoryController>,
    noc: NocStats,
    dram_reads: u64,
    dram_writes: u64,
    clocks: Vec<Nanos>,
    accesses: u64,
    rounds: u64,
    events_merged: u64,
    max_window: u32,
}

/// The merged outcome of a run, consumed by the report builder.
pub(crate) struct KernelOutput {
    pub(crate) controllers: Vec<DirectoryController>,
    pub(crate) caches: Vec<CoreCaches>,
    /// Per-node shared LLC slices (empty when the LLC is disabled).
    pub(crate) llc: Vec<LlcSlice>,
    pub(crate) noc: NocStats,
    pub(crate) dram_reads: u64,
    pub(crate) dram_writes: u64,
    pub(crate) makespan: Nanos,
    pub(crate) total_accesses: u64,
    /// Barrier-to-barrier rounds the kernel executed; every shard runs the
    /// same count, so this is also each worker thread's round count.
    pub(crate) rounds_executed: u64,
    /// Coherence events drained through directory slices, summed over
    /// shards and rounds.
    pub(crate) events_merged: u64,
    /// Deepest miss window any core accumulated in a single round.
    pub(crate) max_window_depth: u32,
}

/// The result of a kernel run: the merged output (partial if the run was
/// stopped by a `stop_at` checkpoint) plus the stopping checkpoint, if one
/// was taken.
pub(crate) struct KernelRun {
    pub(crate) output: KernelOutput,
    pub(crate) stopped: Option<KernelState>,
}

/// Replays `source` on the machine with `num_shards` worker threads and
/// returns the merged state. The output is byte-identical for every
/// `num_shards` value — and, because both [`AccessSource`] kinds deliver
/// identical per-thread record streams, identical whether the source is a
/// materialized workload or a streaming v2 trace.
///
/// This is the general kernel entry: it optionally restores a mid-run state, emits a
/// checkpoint through `emit` whenever the access total crosses a multiple
/// of `every` (0 = never), and stops — stashing a final checkpoint in the
/// returned [`KernelRun`] — once the total reaches `stop_at`
/// (`u64::MAX` = run to completion).
///
/// # Panics
///
/// Panics if a restore state's geometry (threads, nodes, cores) does not
/// match the machine and workload; callers validate compatibility against
/// the snapshot header first.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_kernel(
    config: &MachineConfig,
    policy: AllocationPolicy,
    numa_policy: NumaPolicy,
    source: AccessSource<'_>,
    num_shards: usize,
    restore: Option<&KernelState>,
    every: u64,
    stop_at: u64,
    emit: &mut dyn FnMut(KernelState),
) -> KernelRun {
    let num_nodes = config.num_nodes() as usize;
    let topology = config.topology();
    let plan = ShardPlan::new(num_nodes, num_shards);
    let num_shards = plan.num_shards();

    let caches = shared_caches(config);
    let llc = shared_llc(config);
    let mut numa = NumaAllocator::new(num_nodes, config.dram, numa_policy);
    let mut live = source.num_threads();
    let mut base = ResumeBase::default();
    if let Some(state) = restore {
        assert_eq!(
            state.threads.len(),
            source.num_threads(),
            "snapshot thread count does not match the workload"
        );
        assert_eq!(
            state.caches.len(),
            caches.len(),
            "snapshot core count does not match the machine"
        );
        assert_eq!(
            state.dirs.len(),
            num_nodes,
            "snapshot node count does not match the machine"
        );
        assert_eq!(
            state.llc.len(),
            llc.len(),
            "snapshot LLC slice count does not match the machine"
        );
        numa.restore_state(&state.allocator);
        for (cache, cache_state) in caches.iter().zip(&state.caches) {
            cache
                .lock()
                .expect("cache lock poisoned")
                .restore_state(cache_state);
        }
        for (slice, slice_state) in llc.iter().zip(&state.llc) {
            slice
                .lock()
                .expect("LLC slice lock poisoned")
                .restore_state(slice_state);
        }
        live = state.threads.iter().filter(|t| !t.finished).count();
        base = ResumeBase::from_state(state);
    }
    let allocator = RwLock::new(numa);
    let exchange = Exchange::new(num_shards);
    if let Some(state) = restore {
        // The checkpoint round's un-committed replies go back into the
        // mailboxes of the shards owning their cores. All into source
        // column 0: the consumer drains every column before sorting, so
        // the column split carries no information.
        for &reply in &state.replies {
            let dst = plan.shard_of_node(topology.node_of_core(reply.core).index());
            exchange.replies[dst][0]
                .lock()
                .expect("reply mailbox poisoned")
                .push(reply);
        }
    }
    let barrier = PhaseBarrier::new(num_shards);
    let live_slots = AtomicUsize::new(live);
    let ctl = CheckpointCtl::new(every, stop_at, num_shards, base);

    let mut outputs: Vec<Option<ShardOutput>> = Vec::new();
    outputs.resize_with(num_shards, || None);
    let outputs = Mutex::new(outputs);

    std::thread::scope(|scope| {
        let run_shard = |shard_id: usize, emit: Option<&mut dyn FnMut(KernelState)>| {
            let mut worker = ShardWorker::new(
                shard_id,
                &plan,
                config,
                policy,
                source,
                &caches,
                &llc,
                &allocator,
                &exchange,
                &barrier,
                &live_slots,
                &ctl,
                restore,
            );
            worker.run(emit);
            outputs.lock().expect("output collection poisoned")[shard_id] =
                Some(worker.into_output());
        };
        // Shard 0 (the fault and checkpoint leader) runs on the calling
        // thread — which is why it alone gets the emit callback — and a
        // serial run (`num_shards == 1`) spawns nothing.
        let handles: Vec<_> = (1..num_shards)
            .map(|shard_id| scope.spawn(move || run_shard(shard_id, None)))
            .collect();
        run_shard(0, Some(emit));
        for handle in handles {
            handle.join().expect("a shard worker panicked");
        }
    });

    let output = merge(
        caches,
        llc,
        outputs.into_inner().expect("outputs poisoned"),
        &ctl.base,
    );
    KernelRun {
        output,
        stopped: ctl.stashed.into_inner().expect("checkpoint stash poisoned"),
    }
}

/// Folds the per-shard outputs (in shard order, which is node order) into
/// the single-machine view. Every field is a commutative sum or a max, so
/// the merge order is immaterial to the values — it is fixed anyway. The
/// resume base is added back so a restored run reports whole-run totals.
fn merge(
    caches: Vec<Mutex<CoreCaches>>,
    llc: Vec<Mutex<LlcSlice>>,
    outputs: Vec<Option<ShardOutput>>,
    base: &ResumeBase,
) -> KernelOutput {
    let mut controllers = Vec::new();
    let mut noc = base.noc.clone();
    let mut dram_reads = base.dram_reads;
    let mut dram_writes = base.dram_writes;
    let mut makespan = Nanos::ZERO;
    let mut total_accesses = base.accesses;
    let mut rounds_executed = 0;
    let mut events_merged = base.events_merged;
    let mut max_window_depth = base.max_window;
    for output in outputs {
        let output = output.expect("every shard reports an output");
        controllers.extend(output.controllers);
        noc.merge(&output.noc);
        dram_reads += output.dram_reads;
        dram_writes += output.dram_writes;
        makespan = makespan.max(output.clocks.iter().copied().max().unwrap_or(Nanos::ZERO));
        total_accesses += output.accesses;
        // Every shard crosses the same barriers, so `rounds` agree; the
        // max is that common value, not a sum.
        rounds_executed = rounds_executed.max(output.rounds);
        events_merged += output.events_merged;
        max_window_depth = max_window_depth.max(output.max_window);
    }
    KernelOutput {
        controllers,
        caches: caches
            .into_iter()
            .map(|c| c.into_inner().expect("cache lock poisoned"))
            .collect(),
        llc: llc
            .into_iter()
            .map(|s| s.into_inner().expect("LLC slice lock poisoned"))
            .collect(),
        noc,
        dram_reads,
        dram_writes,
        makespan,
        total_accesses,
        rounds_executed: rounds_executed + base.rounds,
        events_merged,
        max_window_depth,
    }
}

/// One shard's execution state for the duration of a run.
struct ShardWorker<'a> {
    shard_id: usize,
    topology: Topology,
    /// Node index -> owning shard, for per-destination event routing.
    shard_of_node: Vec<usize>,
    scheduler: CoreScheduler,
    slots: Vec<Slot<'a>>,
    /// Global core index -> local slot index, for reply delivery.
    slot_of_core: Vec<Option<usize>>,
    dir: DirectoryShard,
    sys: ShardSystem<'a>,
    caches: &'a [Mutex<CoreCaches>],
    /// Per-node shared LLC slices (empty when disabled). The core phase
    /// only ever locks this shard's own nodes' slices; remote shards reach
    /// them through [`ShardSystem::probe_llc`] in the directory phase.
    llc: &'a [Mutex<LlcSlice>],
    allocator: &'a RwLock<NumaAllocator>,
    exchange: &'a Exchange,
    barrier: &'a PhaseBarrier,
    /// Count of slots that have not yet exhausted their traces, across all
    /// shards; the shared termination condition.
    live_slots: &'a AtomicUsize,
    /// Shared checkpoint coordination (targets, access total, capture
    /// slots).
    ckpt: &'a CheckpointCtl,
    /// The value of `accesses` already folded into `ckpt.total`, so each
    /// core phase publishes only its delta.
    accesses_reported: u64,
    l1_latency: Nanos,
    l2_latency: Nanos,
    /// LLC slice lookup latency, added to every read miss that consults
    /// the local slice (hit or miss). [`Nanos::ZERO`]-cost when disabled.
    llc_latency: Nanos,
    llc_enabled: bool,
    /// Maximum in-flight misses per core (the MSHR count).
    depth: usize,
    /// Window growth allowance beyond the globally slowest live core.
    horizon_ns: Nanos,
    /// This round's absolute issue cutoff: `min(live clocks) + horizon_ns`
    /// as of the previous round's end, identical on every shard.
    round_horizon: Nanos,
    accesses: u64,
    rounds: u64,
    events_merged: u64,
    max_window: u32,
    // Round-local buffers, persisted across rounds so the steady state
    // allocates nothing. The outboxes and `routed` swap with the exchange
    // mailboxes; the scratch vectors are drained or cleared each round.
    outboxes: Vec<Vec<CoherenceEvent>>,
    fault_scratch: Vec<Keyed<PageFault>>,
    inbox_scratch: Vec<CoherenceEvent>,
    reply_scratch: Vec<CoherenceReply>,
    routed_scratch: Vec<Vec<CoherenceReply>>,
}

impl<'a> ShardWorker<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        shard_id: usize,
        plan: &ShardPlan,
        config: &MachineConfig,
        policy: AllocationPolicy,
        source: AccessSource<'a>,
        caches: &'a [Mutex<CoreCaches>],
        llc: &'a [Mutex<LlcSlice>],
        allocator: &'a RwLock<NumaAllocator>,
        exchange: &'a Exchange,
        barrier: &'a PhaseBarrier,
        live_slots: &'a AtomicUsize,
        ckpt: &'a CheckpointCtl,
        restore: Option<&KernelState>,
    ) -> Self {
        let topology = config.topology();
        let nodes = plan.nodes_of_shard(shard_id);
        // A slot belongs to the shard owning the node its core is pinned
        // to; with several cores per node, a node's whole core block moves
        // together, so the determinism argument is untouched. Feeds open
        // after the restore block below, so a streaming source seeks
        // straight to each restored cursor's frame instead of frame 0.
        let mut slots: Vec<Slot> = source
            .threads()
            .iter()
            .enumerate()
            .filter(|(_, t)| nodes.contains(&topology.node_of_core(t.core).index()))
            .map(|(thread, t)| Slot {
                thread,
                core: t.core,
                node: topology.node_of_core(t.core),
                feed: ThreadFeed::Slice(&[]),
                cursor: 0,
                seq: 0,
                window: Vec::new(),
                faulted: false,
            })
            .collect();
        let mut slot_of_core = vec![None; config.num_cores as usize];
        for (local, slot) in slots.iter().enumerate() {
            assert!(
                slot_of_core[slot.core.index()].replace(local).is_none(),
                "workload pins two threads to core {}",
                slot.core.index()
            );
        }
        let shard_of_node: Vec<usize> = (0..plan.num_nodes())
            .map(|n| plan.shard_of_node(n))
            .collect();
        let num_shards = plan.num_shards();
        let mut dir = DirectoryShard::hierarchical(
            nodes.clone(),
            &config.probe_filter,
            policy,
            topology.cores_per_node(),
        );
        let mut scheduler = CoreScheduler::new(slots.len());
        let mut round_horizon = config.miss_window.horizon;
        if let Some(state) = restore {
            // Snapshot threads are sorted by thread index, so each slot's
            // state is at its own index. The scheduler rebuild is
            // equivalent to the captured one (lazy heap, see
            // `CoreScheduler::import`).
            let mut clocks = Vec::with_capacity(slots.len());
            let mut finished = Vec::with_capacity(slots.len());
            let mut parked = Vec::with_capacity(slots.len());
            for slot in &mut slots {
                let thread = &state.threads[slot.thread];
                assert_eq!(
                    thread.thread, slot.thread,
                    "snapshot threads are sorted by thread index"
                );
                assert_eq!(
                    thread.core, slot.core,
                    "snapshot thread is pinned to a different core"
                );
                slot.cursor = thread.cursor;
                slot.seq = thread.seq;
                slot.window = thread.window.clone();
                slot.faulted = thread.faulted;
                clocks.push(thread.clock);
                finished.push(thread.finished);
                parked.push(thread.parked);
            }
            scheduler = CoreScheduler::import(clocks, finished, parked);
            for node in nodes {
                dir.restore_node_state(NodeId::new(node as u16), &state.dirs[node]);
            }
            round_horizon = state.round_horizon;
        }
        for slot in &mut slots {
            slot.feed = source
                .open_thread(slot.thread, slot.cursor as u64)
                .unwrap_or_else(|e| {
                    panic!(
                        "cannot open thread {} of `{}`: {e}",
                        slot.thread,
                        source.name()
                    )
                });
        }
        ShardWorker {
            shard_id,
            topology,
            shard_of_node,
            scheduler,
            slots,
            slot_of_core,
            dir,
            sys: ShardSystem::new(caches, llc, config),
            caches,
            llc,
            allocator,
            exchange,
            barrier,
            live_slots,
            ckpt,
            accesses_reported: 0,
            l1_latency: config.l1d.access_latency,
            l2_latency: config.l2.access_latency,
            llc_latency: config.llc.access_latency,
            llc_enabled: config.llc.enabled,
            depth: config.miss_window.depth.max(1) as usize,
            horizon_ns: config.miss_window.horizon,
            round_horizon,
            accesses: 0,
            rounds: 0,
            events_merged: 0,
            max_window: 0,
            outboxes: vec![Vec::new(); num_shards],
            fault_scratch: Vec::new(),
            inbox_scratch: Vec::new(),
            reply_scratch: Vec::new(),
            routed_scratch: vec![Vec::new(); num_shards],
        }
    }

    /// The round loop. Both phases of a round end on the shared barrier;
    /// the termination condition is read between rounds, when it is stable
    /// and identical for every shard.
    fn run(&mut self, mut emit: Option<&mut dyn FnMut(KernelState)>) {
        loop {
            self.rounds += 1;
            self.core_phase();
            self.barrier.wait();
            if self.shard_id == 0 {
                self.apply_faults();
            }
            self.directory_phase();
            // The termination flag must be read while it is frozen: between
            // the barriers only directory phases run, and only core phases
            // retire slots. Reading *after* the end-of-round barrier would
            // race with faster shards already decrementing it in their next
            // core phase, leaving shards disagreeing on whether to exit.
            // The checkpoint decision is read at the same frozen point —
            // `total` and `next_target` are stable here — so every shard
            // takes the same branch and the same barrier sequence.
            let done = self.live_slots.load(Ordering::Acquire) == 0;
            let ckpt = !done
                && self.ckpt.active()
                && self.ckpt.total.load(Ordering::Acquire)
                    >= self.ckpt.next_target.load(Ordering::Acquire);
            self.barrier.wait();
            if done {
                return;
            }
            if ckpt && self.checkpoint_round(&mut emit) {
                return;
            }
        }
    }

    /// Captures the frozen end-of-round state across all shards. Each
    /// shard deposits its slice; shard 0 — while every other shard idles
    /// at the middle barrier, so the shared caches, allocator and reply
    /// mailboxes are safe to walk — assembles the canonical
    /// [`KernelState`], emits or stashes it, and advances the trigger.
    /// Returns true if the run should stop (a `stop_at` capture).
    fn checkpoint_round(&mut self, emit: &mut Option<&mut dyn FnMut(KernelState)>) -> bool {
        let part = self.capture_part();
        *self.ckpt.parts[self.shard_id]
            .lock()
            .expect("checkpoint part poisoned") = Some(part);
        self.barrier.wait();
        if self.shard_id == 0 {
            let state = self.assemble();
            let total = state.accesses;
            if total >= self.ckpt.stop_at {
                *self.ckpt.stashed.lock().expect("checkpoint stash poisoned") = Some(state);
                self.ckpt.stop.store(true, Ordering::Release);
            } else if let Some(emit) = emit {
                (*emit)(state);
            }
            let next_every = match total.checked_div(self.ckpt.every) {
                Some(done) => (done + 1) * self.ckpt.every,
                None => u64::MAX,
            };
            self.ckpt
                .next_target
                .store(next_every.min(self.ckpt.stop_at), Ordering::Release);
        }
        self.barrier.wait();
        self.ckpt.stop.load(Ordering::Acquire)
    }

    /// This shard's slice of a checkpoint: its threads, its home nodes'
    /// directory state, and its private counters.
    fn capture_part(&self) -> ShardPart {
        let threads = self
            .slots
            .iter()
            .enumerate()
            .map(|(local, slot)| ThreadState {
                thread: slot.thread,
                core: slot.core,
                clock: self.scheduler.time_of(local),
                parked: self.scheduler.is_parked(local),
                finished: self.scheduler.is_finished(local),
                faulted: slot.faulted,
                cursor: slot.cursor,
                seq: slot.seq,
                window: slot.window.clone(),
            })
            .collect();
        let (noc, dram_reads, dram_writes) = self.sys.stats_view();
        ShardPart {
            threads,
            dirs: self.dir.export_state(),
            noc,
            dram_reads,
            dram_writes,
            events_merged: self.events_merged,
            max_window: self.max_window,
        }
    }

    /// Shard 0 only: folds the deposited parts and the shared state into
    /// the canonical [`KernelState`]. Parts concatenate in shard order,
    /// which is node order; threads are re-sorted by thread index; replies
    /// are cloned out of the mailboxes (not drained — the next core phase
    /// still commits them) and sorted by the order they commit in.
    fn assemble(&self) -> KernelState {
        let base = &self.ckpt.base;
        let mut threads: Vec<ThreadState> = Vec::new();
        let mut dirs = Vec::new();
        let mut noc = base.noc.clone();
        let mut dram_reads = base.dram_reads;
        let mut dram_writes = base.dram_writes;
        let mut events_merged = base.events_merged;
        let mut max_window = base.max_window;
        for part in &self.ckpt.parts {
            let part = part
                .lock()
                .expect("checkpoint part poisoned")
                .take()
                .expect("every shard deposits a part before the barrier");
            threads.extend(part.threads);
            dirs.extend(part.dirs);
            noc.merge(&part.noc);
            dram_reads += part.dram_reads;
            dram_writes += part.dram_writes;
            events_merged += part.events_merged;
            max_window = max_window.max(part.max_window);
        }
        threads.sort_by_key(|t| t.thread);
        let caches = self
            .caches
            .iter()
            .map(|c| c.lock().expect("cache lock poisoned").export_state())
            .collect();
        let llc = self
            .llc
            .iter()
            .map(|s| s.lock().expect("LLC slice lock poisoned").export_state())
            .collect();
        let allocator = self
            .allocator
            .read()
            .expect("allocator lock poisoned")
            .export_state();
        let mut replies = Vec::new();
        for column in &self.exchange.replies {
            for mailbox in column {
                replies.extend(
                    mailbox
                        .lock()
                        .expect("reply mailbox poisoned")
                        .iter()
                        .copied(),
                );
            }
        }
        replies.sort_by_key(|r| (r.core.index(), r.key));
        KernelState {
            threads,
            dirs,
            caches,
            llc,
            allocator,
            replies,
            round_horizon: self.round_horizon,
            accesses: self.ckpt.total.load(Ordering::Acquire),
            rounds: self.rounds + base.rounds,
            events_merged,
            max_window,
            noc,
            dram_reads,
            dram_writes,
        }
    }

    /// Phase 1: commit last round's replies to this shard's cores, then
    /// replay each runnable core forward until it blocks. Every emitted
    /// event goes straight into its destination shard's mailbox.
    fn core_phase(&mut self) {
        let mut outboxes = mem::take(&mut self.outboxes);
        let mut faults = mem::take(&mut self.fault_scratch);
        // The fault mailbox is read by cloning (not drained), so the
        // buffer we swapped back last round still holds stale entries.
        faults.clear();
        {
            let allocator = self.allocator.read().expect("allocator lock poisoned");
            self.deliver_replies(&allocator, &mut outboxes);
            while let Some(local) = self.scheduler.next_actor() {
                self.run_slot(local, &allocator, &mut outboxes, &mut faults);
            }
        }
        for (dst, outbox) in outboxes.iter_mut().enumerate() {
            // Swap rather than assign: the consumer drained the mailbox
            // with `append`, leaving an empty vector whose capacity we
            // inherit for next round.
            let mut mailbox = self.exchange.events[dst][self.shard_id]
                .lock()
                .expect("event mailbox poisoned");
            mem::swap(&mut *mailbox, outbox);
        }
        {
            let mut mailbox = self.exchange.faults[self.shard_id]
                .lock()
                .expect("fault mailbox poisoned");
            mem::swap(&mut *mailbox, &mut faults);
        }
        self.outboxes = outboxes;
        self.fault_scratch = faults;

        // Publish the minimum clock of this shard's live cores; the fold
        // across shards (after the barrier) bounds next round's window
        // growth. `u64::MAX` marks a shard with no live cores left.
        let mut min = u64::MAX;
        for local in 0..self.slots.len() {
            if !self.scheduler.is_finished(local) {
                min = min.min(self.scheduler.time_of(local).as_u64());
            }
        }
        self.exchange.min_clock[self.shard_id].store(min, Ordering::Release);

        // Publish this round's access delta. `total` is then stable from
        // the mid-round barrier to the next core phase, which covers the
        // frozen point where the checkpoint decision reads it.
        if self.ckpt.active() {
            let delta = self.accesses - self.accesses_reported;
            self.accesses_reported = self.accesses;
            if delta > 0 {
                self.ckpt.total.fetch_add(delta, Ordering::AcqRel);
            }
        }
    }

    /// Commits every reply addressed to one of this shard's cores, in
    /// per-core issue order: install the data, surface capacity victims as
    /// eviction notices, advance the core's clock by the directory
    /// latency, and make the core runnable again.
    fn deliver_replies(
        &mut self,
        allocator: &RwLockReadGuard<'_, NumaAllocator>,
        outboxes: &mut [Vec<CoherenceEvent>],
    ) {
        let mut replies = mem::take(&mut self.reply_scratch);
        replies.clear();
        for mailbox in &self.exchange.replies[self.shard_id] {
            replies.append(&mut mailbox.lock().expect("reply mailbox poisoned"));
        }
        // Mailbox (source-shard) order depends on the shard count; commit
        // order must not. Group by core, then replay each core's replies
        // in the key order its requests were issued in.
        replies.sort_by_key(|reply| (reply.core.index(), reply.key));
        for reply in &replies {
            let local = self.slot_of_core[reply.core.index()]
                .expect("replies are routed to the shard owning the core");
            let slot = &mut self.slots[local];
            // Window keys are strictly increasing, and the directory
            // answers every request the round it receives it, so the
            // sorted replies walk the window front to back.
            let pending = slot.window.remove(0);
            assert_eq!(
                pending.key, reply.key,
                "replies commit in the order their requests were issued"
            );
            // The transaction completes at `arrival + latency`, an absolute
            // time (the key's timestamp is the arrival). The core clock
            // advances to the latest completion seen so far — not by the
            // sum of the window's latencies: the misses overlapped at the
            // controller, so their queueing delays overlap too. Summing
            // them would charge the shared wait once per miss, and — since
            // inflated clocks inflate the next round's arrivals and the
            // controllers' occupancy horizons — compound round over round.
            // At window depth 1 the maximum is always the single reply's
            // completion, reproducing the unbatched kernel's clock exactly.
            let completion = reply.key.time + reply.latency;
            let now = self.scheduler.time_of(local);
            if completion > now {
                self.scheduler.advance(local, completion - now);
            }
            self.scheduler.unpark(local);
            let completed = self.scheduler.time_of(local);

            let mut caches = self.caches[slot.core.index()]
                .lock()
                .expect("cache lock poisoned");
            if reply.carries_data {
                caches.fill(pending.line, reply.fill_state);
                // A Shared data reply also fills the node's LLC slice, so
                // later read misses from any core on this node are served
                // locally. Exclusive/Modified fills never enter the slice:
                // a resident copy could go stale through a silent E→M
                // upgrade that no directory message announces. The slice
                // is this shard's own node's — shard-local, deterministic.
                if self.llc_enabled && reply.fill_state == CoherenceState::Shared {
                    self.llc[slot.node.index()]
                        .lock()
                        .expect("LLC slice lock poisoned")
                        .fill(pending.line);
                }
            } else if !caches.grant_write(pending.line) {
                // The Shared copy was invalidated while the upgrade was
                // parked (an earlier-keyed writer won ownership of the
                // line this round). The directory has already recorded
                // this core as the new owner, so install the line
                // Modified — the refetched data a real upgrade-miss
                // reply would carry — keeping cache state and directory
                // bookkeeping consistent.
                caches.fill(pending.line, CoherenceState::Modified);
            }
            // Lines displaced entirely out of this core's hierarchy:
            // dirty (exclusively-owned) victims are written back, which
            // also notifies the home directory and frees its entry — the
            // baseline's eviction-notification optimisation. Clean
            // victims are dropped silently, as in the deployed Hammer
            // protocol, so their directory entries go stale until the
            // probe filter's own replacement recycles them. That stale
            // occupancy is precisely the pressure ALLARM removes for
            // thread-local data.
            //
            // A victim that is itself part of this commit batch — the
            // just-filled line, or a line the rest of the window is about
            // to reinstall — must not be reported: its directory entry is
            // live for the in-flight transaction, and the notice would
            // free it out from under the reply. (Unreachable at window
            // depth 1, where the remaining window is always empty.)
            for victim in caches.take_capacity_victims() {
                if victim.state.is_dirty()
                    && victim.addr != pending.line
                    && !slot.window.iter().any(|p| p.line == victim.addr)
                {
                    let home = allocator.home_of_line(victim.addr);
                    let event = CoherenceEvent {
                        home,
                        key: slot.next_key(completed),
                        op: CoherenceOp::EvictNotice {
                            line: victim.addr,
                            core: slot.core,
                            dirty: true,
                        },
                    };
                    outboxes[self.shard_of_node[home.index()]].push(event);
                }
            }
        }
        self.reply_scratch = replies;
    }

    /// Replays one core until it blocks: on a full or dependent miss
    /// window, on the round horizon, on a page fault, or on the end of its
    /// trace.
    fn run_slot(
        &mut self,
        local: usize,
        allocator: &RwLockReadGuard<'_, NumaAllocator>,
        outboxes: &mut [Vec<CoherenceEvent>],
        faults: &mut Vec<Keyed<PageFault>>,
    ) {
        let slot = &mut self.slots[local];
        slot.faulted = false;
        debug_assert!(
            slot.window.is_empty(),
            "every reply for a window arrives the round after it is issued"
        );
        let mut caches = self.caches[slot.core.index()]
            .lock()
            .expect("cache lock poisoned");
        // Hit latencies — and the private-hierarchy part of every issued
        // miss — accumulate locally and commit to the scheduler in one
        // `advance` when the core blocks, so a long run costs one heap
        // entry instead of one per access. Replies later add only the
        // directory latency on top.
        let base = self.scheduler.time_of(local);
        let mut elapsed = Nanos::ZERO;
        loop {
            let Some(access) = slot.feed.get(slot.cursor) else {
                if slot.window.is_empty() {
                    self.scheduler.finish(local);
                    self.scheduler.advance(local, elapsed);
                    self.live_slots.fetch_sub(1, Ordering::AcqRel);
                } else {
                    // The trace ended mid-window; the slot retires next
                    // round, after the outstanding replies commit.
                    self.scheduler.park(local);
                    self.scheduler.advance(local, elapsed);
                }
                return;
            };

            // The horizon gates only window *growth*: a core that has
            // already issued a miss this round stops (even through hits)
            // once its local time passes the cutoff, so no core races
            // ahead of the globally slowest one by more than the
            // configured allowance. Checked before any mutation, so the
            // access replays verbatim next round.
            if !slot.window.is_empty() && base + elapsed > self.round_horizon {
                self.scheduler.park(local);
                self.scheduler.advance(local, elapsed);
                return;
            }

            // Virtual-to-physical translation; an unmapped (or policy-
            // pending) page blocks the core until the fault is resolved in
            // the deterministic merge step.
            let Some(frame) = allocator.lookup(access.vaddr) else {
                faults.push(Keyed::new(
                    slot.next_key(base + elapsed),
                    PageFault {
                        vaddr: access.vaddr,
                        toucher: slot.node,
                    },
                ));
                slot.faulted = true;
                self.scheduler.park(local);
                self.scheduler.advance(local, elapsed);
                return;
            };
            let line = frame.line(access.vaddr);

            // An access to a line with an in-flight transaction depends on
            // the reply; stop here without consuming the access.
            if slot.window.iter().any(|p| p.line == line) {
                self.scheduler.park(local);
                self.scheduler.advance(local, elapsed);
                return;
            }

            // Walk the private hierarchy.
            let need = caches.coherence_need(line, access.write);
            let outcome = caches.access(line, access.write);
            slot.cursor += 1;
            self.accesses += 1;
            let mut latency = self.l1_latency;
            if outcome != AccessOutcome::L1Hit {
                latency += self.l2_latency;
            }
            elapsed += latency;

            let Some(need) = need else {
                continue;
            };
            let kind = match need {
                CoherenceNeed::ReadMiss => RequestKind::GetS,
                CoherenceNeed::WriteMiss => RequestKind::GetX,
                CoherenceNeed::Upgrade => RequestKind::Upgrade,
            };
            // A read miss consults the node's shared LLC slice before the
            // home directory. The slice is node-pinned and a node's whole
            // core block lives on this shard, so the lookup (which moves
            // recency and counts a hit or miss) touches shard-local state
            // only — the order same-node cores run in is fixed by the
            // scheduler and independent of the shard count. Writes and
            // upgrades bypass the slice: it holds only clean Shared lines,
            // which cannot satisfy an ownership request.
            if self.llc_enabled && kind == RequestKind::GetS {
                elapsed += self.llc_latency;
                let hit = self.llc[slot.node.index()]
                    .lock()
                    .expect("LLC slice lock poisoned")
                    .lookup(line);
                if hit {
                    // Served locally: fill the private hierarchy Shared
                    // and keep replaying — no directory transaction, no
                    // window entry. The directory already tracks this
                    // node (slice-resident ⇒ probe-filter-tracked), so no
                    // sharer bookkeeping is lost.
                    caches.fill(line, CoherenceState::Shared);
                    let completed = base + elapsed;
                    for victim in caches.take_capacity_victims() {
                        if victim.state.is_dirty()
                            && victim.addr != line
                            && !slot.window.iter().any(|p| p.line == victim.addr)
                        {
                            let home = allocator.home_of_line(victim.addr);
                            let event = CoherenceEvent {
                                home,
                                key: slot.next_key(completed),
                                op: CoherenceOp::EvictNotice {
                                    line: victim.addr,
                                    core: slot.core,
                                    dirty: true,
                                },
                            };
                            outboxes[self.shard_of_node[home.index()]].push(event);
                        }
                    }
                    continue;
                }
                // Slice miss: fall through to the directory, with the
                // slice lookup latency already folded into the arrival.
            }
            let arrival = base + elapsed;
            let key = slot.next_key(arrival);
            let event = CoherenceEvent {
                home: frame.home,
                key,
                op: CoherenceOp::Request {
                    request: CoherenceRequest::new(line, kind, slot.core, slot.node),
                    arrival,
                },
            };
            outboxes[self.shard_of_node[frame.home.index()]].push(event);
            slot.window.push(Pending { key, line });
            self.max_window = self.max_window.max(slot.window.len() as u32);
            if slot.window.len() >= self.depth {
                self.scheduler.park(local);
                self.scheduler.advance(local, elapsed);
                return;
            }
            // Window not full: keep replaying — the next independent miss
            // overlaps with this one.
        }
    }

    /// The lead shard resolves every page fault of the round, in merged
    /// `(time, core, seq)` order, against the allocator. This is the only
    /// serial section of a round; faults are rare after the working set is
    /// mapped.
    fn apply_faults(&mut self) {
        let faults = merge_events(self.exchange.faults.iter().map(|mailbox| {
            mailbox
                .lock()
                .expect("fault mailbox poisoned")
                .iter()
                .cloned()
                .collect()
        }));
        if faults.is_empty() {
            return;
        }
        let mut allocator = self.allocator.write().expect("allocator lock poisoned");
        for fault in faults {
            // The first fault in key order performs the allocation (or the
            // next-touch re-homing); later faults on the same page are
            // plain re-touches.
            allocator.translate(fault.payload.vaddr, fault.payload.toucher);
        }
    }

    /// Phase 2: drain the coherence events bound for this shard's home
    /// nodes through its directory slice, route each reply to the shard
    /// owning the requesting core, and unpark the cores that faulted (the
    /// lead shard has resolved their mappings by now... by the
    /// end-of-round barrier, which is what the next core phase waits on).
    fn directory_phase(&mut self) {
        // Fold next round's horizon from the per-shard minima published at
        // the end of the core phase (the barrier between the phases orders
        // the stores before these loads). Identical on every shard, and
        // independent of the shard count because the per-core clocks are.
        let mut min = u64::MAX;
        for clock in &self.exchange.min_clock {
            min = min.min(clock.load(Ordering::Acquire));
        }
        self.round_horizon = Nanos::new(min.saturating_add(self.horizon_ns.as_u64()));

        // Drain this shard's own mailbox column: every event here is
        // already known to be ours, so the round costs O(own events), not
        // a scan of every shard's outbox.
        let mut inbox = mem::take(&mut self.inbox_scratch);
        inbox.clear();
        for mailbox in &self.exchange.events[self.shard_id] {
            inbox.append(&mut mailbox.lock().expect("event mailbox poisoned"));
        }
        self.events_merged += inbox.len() as u64;
        let replies = self.dir.process(&mut inbox, &mut self.sys);
        self.inbox_scratch = inbox;

        let mut routed = mem::take(&mut self.routed_scratch);
        for reply in replies {
            let node = self.topology.node_of_core(reply.core);
            routed[self.shard_of_node[node.index()]].push(reply);
        }
        for (dst, bin) in routed.iter_mut().enumerate() {
            let mut mailbox = self.exchange.replies[dst][self.shard_id]
                .lock()
                .expect("reply mailbox poisoned");
            mem::swap(&mut *mailbox, bin);
        }
        self.routed_scratch = routed;

        for local in 0..self.slots.len() {
            if self.slots[local].faulted {
                self.scheduler.unpark(local);
            }
        }
    }

    /// Tears the worker down into the statistics the report needs.
    fn into_output(self) -> ShardOutput {
        let (noc, dram_reads, dram_writes) = self.sys.into_stats();
        ShardOutput {
            controllers: self.dir.into_controllers(),
            noc,
            dram_reads,
            dram_writes,
            clocks: self.scheduler.clocks().to_vec(),
            accesses: self.accesses,
            rounds: self.rounds,
            events_merged: self.events_merged,
            max_window: self.max_window,
        }
    }
}

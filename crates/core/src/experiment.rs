//! Experiment drivers: the runs behind every figure of the evaluation.

use crate::metrics::{Comparison, SimReport};
use crate::simulator::Simulator;
use allarm_coherence::AllocationPolicy;
use allarm_types::config::MachineConfig;
use allarm_types::ids::CoreId;
use allarm_workloads::{multiprocess_workload, Benchmark, TraceGenerator, Workload};

/// Everything that defines an experiment apart from the benchmark itself:
/// the machine, the number of threads, the trace length and the seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// The simulated machine (Table I by default).
    pub machine: MachineConfig,
    /// Number of worker threads (16 in the paper's multi-threaded runs).
    pub threads: usize,
    /// Main-phase memory references per thread.
    pub accesses_per_thread: usize,
    /// Seed for workload generation.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The configuration used to regenerate the paper's figures: the Table I
    /// machine with 16 threads. The trace length is chosen so each run
    /// completes in seconds while giving every directory thousands of
    /// requests (the per-benchmark ratios are stable well below this
    /// length).
    pub fn paper() -> Self {
        ExperimentConfig {
            machine: MachineConfig::date2014(),
            threads: 16,
            accesses_per_thread: 250_000,
            seed: 2014,
        }
    }

    /// A scaled-down configuration for unit and integration tests: the 16
    /// core machine but with short traces.
    pub fn quick_test() -> Self {
        ExperimentConfig {
            machine: MachineConfig::date2014(),
            threads: 16,
            accesses_per_thread: 3_000,
            seed: 2014,
        }
    }

    /// Returns a copy with a different probe-filter coverage (per node).
    pub fn with_pf_coverage(mut self, coverage_bytes: u64) -> Self {
        self.machine = self.machine.with_probe_filter_coverage(coverage_bytes);
        self
    }

    /// Returns a copy with a different trace length.
    pub fn with_accesses_per_thread(mut self, accesses: usize) -> Self {
        self.accesses_per_thread = accesses;
        self
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper()
    }
}

/// One point of a probe-filter-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Probe-filter coverage per node, in bytes.
    pub pf_coverage_bytes: u64,
    /// The baseline run at this size.
    pub baseline: SimReport,
    /// The ALLARM run at this size.
    pub allarm: SimReport,
}

/// Runs an arbitrary workload under one policy.
pub fn run_workload(
    workload: &Workload,
    policy: AllocationPolicy,
    machine: MachineConfig,
) -> SimReport {
    Simulator::new(machine, policy).run(workload)
}

/// Runs a named benchmark under one policy with the given experiment
/// configuration.
pub fn run_benchmark(
    benchmark: Benchmark,
    policy: AllocationPolicy,
    cfg: &ExperimentConfig,
) -> SimReport {
    let workload =
        TraceGenerator::new(cfg.threads, cfg.accesses_per_thread, cfg.seed).generate(benchmark);
    run_workload(&workload, policy, cfg.machine)
}

/// Runs a benchmark under both policies on the same workload and machine
/// (the comparison behind Fig. 3a–3g).
pub fn compare_benchmark(benchmark: Benchmark, cfg: &ExperimentConfig) -> Comparison {
    let workload =
        TraceGenerator::new(cfg.threads, cfg.accesses_per_thread, cfg.seed).generate(benchmark);
    let baseline = run_workload(&workload, AllocationPolicy::Baseline, cfg.machine);
    let allarm = run_workload(&workload, AllocationPolicy::Allarm, cfg.machine);
    Comparison::new(baseline, allarm)
}

/// Sweeps the probe-filter coverage for a multi-threaded benchmark (Fig. 3h).
///
/// Returns one [`SweepPoint`] per entry of `coverages_bytes`, in order.
pub fn pf_size_sweep(
    benchmark: Benchmark,
    cfg: &ExperimentConfig,
    coverages_bytes: &[u64],
) -> Vec<SweepPoint> {
    let workload =
        TraceGenerator::new(cfg.threads, cfg.accesses_per_thread, cfg.seed).generate(benchmark);
    coverages_bytes
        .iter()
        .map(|&coverage| {
            let machine = cfg.machine.with_probe_filter_coverage(coverage);
            SweepPoint {
                pf_coverage_bytes: coverage,
                baseline: run_workload(&workload, AllocationPolicy::Baseline, machine),
                allarm: run_workload(&workload, AllocationPolicy::Allarm, machine),
            }
        })
        .collect()
}

/// The cores the two processes of the multi-process experiment are pinned
/// to: opposite quadrants of the 4x4 mesh.
pub fn multiprocess_cores(machine: &MachineConfig) -> [CoreId; 2] {
    [CoreId::new(0), CoreId::new((machine.num_cores / 2) as u16)]
}

/// Sweeps the probe-filter coverage for the two-process, single-threaded
/// setup of Section III-B (Fig. 4).
pub fn multiprocess_sweep(
    benchmark: Benchmark,
    cfg: &ExperimentConfig,
    coverages_bytes: &[u64],
) -> Vec<SweepPoint> {
    let cores = multiprocess_cores(&cfg.machine);
    let workload =
        multiprocess_workload(benchmark, cfg.accesses_per_thread, cfg.seed, &cores);
    coverages_bytes
        .iter()
        .map(|&coverage| {
            let machine = cfg.machine.with_probe_filter_coverage(coverage);
            SweepPoint {
                pf_coverage_bytes: coverage,
                baseline: run_workload(&workload, AllocationPolicy::Baseline, machine),
                allarm: run_workload(&workload, AllocationPolicy::Allarm, machine),
            }
        })
        .collect()
}

/// The probe-filter coverages of Fig. 3h (512 kB, 256 kB, 128 kB).
pub const FIG3H_COVERAGES: [u64; 3] = [512 * 1024, 256 * 1024, 128 * 1024];

/// The probe-filter coverages of Fig. 4 (512 kB down to 32 kB).
pub const FIG4_COVERAGES: [u64; 5] = [
    512 * 1024,
    256 * 1024,
    128 * 1024,
    64 * 1024,
    32 * 1024,
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            machine: MachineConfig::date2014(),
            threads: 16,
            accesses_per_thread: 800,
            seed: 7,
        }
    }

    #[test]
    fn run_benchmark_produces_labelled_report() {
        let report = run_benchmark(Benchmark::Barnes, AllocationPolicy::Allarm, &tiny_cfg());
        assert_eq!(report.workload, "barnes");
        assert_eq!(report.policy, "allarm");
        assert_eq!(report.pf_coverage_bytes, 512 * 1024);
    }

    #[test]
    fn compare_benchmark_pairs_the_policies() {
        let cmp = compare_benchmark(Benchmark::Cholesky, &tiny_cfg());
        assert_eq!(cmp.baseline.policy, "baseline");
        assert_eq!(cmp.allarm.policy, "allarm");
        assert_eq!(cmp.baseline.total_accesses, cmp.allarm.total_accesses);
    }

    #[test]
    fn pf_sweep_covers_requested_sizes_in_order() {
        let sizes = [256 * 1024, 128 * 1024];
        let points = pf_size_sweep(Benchmark::Barnes, &tiny_cfg(), &sizes);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].pf_coverage_bytes, 256 * 1024);
        assert_eq!(points[1].pf_coverage_bytes, 128 * 1024);
        assert_eq!(points[0].baseline.pf_coverage_bytes, 256 * 1024);
    }

    #[test]
    fn multiprocess_sweep_uses_two_processes() {
        let points = multiprocess_sweep(Benchmark::Barnes, &tiny_cfg(), &[64 * 1024]);
        assert_eq!(points.len(), 1);
        assert!(points[0].baseline.workload.ends_with("-2p"));
        // Two single-threaded processes issue all requests; with first-touch
        // placement nearly all of them are local.
        assert!(points[0].baseline.local_fraction() > 0.9);
    }

    #[test]
    fn multiprocess_cores_are_distinct_nodes() {
        let cores = multiprocess_cores(&MachineConfig::date2014());
        assert_ne!(cores[0], cores[1]);
        assert_eq!(cores[1], CoreId::new(8));
    }

    #[test]
    fn config_builders() {
        let cfg = ExperimentConfig::quick_test()
            .with_pf_coverage(128 * 1024)
            .with_accesses_per_thread(100);
        assert_eq!(cfg.machine.probe_filter.coverage_bytes, 128 * 1024);
        assert_eq!(cfg.accesses_per_thread, 100);
        assert_eq!(ExperimentConfig::default(), ExperimentConfig::paper());
    }

    #[test]
    fn figure_coverage_constants_match_the_paper() {
        assert_eq!(FIG3H_COVERAGES, [524288, 262144, 131072]);
        assert_eq!(FIG4_COVERAGES.len(), 5);
        assert_eq!(FIG4_COVERAGES[4], 32 * 1024);
    }
}

//! Experiment drivers: the runs behind every figure of the evaluation.
//!
//! Since the Scenario/Builder redesign these drivers are thin wrappers: each
//! one assembles a [`ScenarioGrid`], hands it to the parallel
//! [`BatchRunner`], and reshapes the ordered results into the per-figure
//! forms ([`Comparison`]s and [`SweepPoint`]s). The declarative grids for
//! the paper's figures are also checked in under `scenarios/` and used by
//! the `allarm-bench` binaries.

use crate::batch::BatchRunner;
use crate::metrics::{Comparison, SimReport};
use crate::scenario::{Scenario, ScenarioGrid};
use allarm_coherence::AllocationPolicy;
use allarm_mem::NumaPolicy;
use allarm_types::config::MachineConfig;
use allarm_types::ids::CoreId;
use allarm_workloads::{Benchmark, Workload, WorkloadSpec};

/// Everything that defines an experiment apart from the benchmark itself:
/// the machine, the number of threads, the trace length and the seed.
/// Convenience layer over [`Scenario`]: each accessor stamps these values
/// into a scenario for one benchmark/policy pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// The simulated machine (Table I by default).
    pub machine: MachineConfig,
    /// Number of worker threads (16 in the paper's multi-threaded runs).
    pub threads: usize,
    /// Main-phase memory references per thread.
    pub accesses_per_thread: usize,
    /// Seed for workload generation.
    pub seed: u64,
    /// Host worker threads each simulation shards across (`1`: serial,
    /// `0`: all hardware threads). Never affects the reports, only the
    /// wall clock.
    pub sim_threads: usize,
}

impl ExperimentConfig {
    /// The configuration used to regenerate the paper's figures: the Table I
    /// machine with 16 threads. The trace length is chosen so each run
    /// completes in seconds while giving every directory thousands of
    /// requests (the per-benchmark ratios are stable well below this
    /// length).
    pub fn paper() -> Self {
        ExperimentConfig {
            machine: MachineConfig::date2014(),
            threads: 16,
            accesses_per_thread: 250_000,
            seed: 2014,
            sim_threads: 1,
        }
    }

    /// The scaled 64-core experiment: the [`MachineConfig::scale64`]
    /// machine (16 NUMA nodes × 4 cores on the Table I substrate) with one
    /// thread per core. The trace length is shorter than the paper runs —
    /// four times as many threads issue requests, so every directory still
    /// sees thousands of transactions.
    pub fn scale64() -> Self {
        ExperimentConfig {
            machine: MachineConfig::scale64(),
            threads: 64,
            accesses_per_thread: 50_000,
            seed: 2014,
            sim_threads: 1,
        }
    }

    /// The scaled 256-core experiment: the [`MachineConfig::scale256`]
    /// machine (64 NUMA nodes × 4 cores on an 8×8 fabric) with one thread
    /// per core. The trace length keeps a full grid affordable: sixteen
    /// times the paper's thread count issues requests, so every directory
    /// still sees thousands of transactions at a fraction of the per-thread
    /// length.
    pub fn scale256() -> Self {
        ExperimentConfig {
            machine: MachineConfig::scale256(),
            threads: 256,
            accesses_per_thread: 20_000,
            seed: 2014,
            sim_threads: 1,
        }
    }

    /// A scaled-down configuration for unit and integration tests: the 16
    /// core machine but with short traces.
    pub fn quick_test() -> Self {
        ExperimentConfig {
            machine: MachineConfig::date2014(),
            threads: 16,
            accesses_per_thread: 3_000,
            seed: 2014,
            sim_threads: 1,
        }
    }

    /// Returns a copy with a different probe-filter coverage (per node).
    pub fn with_pf_coverage(mut self, coverage_bytes: u64) -> Self {
        self.machine = self.machine.with_probe_filter_coverage(coverage_bytes);
        self
    }

    /// Returns a copy with a different trace length.
    pub fn with_accesses_per_thread(mut self, accesses: usize) -> Self {
        self.accesses_per_thread = accesses;
        self
    }

    /// Returns a copy sharding each run across `sim_threads` worker
    /// threads (`0`: one per available hardware thread).
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads;
        self
    }

    /// The multi-threaded scenario for one benchmark under one policy.
    pub fn scenario(&self, benchmark: Benchmark, policy: AllocationPolicy) -> Scenario {
        Scenario {
            name: format!("{}/{}", benchmark.name(), policy.name()),
            machine: self.machine,
            policy,
            numa_policy: NumaPolicy::FirstTouch,
            workload: WorkloadSpec::threads(benchmark, self.threads, self.accesses_per_thread),
            seed: self.seed,
            sim_threads: crate::scenario::SimThreads(self.sim_threads),
            warmup_accesses: 0,
        }
    }

    /// The two-process scenario of Section III-B for one benchmark under
    /// one policy.
    pub fn multiprocess_scenario(
        &self,
        benchmark: Benchmark,
        policy: AllocationPolicy,
    ) -> Scenario {
        let cores = multiprocess_cores(&self.machine);
        Scenario {
            name: format!("{}-2p/{}", benchmark.name(), policy.name()),
            machine: self.machine,
            policy,
            numa_policy: NumaPolicy::FirstTouch,
            workload: WorkloadSpec::multiprocess(
                benchmark,
                cores.to_vec(),
                self.accesses_per_thread,
            ),
            seed: self.seed,
            sim_threads: crate::scenario::SimThreads(self.sim_threads),
            warmup_accesses: 0,
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper()
    }
}

/// One point of a probe-filter-size sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Probe-filter coverage per node, in bytes.
    pub pf_coverage_bytes: u64,
    /// The baseline run at this size.
    pub baseline: SimReport,
    /// The ALLARM run at this size.
    pub allarm: SimReport,
}

/// Runs an arbitrary workload under one policy.
///
/// # Panics
///
/// Panics if the machine configuration is invalid; validate first with
/// [`MachineConfig::validate`] (or use [`Scenario::run`]) to get an error
/// instead.
pub fn run_workload(
    workload: &Workload,
    policy: AllocationPolicy,
    machine: MachineConfig,
) -> SimReport {
    crate::builder::SimulationBuilder::new(machine)
        .policy(policy)
        .build()
        .unwrap_or_else(|e| panic!("invalid machine configuration: {e}"))
        .run(workload)
}

/// Runs a named benchmark under one policy with the given experiment
/// configuration.
///
/// # Panics
///
/// Panics if the resulting scenario fails validation.
pub fn run_benchmark(
    benchmark: Benchmark,
    policy: AllocationPolicy,
    cfg: &ExperimentConfig,
) -> SimReport {
    cfg.scenario(benchmark, policy)
        .run()
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"))
}

/// Runs a benchmark under both policies on the same workload and machine
/// (the comparison behind Fig. 3a–3g). The two runs execute in parallel.
///
/// # Panics
///
/// Panics if the resulting scenarios fail validation.
pub fn compare_benchmark(benchmark: Benchmark, cfg: &ExperimentConfig) -> Comparison {
    let grid = ScenarioGrid::new(cfg.scenario(benchmark, AllocationPolicy::Baseline))
        .policies(AllocationPolicy::ALL.to_vec());
    let results = BatchRunner::new()
        .run(&grid.expand())
        .unwrap_or_else(|e| panic!("invalid experiment configuration: {e}"));
    results
        .paired()
        .into_iter()
        .next()
        .expect("a two-policy grid pairs into one comparison")
}

/// Reshapes a coverage × policy batch into one [`SweepPoint`] per coverage.
fn sweep_points(grid: &ScenarioGrid, coverages: &[u64]) -> Vec<SweepPoint> {
    let results = BatchRunner::new()
        .run(&grid.expand())
        .unwrap_or_else(|e| panic!("invalid sweep configuration: {e}"));
    let comparisons = results.paired();
    assert_eq!(
        comparisons.len(),
        coverages.len(),
        "one baseline/allarm pair per coverage"
    );
    coverages
        .iter()
        .zip(comparisons)
        .map(|(&coverage, cmp)| SweepPoint {
            pf_coverage_bytes: coverage,
            baseline: cmp.baseline,
            allarm: cmp.allarm,
        })
        .collect()
}

/// Sweeps the probe-filter coverage for a multi-threaded benchmark
/// (Fig. 3h). All `2 × coverages_bytes.len()` runs execute in parallel.
///
/// Returns one [`SweepPoint`] per entry of `coverages_bytes`, in order.
///
/// # Panics
///
/// Panics if any swept scenario fails validation.
pub fn pf_size_sweep(
    benchmark: Benchmark,
    cfg: &ExperimentConfig,
    coverages_bytes: &[u64],
) -> Vec<SweepPoint> {
    let grid = ScenarioGrid::new(cfg.scenario(benchmark, AllocationPolicy::Baseline))
        .pf_coverages(coverages_bytes.to_vec())
        .policies(AllocationPolicy::ALL.to_vec());
    sweep_points(&grid, coverages_bytes)
}

/// The cores the two processes of the multi-process experiment are pinned
/// to: opposite quadrants of the 4x4 mesh.
pub fn multiprocess_cores(machine: &MachineConfig) -> [CoreId; 2] {
    [CoreId::new(0), CoreId::new((machine.num_cores / 2) as u16)]
}

/// Sweeps the probe-filter coverage for the two-process, single-threaded
/// setup of Section III-B (Fig. 4). All runs execute in parallel.
///
/// # Panics
///
/// Panics if any swept scenario fails validation.
pub fn multiprocess_sweep(
    benchmark: Benchmark,
    cfg: &ExperimentConfig,
    coverages_bytes: &[u64],
) -> Vec<SweepPoint> {
    let grid = ScenarioGrid::new(cfg.multiprocess_scenario(benchmark, AllocationPolicy::Baseline))
        .pf_coverages(coverages_bytes.to_vec())
        .policies(AllocationPolicy::ALL.to_vec());
    sweep_points(&grid, coverages_bytes)
}

/// The probe-filter coverages of Fig. 3h (512 kB, 256 kB, 128 kB).
pub const FIG3H_COVERAGES: [u64; 3] = [512 * 1024, 256 * 1024, 128 * 1024];

/// The probe-filter coverages of Fig. 4 (512 kB down to 32 kB).
pub const FIG4_COVERAGES: [u64; 5] = [512 * 1024, 256 * 1024, 128 * 1024, 64 * 1024, 32 * 1024];

/// The per-node probe-filter coverages of the scaled (64-core) directory-
/// pressure sweep: from the full 2x coverage of a node's aggregate L2 down
/// to a quarter of it, the regime where four cores contending for one
/// node's directory makes sparse-directory pressure visible.
pub const SCALE64_COVERAGES: [u64; 4] = [2 * 1024 * 1024, 1024 * 1024, 512 * 1024, 256 * 1024];

/// The per-node probe-filter coverages of the 256-core directory-pressure
/// sweep. Each node keeps the scale64 shape — four cores sharing one
/// directory and the same aggregate L2 — so the interesting per-node
/// coverage range is unchanged; only the node count and the fabric grow.
pub const SCALE256_COVERAGES: [u64; 4] = SCALE64_COVERAGES;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            machine: MachineConfig::date2014(),
            threads: 16,
            accesses_per_thread: 800,
            seed: 7,
            sim_threads: 1,
        }
    }

    #[test]
    fn run_benchmark_produces_labelled_report() {
        let report = run_benchmark(Benchmark::Barnes, AllocationPolicy::Allarm, &tiny_cfg());
        assert_eq!(report.workload, "barnes");
        assert_eq!(report.policy, "allarm");
        assert_eq!(report.pf_coverage_bytes, 512 * 1024);
    }

    #[test]
    fn compare_benchmark_pairs_the_policies() {
        let cmp = compare_benchmark(Benchmark::Cholesky, &tiny_cfg());
        assert_eq!(cmp.baseline.policy, "baseline");
        assert_eq!(cmp.allarm.policy, "allarm");
        assert_eq!(cmp.baseline.total_accesses, cmp.allarm.total_accesses);
    }

    #[test]
    fn pf_sweep_covers_requested_sizes_in_order() {
        let sizes = [256 * 1024, 128 * 1024];
        let points = pf_size_sweep(Benchmark::Barnes, &tiny_cfg(), &sizes);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].pf_coverage_bytes, 256 * 1024);
        assert_eq!(points[1].pf_coverage_bytes, 128 * 1024);
        assert_eq!(points[0].baseline.pf_coverage_bytes, 256 * 1024);
    }

    #[test]
    fn multiprocess_sweep_uses_two_processes() {
        let points = multiprocess_sweep(Benchmark::Barnes, &tiny_cfg(), &[64 * 1024]);
        assert_eq!(points.len(), 1);
        assert!(points[0].baseline.workload.ends_with("-2p"));
        // Two single-threaded processes issue all requests; with first-touch
        // placement nearly all of them are local.
        assert!(points[0].baseline.local_fraction() > 0.9);
    }

    #[test]
    fn multiprocess_cores_are_distinct_nodes() {
        let cores = multiprocess_cores(&MachineConfig::date2014());
        assert_ne!(cores[0], cores[1]);
        assert_eq!(cores[1], CoreId::new(8));
    }

    #[test]
    fn config_builders() {
        let cfg = ExperimentConfig::quick_test()
            .with_pf_coverage(128 * 1024)
            .with_accesses_per_thread(100);
        assert_eq!(cfg.machine.probe_filter.coverage_bytes, 128 * 1024);
        assert_eq!(cfg.accesses_per_thread, 100);
        assert_eq!(ExperimentConfig::default(), ExperimentConfig::paper());
    }

    #[test]
    fn config_scenarios_carry_the_experiment_scale() {
        let cfg = tiny_cfg();
        let s = cfg.scenario(Benchmark::Dedup, AllocationPolicy::Allarm);
        assert_eq!(s.name, "dedup/allarm");
        assert_eq!(s.workload.accesses().unwrap(), 800);
        assert_eq!(s.seed, 7);
        s.validate().unwrap();
        let mp = cfg.multiprocess_scenario(Benchmark::Barnes, AllocationPolicy::Baseline);
        assert_eq!(mp.workload.cores_required().unwrap(), 9);
        mp.validate().unwrap();
    }

    #[test]
    fn figure_coverage_constants_match_the_paper() {
        assert_eq!(FIG3H_COVERAGES, [524288, 262144, 131072]);
        assert_eq!(FIG4_COVERAGES.len(), 5);
        assert_eq!(FIG4_COVERAGES[4], 32 * 1024);
    }

    #[test]
    fn scale64_config_runs_one_thread_per_core() {
        let cfg = ExperimentConfig::scale64();
        assert_eq!(cfg.threads, cfg.machine.num_cores as usize);
        assert_eq!(cfg.machine.num_nodes(), 16);
        let s = cfg.scenario(Benchmark::Raytrace, AllocationPolicy::Allarm);
        s.validate().unwrap();
        assert_eq!(s.name, "raytrace/allarm");
        // The sweep coverages descend from the node's full 2x L2 coverage.
        assert_eq!(
            SCALE64_COVERAGES[0],
            cfg.machine.probe_filter.coverage_bytes
        );
        assert!(SCALE64_COVERAGES.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn scale256_config_runs_one_thread_per_core() {
        let cfg = ExperimentConfig::scale256();
        assert_eq!(cfg.threads, 256);
        assert_eq!(cfg.threads, cfg.machine.num_cores as usize);
        assert_eq!(cfg.machine.num_nodes(), 64);
        let s = cfg.scenario(Benchmark::Raytrace, AllocationPolicy::Allarm);
        s.validate().unwrap();
        assert_eq!(s.name, "raytrace/allarm");
        // The LLC is an opt-in: the stock scale256 machine reports exactly
        // like an LLC-less one until a scenario enables it.
        assert!(!cfg.machine.llc.enabled);
    }
}

//! Full-system NUMA coherence simulator and experiment runner for the
//! ALLARM (DATE 2014) reproduction.
//!
//! This crate assembles the substrates — NUMA memory ([`allarm_mem`]),
//! private cache hierarchies ([`allarm_cache`]), the mesh network
//! ([`allarm_noc`]), the sparse-directory controllers with the baseline and
//! ALLARM allocation policies ([`allarm_coherence`]) and the energy model
//! ([`allarm_energy`]) — into a trace-driven simulator of the sixteen-node
//! machine of Table I, and provides the experiment drivers that regenerate
//! every figure of the paper's evaluation.
//!
//! # Quick start
//!
//! The public API is organised around declarative **scenarios**: a
//! [`Scenario`] is a serializable value (TOML/JSON) describing one run —
//! machine, allocation policy, NUMA policy, workload, seed — and a
//! [`ScenarioGrid`] adds sweep axes. The [`BatchRunner`] executes a
//! scenario set across OS threads with results delivered in deterministic
//! order.
//!
//! ```
//! use allarm_core::{AllocationPolicy, BatchRunner, Scenario, ScenarioGrid};
//! use allarm_workloads::Benchmark;
//!
//! // One benchmark under both policies, in parallel.
//! let grid = ScenarioGrid::new(
//!         Scenario::quick_test(Benchmark::OceanContiguous, AllocationPolicy::Baseline)
//!             .with_accesses(1_000))
//!     .policies(vec![AllocationPolicy::Baseline, AllocationPolicy::Allarm]);
//! let results = BatchRunner::new().run(&grid.expand()).unwrap();
//! let comparison = &results.paired()[0];
//! // ALLARM never increases the number of probe-filter evictions.
//! assert!(comparison.normalized_evictions() <= 1.0);
//! ```
//!
//! The layers of the public API, from lowest to highest:
//!
//! * [`SimulationBuilder`] — validate a machine/policy combination and get
//!   a [`Simulator`] that replays one [`allarm_workloads::Workload`] into a
//!   [`SimReport`] of every metric;
//! * [`Scenario`] — the declarative, serializable form of one run;
//! * [`ScenarioGrid`] + [`BatchRunner`] — sweep expansion and parallel
//!   execution, feeding [`ResultSink`]s in scenario order;
//! * [`compare_benchmark`] / [`pf_size_sweep`] / [`multiprocess_sweep`] —
//!   pre-packaged drivers behind the paper's figures.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod builder;
pub mod doc;
pub mod experiment;
pub mod jobs;
pub mod metrics;
pub mod report;
pub mod scenario;
mod sharded;
pub mod simulator;
pub mod snapshot;
pub mod system;

pub use batch::{
    verify_resume_rows, BatchEntry, BatchResults, BatchRunner, CsvFileSink, JsonlFileSink,
    JsonlSink, RecordedRow, ResultSink, ResumeScan, RunOutcome, VecSink,
};
pub use builder::SimulationBuilder;
pub use doc::{load_scenario_doc, parse_scenario_doc, ScenarioDoc};
pub use experiment::{
    compare_benchmark, multiprocess_sweep, pf_size_sweep, run_benchmark, run_workload,
    ExperimentConfig, SweepPoint, FIG3H_COVERAGES, FIG4_COVERAGES, SCALE256_COVERAGES,
    SCALE64_COVERAGES,
};
pub use jobs::{
    JobId, JobScheduler, JobState, JobStatus, RowsChunk, SchedulerConfig, SchedulerMetrics,
    SubmitError,
};
pub use metrics::{Comparison, SimReport};
pub use scenario::{Scenario, ScenarioGrid, SimThreads};
pub use simulator::Simulator;
pub use snapshot::{SimSnapshot, SnapError, SnapHeader, SNAP_VERSION};

// Re-export the vocabulary types callers need to drive the API without
// importing every substrate crate.
pub use allarm_coherence::AllocationPolicy;
pub use allarm_mem::NumaPolicy;
pub use allarm_types::config::MachineConfig;
pub use allarm_types::error::ConfigError;
pub use allarm_workloads::{Benchmark, TraceFormat, Workload, WorkloadSpec};

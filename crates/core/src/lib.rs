//! Full-system NUMA coherence simulator and experiment runner for the
//! ALLARM (DATE 2014) reproduction.
//!
//! This crate assembles the substrates — NUMA memory ([`allarm_mem`]),
//! private cache hierarchies ([`allarm_cache`]), the mesh network
//! ([`allarm_noc`]), the sparse-directory controllers with the baseline and
//! ALLARM allocation policies ([`allarm_coherence`]) and the energy model
//! ([`allarm_energy`]) — into a trace-driven simulator of the sixteen-node
//! machine of Table I, and provides the experiment drivers that regenerate
//! every figure of the paper's evaluation.
//!
//! # Quick start
//!
//! ```
//! use allarm_core::{ExperimentConfig, compare_benchmark};
//! use allarm_workloads::Benchmark;
//!
//! // A scaled-down experiment that runs in well under a second.
//! let cfg = ExperimentConfig::quick_test();
//! let comparison = compare_benchmark(Benchmark::OceanContiguous, &cfg);
//! // ALLARM never increases the number of probe-filter evictions.
//! assert!(comparison.normalized_evictions() <= 1.0);
//! ```
//!
//! The three layers of the public API, from lowest to highest:
//!
//! * [`Simulator`] — run one workload on one machine configuration with one
//!   allocation policy and get a [`SimReport`] of every metric;
//! * [`compare_benchmark`] / [`run_benchmark`] — run a named benchmark under
//!   both policies and get a [`Comparison`];
//! * [`pf_size_sweep`] / [`multiprocess_sweep`] — the probe-filter capacity
//!   sweeps behind Fig. 3h and Fig. 4.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod metrics;
pub mod report;
pub mod simulator;
pub mod system;

pub use experiment::{
    compare_benchmark, multiprocess_sweep, pf_size_sweep, run_benchmark, run_workload,
    ExperimentConfig, SweepPoint, FIG3H_COVERAGES, FIG4_COVERAGES,
};
pub use metrics::{Comparison, SimReport};
pub use simulator::Simulator;

// Re-export the vocabulary types callers need to drive the API without
// importing every substrate crate.
pub use allarm_coherence::AllocationPolicy;
pub use allarm_types::config::MachineConfig;
pub use allarm_workloads::{Benchmark, Workload};

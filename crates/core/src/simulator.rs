//! The trace-driven, cycle-approximate multicore simulator.

use crate::metrics::SimReport;
use crate::system::Machine;
use allarm_cache::{AccessOutcome, CoherenceNeed};
use allarm_coherence::{
    AllocationPolicy, CoherenceRequest, DirectoryController, DirectoryStats, PfStats, RequestKind,
};
use allarm_energy::EnergyModel;
use allarm_engine::CoreScheduler;
use allarm_mem::{NumaAllocator, NumaPolicy};
use allarm_types::config::MachineConfig;
use allarm_types::ids::NodeId;
use allarm_types::Nanos;
use allarm_workloads::Workload;

/// Time a directory controller is occupied by one coherence transaction
/// (tag pipeline, protocol state machine and response scheduling), excluding
/// the per-message work of probe-filter eviction processing which is charged
/// separately.
const DIRECTORY_SERVICE_TIME: Nanos = Nanos(12);

/// A configured simulator, ready to replay one workload.
///
/// Construct one through [`crate::SimulationBuilder`] (programmatic) or
/// [`crate::Scenario`] (declarative); both validate the configuration
/// before a simulator exists.
///
/// The simulation model: each thread's trace is replayed on its core; the
/// scheduler always advances the core whose local clock is furthest behind,
/// which approximates the interleaving of the real parallel execution. Every
/// reference walks the private hierarchy; misses become coherence requests
/// to the home directory of the line (determined by first-touch NUMA
/// placement), which executes the full baseline or ALLARM protocol flow
/// against the other cores' caches, the mesh and DRAM. The simulated
/// execution time is the largest per-core accumulated latency.
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, MachineConfig, SimulationBuilder};
/// use allarm_workloads::{Benchmark, TraceGenerator};
///
/// let workload = TraceGenerator::new(4, 500, 1).generate(Benchmark::Barnes);
/// let report = SimulationBuilder::new(MachineConfig::small_test())
///     .policy(AllocationPolicy::Allarm)
///     .build()
///     .expect("valid configuration")
///     .run(&workload);
/// assert_eq!(report.total_accesses as usize, workload.total_accesses());
/// ```
///
/// Or declaratively, from a (checked-in) scenario document:
///
/// ```
/// use allarm_core::{AllocationPolicy, Scenario};
/// use allarm_workloads::Benchmark;
///
/// let report = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Allarm)
///     .with_accesses(500)
///     .run()
///     .expect("valid scenario");
/// assert!(report.total_accesses > 0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: MachineConfig,
    policy: AllocationPolicy,
    numa_policy: NumaPolicy,
    energy_model: EnergyModel,
}

impl Simulator {
    /// Assembles a simulator from already-validated parts. Only
    /// [`crate::SimulationBuilder`] calls this; it is the crate-internal
    /// seam between validation and execution.
    pub(crate) fn from_parts(
        config: MachineConfig,
        policy: AllocationPolicy,
        numa_policy: NumaPolicy,
        energy_model: EnergyModel,
    ) -> Self {
        Simulator {
            config,
            policy,
            numa_policy,
            energy_model,
        }
    }

    /// The machine configuration this simulator was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The allocation policy in force at every directory.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// The NUMA page-placement policy in force.
    pub fn numa_policy(&self) -> NumaPolicy {
        self.numa_policy
    }

    /// Replays `workload` and returns the full metric report.
    ///
    /// # Panics
    ///
    /// Panics if the workload needs more cores than the machine has, or if
    /// the machine configuration is invalid.
    pub fn run(&self, workload: &Workload) -> SimReport {
        assert!(
            workload.cores_required() <= self.config.num_cores as usize,
            "workload needs {} cores but the machine has {}",
            workload.cores_required(),
            self.config.num_cores
        );

        let mut machine = Machine::new(&self.config);
        let mut directories: Vec<DirectoryController> = (0..self.config.num_nodes() as u16)
            .map(|n| {
                DirectoryController::new(NodeId::new(n), &self.config.probe_filter, self.policy)
            })
            .collect();
        let mut allocator = NumaAllocator::new(
            self.config.num_nodes() as usize,
            self.config.dram,
            self.numa_policy,
        );

        let mut scheduler = CoreScheduler::new(workload.threads.len());
        let mut cursors = vec![0usize; workload.threads.len()];
        let mut total_accesses = 0u64;

        // Directory-controller occupancy: each controller is a serial
        // resource, so a request arriving while the controller is still
        // working on earlier transactions (including the back-invalidation
        // work caused by probe-filter evictions) queues behind them. This is
        // where the baseline's extra directory activity turns into extra
        // latency beyond the individual misses themselves.
        let mut dir_busy_until = vec![Nanos::ZERO; self.config.num_nodes() as usize];

        while let Some(slot) = scheduler.next_actor() {
            let trace = &workload.threads[slot];
            let Some(access) = trace.accesses.get(cursors[slot]) else {
                scheduler.finish(slot);
                continue;
            };
            cursors[slot] += 1;
            total_accesses += 1;

            let core = trace.core;
            let node = machine.node_of(core);

            // Virtual-to-physical translation; the first touch homes the
            // page on this core's node (or spills if that node is full).
            let frame = allocator.translate(access.vaddr, node);
            let line = frame.line(access.vaddr);
            let home = frame.home;

            // Walk the private hierarchy.
            let need = machine.caches(core).coherence_need(line, access.write);
            let outcome = machine.caches_mut(core).access(line, access.write);
            let mut latency = machine.l1_latency();
            if outcome != AccessOutcome::L1Hit {
                latency += machine.l2_latency();
            }

            if let Some(need) = need {
                let kind = match need {
                    CoherenceNeed::ReadMiss => RequestKind::GetS,
                    CoherenceNeed::WriteMiss => RequestKind::GetX,
                    CoherenceNeed::Upgrade => RequestKind::Upgrade,
                };
                let request = CoherenceRequest::new(line, kind, core, node);
                let evictions_before = directories[home.index()].stats().pf_evictions.get();
                let messages_before = directories[home.index()].stats().eviction_messages.get();
                let response = directories[home.index()].handle_request(request, &mut machine);

                // Queue behind whatever the home controller is still doing,
                // then occupy it for this transaction's service time. The
                // back-invalidation work of a probe-filter eviction keeps the
                // controller busy for every message it has to send and
                // collect, which is how eviction pressure degrades every
                // later request to the same directory.
                let arrival = scheduler.time_of(slot) + latency;
                let queue_delay = dir_busy_until[home.index()].saturating_sub(arrival);
                let eviction_work = Nanos::new(
                    4 * (directories[home.index()].stats().eviction_messages.get()
                        - messages_before),
                ) + Nanos::new(
                    8 * (directories[home.index()].stats().pf_evictions.get() - evictions_before),
                );
                let service = DIRECTORY_SERVICE_TIME + eviction_work;
                dir_busy_until[home.index()] = arrival + queue_delay + service;

                latency += queue_delay + response.latency;

                if kind.needs_data() {
                    machine.caches_mut(core).fill(line, response.fill_state);
                } else {
                    machine.caches_mut(core).grant_write(line);
                }

                // Lines displaced entirely out of this core's hierarchy:
                // dirty (exclusively-owned) victims are written back, which
                // also notifies the home directory and frees its entry — the
                // baseline's eviction-notification optimisation. Clean
                // victims are dropped silently, as in the deployed Hammer
                // protocol, so their directory entries go stale until the
                // probe filter's own replacement recycles them. That stale
                // occupancy is precisely the pressure ALLARM removes for
                // thread-local data.
                for victim in machine.caches_mut(core).take_capacity_victims() {
                    if victim.state.is_dirty() {
                        let victim_home = allocator.home_of_line(victim.addr);
                        directories[victim_home.index()].note_cache_eviction(
                            victim.addr,
                            core,
                            true,
                            &mut machine,
                        );
                    }
                }
            }

            scheduler.advance(slot, latency);
        }

        self.build_report(workload, &machine, &directories, scheduler, total_accesses)
    }

    fn build_report(
        &self,
        workload: &Workload,
        machine: &Machine,
        directories: &[DirectoryController],
        scheduler: CoreScheduler,
        total_accesses: u64,
    ) -> SimReport {
        let mut dir_stats = DirectoryStats::default();
        let mut pf_stats = PfStats::default();
        for dir in directories {
            dir_stats.merge(dir.stats());
            let pf = dir.probe_filter().stats();
            pf_stats.hits += pf.hits;
            pf_stats.misses += pf.misses;
            pf_stats.allocations += pf.allocations;
            pf_stats.evictions += pf.evictions;
            pf_stats.deallocations += pf.deallocations;
            pf_stats.array_accesses += pf.array_accesses;
        }

        let mut l1_hits = 0u64;
        let mut l2_hits = 0u64;
        let mut l2_misses = 0u64;
        for core in 0..machine.num_cores() {
            let caches = machine.caches(allarm_types::ids::CoreId::new(core as u16));
            l1_hits += caches.l1_stats().hits.get();
            l2_hits += caches.l2_stats().hits.get();
            l2_misses += caches.l2_stats().misses.get();
        }

        let noc = machine.network().stats();
        let energy = self.energy_model.dynamic_energy(noc, &pf_stats);

        SimReport {
            workload: workload.name.clone(),
            policy: self.policy.name().to_string(),
            pf_coverage_bytes: self.config.probe_filter.coverage_bytes,
            runtime: if scheduler.makespan() == Nanos::ZERO {
                Nanos::new(1)
            } else {
                scheduler.makespan()
            },
            total_accesses,
            l1_hits,
            l2_hits,
            l2_misses,
            directory_requests: dir_stats.requests.get(),
            local_requests: dir_stats.requests_local.get(),
            remote_requests: dir_stats.requests_remote.get(),
            pf_allocations: pf_stats.allocations.get(),
            pf_evictions: pf_stats.evictions.get(),
            eviction_messages: dir_stats.eviction_messages.get(),
            eviction_invalidations: dir_stats.eviction_invalidations.get(),
            allarm_allocation_skips: dir_stats.allarm_allocation_skips.get(),
            noc_bytes: noc.total_bytes(),
            noc_messages: noc.total_messages(),
            dram_reads: machine.dram().total_reads(),
            dram_writes: machine.dram().total_writes(),
            local_probes: dir_stats.local_probes.get(),
            local_probe_hits: dir_stats.local_probe_hits.get(),
            local_probes_hidden: dir_stats.local_probes_hidden.get(),
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationBuilder;
    use allarm_workloads::{Benchmark, TraceGenerator};

    fn small_workload() -> Workload {
        TraceGenerator::new(4, 1_500, 7).generate(Benchmark::Barnes)
    }

    fn simulator(policy: AllocationPolicy) -> Simulator {
        SimulationBuilder::new(MachineConfig::small_test())
            .policy(policy)
            .build()
            .expect("small_test is valid")
    }

    #[test]
    fn replays_every_access() {
        let workload = small_workload();
        let report = simulator(AllocationPolicy::Baseline).run(&workload);
        assert_eq!(report.total_accesses as usize, workload.total_accesses());
        assert_eq!(
            report.l1_hits + report.l2_hits + report.l2_misses,
            report.total_accesses
        );
        assert!(report.runtime > Nanos::ZERO);
    }

    #[test]
    fn directory_requests_equal_misses_plus_upgrades() {
        let workload = small_workload();
        let report = simulator(AllocationPolicy::Baseline).run(&workload);
        assert!(report.directory_requests >= report.l2_misses);
        assert_eq!(
            report.directory_requests,
            report.local_requests + report.remote_requests
        );
    }

    #[test]
    fn allarm_skips_allocations_and_reduces_evictions() {
        let workload = small_workload();
        let baseline = simulator(AllocationPolicy::Baseline).run(&workload);
        let allarm = simulator(AllocationPolicy::Allarm).run(&workload);
        assert_eq!(baseline.allarm_allocation_skips, 0);
        assert!(allarm.allarm_allocation_skips > 0);
        assert!(allarm.pf_allocations < baseline.pf_allocations);
        assert!(allarm.pf_evictions <= baseline.pf_evictions);
        // Baseline never probes the local core; ALLARM does so on remote
        // misses only.
        assert_eq!(baseline.local_probes, 0);
        assert!(allarm.local_probes > 0);
        assert!(allarm.local_probes_hidden <= allarm.local_probes);
    }

    #[test]
    fn runs_are_deterministic() {
        let workload = small_workload();
        let a = simulator(AllocationPolicy::Allarm).run(&workload);
        let b = simulator(AllocationPolicy::Allarm).run(&workload);
        assert_eq!(a, b);
    }

    #[test]
    fn policy_and_config_accessors() {
        let sim = simulator(AllocationPolicy::Allarm);
        assert_eq!(sim.policy(), AllocationPolicy::Allarm);
        assert_eq!(sim.numa_policy(), NumaPolicy::FirstTouch);
        assert_eq!(sim.config().num_cores, 4);
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn oversized_workload_is_rejected() {
        let workload = TraceGenerator::new(8, 10, 1).generate(Benchmark::Barnes);
        simulator(AllocationPolicy::Baseline).run(&workload);
    }

    #[test]
    fn numa_policy_override_changes_homing() {
        let workload = small_workload();
        let first_touch = simulator(AllocationPolicy::Baseline).run(&workload);
        let interleaved = SimulationBuilder::new(MachineConfig::small_test())
            .numa_policy(NumaPolicy::Interleaved)
            .build()
            .expect("valid configuration")
            .run(&workload);
        // Interleaving destroys locality: the local fraction drops.
        assert!(interleaved.local_fraction() < first_touch.local_fraction());
    }
}

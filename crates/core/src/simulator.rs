//! The trace-driven, cycle-approximate multicore simulator.

use crate::metrics::SimReport;
use crate::sharded::{self, KernelOutput, KernelRun, KernelState};
use crate::snapshot::{config_fingerprint, SimSnapshot, SnapHeader};
use allarm_coherence::{AllocationPolicy, DirectoryStats, PfStats};
use allarm_energy::EnergyModel;
use allarm_mem::NumaPolicy;
use allarm_types::config::MachineConfig;
use allarm_types::Nanos;
use allarm_workloads::{AccessSource, Workload};

/// A configured simulator, ready to replay one workload.
///
/// Construct one through [`crate::SimulationBuilder`] (programmatic) or
/// [`crate::Scenario`] (declarative); both validate the configuration
/// before a simulator exists.
///
/// The simulation model: each thread's trace is replayed on its core,
/// interleaved in deterministic local-clock order. Every reference walks
/// the private hierarchy; misses become coherence requests to the home
/// directory of the line (determined by first-touch NUMA placement), which
/// executes the full baseline or ALLARM protocol flow against the other
/// cores' caches, the mesh and DRAM. The simulated execution time is the
/// largest per-core accumulated latency.
///
/// Execution runs on the sharded kernel of [`crate::sharded`]: the machine
/// is partitioned by home node across `sim_threads` worker threads, and
/// cross-shard coherence traffic is merged in a deterministic order — so
/// the report is **byte-identical for every thread count**. `sim_threads`
/// is purely a host-performance knob.
///
/// # Examples
///
/// ```
/// use allarm_core::{AllocationPolicy, MachineConfig, SimulationBuilder};
/// use allarm_workloads::{Benchmark, TraceGenerator};
///
/// let workload = TraceGenerator::new(4, 500, 1).generate(Benchmark::Barnes);
/// let report = SimulationBuilder::new(MachineConfig::small_test())
///     .policy(AllocationPolicy::Allarm)
///     .build()
///     .expect("valid configuration")
///     .run(&workload);
/// assert_eq!(report.total_accesses as usize, workload.total_accesses());
/// ```
///
/// Or declaratively, from a (checked-in) scenario document:
///
/// ```
/// use allarm_core::{AllocationPolicy, Scenario};
/// use allarm_workloads::Benchmark;
///
/// let report = Scenario::quick_test(Benchmark::Barnes, AllocationPolicy::Allarm)
///     .with_accesses(500)
///     .run()
///     .expect("valid scenario");
/// assert!(report.total_accesses > 0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: MachineConfig,
    policy: AllocationPolicy,
    numa_policy: NumaPolicy,
    energy_model: EnergyModel,
    sim_threads: usize,
}

impl Simulator {
    /// Assembles a simulator from already-validated parts. Only
    /// [`crate::SimulationBuilder`] calls this; it is the crate-internal
    /// seam between validation and execution.
    pub(crate) fn from_parts(
        config: MachineConfig,
        policy: AllocationPolicy,
        numa_policy: NumaPolicy,
        energy_model: EnergyModel,
        sim_threads: usize,
    ) -> Self {
        Simulator {
            config,
            policy,
            numa_policy,
            energy_model,
            sim_threads,
        }
    }

    /// The machine configuration this simulator was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The allocation policy in force at every directory.
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// The NUMA page-placement policy in force.
    pub fn numa_policy(&self) -> NumaPolicy {
        self.numa_policy
    }

    /// The intra-run worker-thread count (`0` means one worker per
    /// available hardware thread). The report does not depend on it.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Replays `workload` and returns the full metric report.
    ///
    /// # Panics
    ///
    /// Panics if the workload needs more cores than the machine has, or if
    /// the machine configuration is invalid.
    pub fn run(&self, workload: &Workload) -> SimReport {
        self.run_source(workload.into())
    }

    /// Replays any [`AccessSource`] — a materialized workload or a
    /// streaming v2 trace — and returns the full metric report. Both
    /// source kinds deliver identical record streams, so a streaming
    /// replay's report is byte-identical to the materialized run's.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run`], plus if a streaming source's trace file
    /// cannot be re-read or fails frame verification mid-replay.
    pub fn run_source(&self, source: AccessSource<'_>) -> SimReport {
        let run = self.run_inner(source, None, 0, u64::MAX, &mut |_| {});
        self.build_report(source, run.output)
    }

    /// Replays `workload` like [`Simulator::run`], additionally emitting a
    /// [`SimSnapshot`] through `emit` each time the access total crosses a
    /// multiple of `every`. Snapshots land at the end-of-round boundary
    /// *after* the crossing, so consecutive checkpoints of the same run are
    /// monotone in `accesses_done`.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run`], plus if `every` is zero.
    pub fn run_with_checkpoints(
        &self,
        workload: &Workload,
        every: u64,
        emit: impl FnMut(SimSnapshot),
    ) -> SimReport {
        self.run_source_with_checkpoints(workload.into(), every, emit)
    }

    /// As [`Simulator::run_with_checkpoints`] for any [`AccessSource`].
    /// A streaming replay checkpoints exactly like a materialized one —
    /// the snapshot's per-thread cursors are plain record indices, which
    /// the v2 frame directory can seek straight back to on resume.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run_source`], plus if `every` is zero.
    pub fn run_source_with_checkpoints(
        &self,
        source: AccessSource<'_>,
        every: u64,
        mut emit: impl FnMut(SimSnapshot),
    ) -> SimReport {
        assert!(every > 0, "checkpoint interval must be positive");
        let mut wrap = |state: KernelState| emit(self.wrap_snapshot(source, state));
        let run = self.run_inner(source, None, every, u64::MAX, &mut wrap);
        self.build_report(source, run.output)
    }

    /// Replays `workload` until the access total reaches `accesses`, then
    /// stops at the next end-of-round boundary and returns the frozen
    /// state as a [`SimSnapshot`]. The warm-up primitive behind
    /// fork-from-warm grid sweeps.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run`], plus if the workload finishes before
    /// `accesses` references were replayed (callers bound `accesses` by
    /// the workload's length), or if `accesses` is zero.
    pub fn run_until(&self, workload: &Workload, accesses: u64) -> SimSnapshot {
        self.run_source_until(workload.into(), accesses)
    }

    /// As [`Simulator::run_until`] for any [`AccessSource`] — the warm-up
    /// primitive, reachable without ever materializing a streamed trace.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run_until`].
    pub fn run_source_until(&self, source: AccessSource<'_>, accesses: u64) -> SimSnapshot {
        self.try_run_source_until(source, accesses)
            .unwrap_or_else(|| {
                panic!(
                    "workload '{}' finished ({} accesses) before the run_until target of {}",
                    source.name(),
                    source.total_accesses(),
                    accesses
                )
            })
    }

    /// Like [`Simulator::run_until`], but answers `None` instead of
    /// panicking when the workload completes before the target is crossed
    /// at a stoppable round boundary (including the edge where the
    /// crossing round is also the finishing one). The batch runner's
    /// fork-from-warm planner treats `None` as "run this group cold".
    pub(crate) fn try_run_until(&self, workload: &Workload, accesses: u64) -> Option<SimSnapshot> {
        self.try_run_source_until(workload.into(), accesses)
    }

    pub(crate) fn try_run_source_until(
        &self,
        source: AccessSource<'_>,
        accesses: u64,
    ) -> Option<SimSnapshot> {
        assert!(accesses > 0, "run_until needs a positive access target");
        let run = self.run_inner(source, None, 0, accesses, &mut |_| {});
        run.stopped.map(|state| self.wrap_snapshot(source, state))
    }

    /// Resumes a snapshot of `workload` and runs it to completion,
    /// returning the same report an uninterrupted [`Simulator::run`] would
    /// have produced — byte-identical, for every `sim_threads` value.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run`], plus if the snapshot does not belong to this
    /// exact machine/policy configuration or this exact workload (the
    /// header's fingerprint and workload checksum are both verified).
    pub fn resume(&self, snapshot: &SimSnapshot, workload: &Workload) -> SimReport {
        self.resume_source(snapshot, workload.into())
    }

    /// As [`Simulator::resume`] for any [`AccessSource`]. On a streaming
    /// source each worker seeks its threads' frames straight to the
    /// snapshot cursors — no prefix is decoded.
    ///
    /// # Panics
    ///
    /// As [`Simulator::resume`].
    pub fn resume_source(&self, snapshot: &SimSnapshot, source: AccessSource<'_>) -> SimReport {
        self.check_fingerprint(snapshot);
        assert_eq!(
            snapshot.header().workload_checksum,
            source.checksum(),
            "snapshot was taken from a different workload \
             (checksum mismatch; use resume_forked for a prefix-compatible workload)"
        );
        let run = self.run_inner(source, Some(snapshot), 0, u64::MAX, &mut |_| {});
        self.build_report(source, run.output)
    }

    /// As [`Simulator::resume`] with periodic checkpoint emission (see
    /// [`Simulator::run_with_checkpoints`]). The emitted snapshots carry
    /// whole-run access totals, so checkpointing composes across restore
    /// generations.
    ///
    /// # Panics
    ///
    /// As [`Simulator::resume`], plus if `every` is zero.
    pub fn resume_with_checkpoints(
        &self,
        snapshot: &SimSnapshot,
        workload: &Workload,
        every: u64,
        emit: impl FnMut(SimSnapshot),
    ) -> SimReport {
        self.resume_source_with_checkpoints(snapshot, workload.into(), every, emit)
    }

    /// As [`Simulator::resume_with_checkpoints`] for any [`AccessSource`].
    ///
    /// # Panics
    ///
    /// As [`Simulator::resume_with_checkpoints`].
    pub fn resume_source_with_checkpoints(
        &self,
        snapshot: &SimSnapshot,
        source: AccessSource<'_>,
        every: u64,
        mut emit: impl FnMut(SimSnapshot),
    ) -> SimReport {
        assert!(every > 0, "checkpoint interval must be positive");
        self.check_fingerprint(snapshot);
        assert_eq!(
            snapshot.header().workload_checksum,
            source.checksum(),
            "snapshot was taken from a different workload"
        );
        let mut wrap = |state: KernelState| emit(self.wrap_snapshot(source, state));
        let run = self.run_inner(source, Some(snapshot), every, u64::MAX, &mut wrap);
        self.build_report(source, run.output)
    }

    /// Resumes a snapshot onto a *different* workload that shares the
    /// snapshot's consumed prefix — the fork-from-warm path, where one
    /// warm image seeds several measured-region lengths. Only structural
    /// compatibility is verified here (thread count, core pinning, cursor
    /// bounds); the caller owns proving that the new workload's prefix
    /// matches what the snapshot consumed (the batch runner compares the
    /// reference streams directly).
    ///
    /// # Panics
    ///
    /// As [`Simulator::run`], plus on a configuration-fingerprint
    /// mismatch, a thread-shape mismatch, or a snapshot cursor past the
    /// end of the new workload's trace.
    pub fn resume_forked(&self, snapshot: &SimSnapshot, workload: &Workload) -> SimReport {
        self.check_fingerprint(snapshot);
        let state = snapshot.state();
        assert_eq!(
            state.threads.len(),
            workload.threads.len(),
            "snapshot thread count does not match the forked workload"
        );
        for thread in &state.threads {
            let trace = &workload.threads[thread.thread];
            assert_eq!(
                trace.core, thread.core,
                "forked workload pins thread {} to a different core",
                thread.thread
            );
            assert!(
                thread.cursor <= trace.accesses.len(),
                "snapshot cursor {} of thread {} is past the forked trace ({} accesses)",
                thread.cursor,
                thread.thread,
                trace.accesses.len()
            );
        }
        let run = self.run_inner(workload.into(), Some(snapshot), 0, u64::MAX, &mut |_| {});
        self.build_report(workload.into(), run.output)
    }

    fn check_fingerprint(&self, snapshot: &SimSnapshot) {
        assert_eq!(
            snapshot.header().config_fingerprint,
            config_fingerprint(&self.config, self.policy, self.numa_policy),
            "snapshot was taken under a different machine/policy configuration"
        );
    }

    fn wrap_snapshot(&self, source: AccessSource<'_>, state: KernelState) -> SimSnapshot {
        let header = SnapHeader {
            config_fingerprint: config_fingerprint(&self.config, self.policy, self.numa_policy),
            num_cores: self.config.num_cores,
            num_nodes: self.config.num_nodes(),
            policy: self.policy.name().to_string(),
            workload_name: source.name().to_string(),
            workload_checksum: source.checksum(),
            workload_total: source.total_accesses(),
            accesses_done: state.accesses,
            row_index: u64::MAX,
            scenario: String::new(),
        };
        SimSnapshot::from_kernel(header, state)
    }

    fn run_inner(
        &self,
        source: AccessSource<'_>,
        restore: Option<&SimSnapshot>,
        every: u64,
        stop_at: u64,
        emit: &mut dyn FnMut(KernelState),
    ) -> KernelRun {
        assert!(
            source.cores_required() <= self.config.num_cores as usize,
            "workload needs {} cores but the machine has {}",
            source.cores_required(),
            self.config.num_cores
        );
        self.config
            .validate()
            .unwrap_or_else(|e| panic!("invalid machine configuration: {e}"));

        let shards = crate::scenario::SimThreads(self.sim_threads).resolve();
        sharded::run_kernel(
            &self.config,
            self.policy,
            self.numa_policy,
            source,
            shards,
            restore.map(|s| s.state()),
            every,
            stop_at,
            emit,
        )
    }

    fn build_report(&self, source: AccessSource<'_>, output: KernelOutput) -> SimReport {
        let mut dir_stats = DirectoryStats::default();
        let mut pf_stats = PfStats::default();
        for dir in &output.controllers {
            dir_stats.merge(dir.stats());
            let pf = dir.probe_filter().stats();
            pf_stats.hits += pf.hits;
            pf_stats.misses += pf.misses;
            pf_stats.allocations += pf.allocations;
            pf_stats.evictions += pf.evictions;
            pf_stats.deallocations += pf.deallocations;
            pf_stats.array_accesses += pf.array_accesses;
            pf_stats.node_vector_accesses += pf.node_vector_accesses;
        }

        let mut l1_hits = 0u64;
        let mut l2_hits = 0u64;
        let mut l2_misses = 0u64;
        for caches in &output.caches {
            l1_hits += caches.l1_stats().hits.get();
            l2_hits += caches.l2_stats().hits.get();
            l2_misses += caches.l2_stats().misses.get();
        }

        let mut llc_stats = allarm_cache::CacheStats::default();
        for slice in &output.llc {
            llc_stats.merge(slice.stats());
        }
        // Each hit, miss, eviction read-out and invalidation touches the
        // slice array once (slice fills ride the lookup that missed, so
        // they are not charged separately).
        let llc_accesses = llc_stats.hits.get()
            + llc_stats.misses.get()
            + llc_stats.evictions.get()
            + llc_stats.invalidations.get();
        let energy =
            self.energy_model
                .dynamic_energy_with_llc(&output.noc, &pf_stats, llc_accesses);

        SimReport {
            workload: source.name().to_string(),
            policy: self.policy.name().to_string(),
            pf_coverage_bytes: self.config.probe_filter.coverage_bytes,
            runtime: if output.makespan == Nanos::ZERO {
                Nanos::new(1)
            } else {
                output.makespan
            },
            total_accesses: output.total_accesses,
            l1_hits,
            l2_hits,
            l2_misses,
            directory_requests: dir_stats.requests.get(),
            local_requests: dir_stats.requests_local.get(),
            remote_requests: dir_stats.requests_remote.get(),
            pf_allocations: pf_stats.allocations.get(),
            pf_evictions: pf_stats.evictions.get(),
            eviction_messages: dir_stats.eviction_messages.get(),
            eviction_invalidations: dir_stats.eviction_invalidations.get(),
            allarm_allocation_skips: dir_stats.allarm_allocation_skips.get(),
            noc_bytes: output.noc.total_bytes(),
            noc_messages: output.noc.total_messages(),
            dram_reads: output.dram_reads,
            dram_writes: output.dram_writes,
            local_probes: dir_stats.local_probes.get(),
            local_probe_hits: dir_stats.local_probe_hits.get(),
            local_probes_hidden: dir_stats.local_probes_hidden.get(),
            llc_hits: llc_stats.hits.get(),
            llc_misses: llc_stats.misses.get(),
            llc_evictions: llc_stats.evictions.get(),
            llc_invalidations: llc_stats.invalidations.get(),
            energy,
            rounds_executed: output.rounds_executed,
            events_merged: output.events_merged,
            max_window_depth: output.max_window_depth,
            workload_checksum: source.checksum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SimulationBuilder;
    use allarm_workloads::{Benchmark, TraceGenerator};

    fn small_workload() -> Workload {
        TraceGenerator::new(4, 1_500, 7).generate(Benchmark::Barnes)
    }

    fn simulator(policy: AllocationPolicy) -> Simulator {
        SimulationBuilder::new(MachineConfig::small_test())
            .policy(policy)
            .build()
            .expect("small_test is valid")
    }

    #[test]
    fn replays_every_access() {
        let workload = small_workload();
        let report = simulator(AllocationPolicy::Baseline).run(&workload);
        assert_eq!(report.total_accesses as usize, workload.total_accesses());
        assert_eq!(
            report.l1_hits + report.l2_hits + report.l2_misses,
            report.total_accesses
        );
        assert!(report.runtime > Nanos::ZERO);
    }

    #[test]
    fn directory_requests_equal_misses_plus_upgrades() {
        let workload = small_workload();
        let report = simulator(AllocationPolicy::Baseline).run(&workload);
        assert!(report.directory_requests >= report.l2_misses);
        assert_eq!(
            report.directory_requests,
            report.local_requests + report.remote_requests
        );
    }

    #[test]
    fn allarm_skips_allocations_and_reduces_evictions() {
        let workload = small_workload();
        let baseline = simulator(AllocationPolicy::Baseline).run(&workload);
        let allarm = simulator(AllocationPolicy::Allarm).run(&workload);
        assert_eq!(baseline.allarm_allocation_skips, 0);
        assert!(allarm.allarm_allocation_skips > 0);
        assert!(allarm.pf_allocations < baseline.pf_allocations);
        assert!(allarm.pf_evictions <= baseline.pf_evictions);
        // Baseline never probes the local core; ALLARM does so on remote
        // misses only.
        assert_eq!(baseline.local_probes, 0);
        assert!(allarm.local_probes > 0);
        assert!(allarm.local_probes_hidden <= allarm.local_probes);
    }

    #[test]
    fn runs_are_deterministic() {
        let workload = small_workload();
        let a = simulator(AllocationPolicy::Allarm).run(&workload);
        let b = simulator(AllocationPolicy::Allarm).run(&workload);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_runs_match_serial_byte_for_byte() {
        let workload = small_workload();
        for policy in AllocationPolicy::ALL {
            let serial = simulator(policy).run(&workload);
            for threads in [2, 4, 0] {
                let sharded = SimulationBuilder::new(MachineConfig::small_test())
                    .policy(policy)
                    .sim_threads(threads)
                    .build()
                    .expect("small_test is valid")
                    .run(&workload);
                assert_eq!(serial, sharded, "{policy}: sim_threads={threads} diverged");
            }
        }
    }

    fn multicore_llc_config(enabled: bool) -> MachineConfig {
        // Two 2-core nodes, so slices are genuinely shared between cores.
        let mut cfg = MachineConfig::small_test();
        cfg.cores_per_node = allarm_types::config::CoresPerNode(2);
        cfg.noc = allarm_types::config::NocConfig::mesh(1, 2);
        if enabled {
            cfg.llc = allarm_types::config::LlcConfig::shared_slice(256 * 1024, 16);
        }
        cfg
    }

    #[test]
    fn llc_slices_serve_shared_read_misses_locally() {
        let workload = small_workload();
        let run = |enabled| {
            SimulationBuilder::new(multicore_llc_config(enabled))
                .policy(AllocationPolicy::Baseline)
                .build()
                .expect("valid configuration")
                .run(&workload)
        };
        let off = run(false);
        let on = run(true);
        // Disabled: the report carries no trace of the LLC at all.
        assert_eq!(off.llc_hits, 0);
        assert_eq!(off.llc_misses, 0);
        assert_eq!(off.energy.llc_pj, 0.0);
        // Enabled: the same workload replays fully, some read misses are
        // served from the slices, and those transactions never reach the
        // home directories.
        assert_eq!(on.total_accesses, off.total_accesses);
        assert_eq!(on.workload_checksum, off.workload_checksum);
        assert!(on.llc_hits > 0, "no slice hits: {on:?}");
        assert!(on.llc_misses > 0);
        assert!(on.energy.llc_pj > 0.0);
        // Every reference still lands somewhere: hits in the private
        // hierarchy, in the slice, or at a directory. (Slice hits vs the
        // LLC-less run's directory requests is *not* an identity — a slice
        // hit installs the line Shared where a directory fill may have
        // granted Exclusive, so later writes cost Upgrade requests the
        // LLC-less run avoided.)
        assert_eq!(
            on.l1_hits + on.l2_hits + on.l2_misses,
            on.total_accesses,
            "private-hierarchy accounting must survive slice fills"
        );
    }

    #[test]
    fn llc_enabled_runs_are_shard_count_invariant() {
        let workload = small_workload();
        let run = |threads| {
            SimulationBuilder::new(multicore_llc_config(true))
                .policy(AllocationPolicy::Allarm)
                .sim_threads(threads)
                .build()
                .expect("valid configuration")
                .run(&workload)
        };
        let serial = run(1);
        assert!(serial.llc_hits > 0);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn llc_enabled_snapshot_resumes_byte_identically() {
        let workload = small_workload();
        let build = |threads| {
            SimulationBuilder::new(multicore_llc_config(true))
                .policy(AllocationPolicy::Baseline)
                .sim_threads(threads)
                .build()
                .expect("valid configuration")
        };
        let full = build(1).run(&workload);
        let snap = build(1).run_until(&workload, 3_000);
        let snap = SimSnapshot::from_bytes(&snap.to_bytes()).expect("round-trips");
        assert!(!snap.state().llc.is_empty(), "snapshot carries the slices");
        for threads in [1, 2] {
            assert_eq!(build(threads).resume(&snap, &workload), full);
        }
    }

    #[test]
    fn policy_and_config_accessors() {
        let sim = simulator(AllocationPolicy::Allarm);
        assert_eq!(sim.policy(), AllocationPolicy::Allarm);
        assert_eq!(sim.numa_policy(), NumaPolicy::FirstTouch);
        assert_eq!(sim.config().num_cores, 4);
        assert_eq!(sim.sim_threads(), 1);
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn oversized_workload_is_rejected() {
        let workload = TraceGenerator::new(8, 10, 1).generate(Benchmark::Barnes);
        simulator(AllocationPolicy::Baseline).run(&workload);
    }

    #[test]
    fn numa_policy_override_changes_homing() {
        let workload = small_workload();
        let first_touch = simulator(AllocationPolicy::Baseline).run(&workload);
        let interleaved = SimulationBuilder::new(MachineConfig::small_test())
            .numa_policy(NumaPolicy::Interleaved)
            .build()
            .expect("valid configuration")
            .run(&workload);
        // Interleaving destroys locality: the local fraction drops.
        assert!(interleaved.local_fraction() < first_touch.local_fraction());
    }

    #[test]
    fn miss_window_batching_cuts_rounds_at_least_in_half() {
        use allarm_types::config::MissWindowConfig;
        // Raytrace is the most miss-heavy generated profile: long strided
        // sweeps with little reuse, so cores issue many independent misses
        // back to back — exactly what the window overlaps.
        // On the paper machine: raytrace's page-touch rate exhausts
        // small_test's modelled DRAM.
        let workload = TraceGenerator::new(4, 2_000, 3).generate(Benchmark::Raytrace);
        let batched = SimulationBuilder::new(MachineConfig::date2014())
            .policy(AllocationPolicy::Baseline)
            .build()
            .expect("date2014 is valid")
            .run(&workload);
        let mut serial_cfg = MachineConfig::date2014();
        serial_cfg.miss_window = MissWindowConfig::serial();
        let unbatched = SimulationBuilder::new(serial_cfg)
            .policy(AllocationPolicy::Baseline)
            .build()
            .expect("date2014 with a serial window is valid")
            .run(&workload);

        // Depth 1 means at most one in-flight miss; the default window
        // must actually overlap misses and drain rounds off the barrier.
        assert_eq!(unbatched.max_window_depth, 1);
        assert!(batched.max_window_depth > 1);
        assert!(
            batched.rounds_executed * 2 <= unbatched.rounds_executed,
            "batching should at least halve the barrier crossings: {} batched vs {} unbatched",
            batched.rounds_executed,
            unbatched.rounds_executed
        );
        // The replayed work is identical either way; only timing and
        // round structure may differ.
        assert_eq!(batched.total_accesses, unbatched.total_accesses);
        assert!(batched.events_merged > 0);
        assert_eq!(batched.workload_checksum, unbatched.workload_checksum);
    }

    #[test]
    fn next_touch_policy_runs_identically_across_shard_counts() {
        // Next-touch exercises the fault path hardest: every page faults
        // twice (allocation, then the re-homing decision).
        let workload = small_workload();
        let build = |threads| {
            SimulationBuilder::new(MachineConfig::small_test())
                .numa_policy(NumaPolicy::NextTouch)
                .sim_threads(threads)
                .build()
                .expect("valid configuration")
                .run(&workload)
        };
        let serial = build(1);
        assert_eq!(serial, build(2));
        assert_eq!(serial, build(4));
    }
}
